//! # ecochip-noc
//!
//! Inter-die communication (NoC / NoI) area and power estimation.
//!
//! The ECO-CHIP paper uses ORION 3.0 for router *power* and the Stow et al.
//! network-on-interposer tables for router *area*, both third-party tools.
//! This crate reimplements the same estimates analytically so that the rest of
//! the framework consumes identical quantities:
//!
//! * [`RouterConfig`] — the microarchitectural parameters the paper sweeps
//!   (bidirectional port count, flit width = 512 bits, virtual channels,
//!   buffer depth).
//! * [`RouterEstimator`] — instance-count-based area model (input buffers,
//!   crossbar, allocators, link/PHY drivers) mapped to silicon area through
//!   the technology node's logic transistor density, and an activity-based
//!   dynamic + leakage power model scaled by `Vdd²` and node capacitance.
//! * [`PhyEstimate`] — the small die-to-die PHY IP areas used by EMIB / RDL
//!   style packages, which embed PHYs in the chiplets instead of routers.
//!
//! The key property preserved from the paper: a router implemented in the
//! chiplet's advanced node (passive interposer) is much smaller than the same
//! router implemented in the interposer's mature node (active interposer),
//! while the power scales the other way around with supply voltage.
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{TechDb, TechNode};
//! use ecochip_noc::{RouterConfig, RouterEstimator};
//!
//! let db = TechDb::default();
//! let estimator = RouterEstimator::new(RouterConfig::default());
//! let in_7nm = estimator.estimate(db.node(TechNode::N7)?)?;
//! let in_65nm = estimator.estimate(db.node(TechNode::N65)?)?;
//! assert!(in_65nm.area.mm2() > 5.0 * in_7nm.area.mm2());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod phy;
mod router;

pub use error::NocError;
pub use phy::{phy_estimate, PhyEstimate};
pub use router::{RouterConfig, RouterEstimate, RouterEstimator, TrafficProfile};
