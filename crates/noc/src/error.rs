//! Error types for the NoC estimator.

use std::error::Error;
use std::fmt;

/// Errors produced by the NoC area/power estimator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocError {
    /// A router configuration parameter was zero or otherwise invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid range.
        expected: &'static str,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidConfig {
                name,
                value,
                expected,
            } => write!(f, "invalid value {value} for {name} (expected {expected})"),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = NocError::InvalidConfig {
            name: "ports",
            value: 0.0,
            expected: ">= 2",
        };
        assert!(e.to_string().contains("ports"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
