//! Die-to-die PHY interface estimation for EMIB / RDL style packages.
//!
//! EMIB- and RDL-fanout-based packages do not carry full NoC routers; each
//! chiplet instead embeds a die-to-die PHY IP (e.g. AIB/UCIe-class) whose
//! area is small relative to the chiplet (Section III-D(2) of the paper).

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, NodeParams, Power};

/// Estimated PHY interface overhead for one chiplet-to-chiplet link endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyEstimate {
    /// Silicon area of the PHY macro inside the chiplet.
    pub area: Area,
    /// Active power of the PHY at the configured bandwidth.
    pub power: Power,
}

/// Transistors per PHY lane (driver + receiver + clocking + retiming).
const TRANSISTORS_PER_LANE: f64 = 9_000.0;
/// Layout overhead for the bump-field-limited PHY macro.
const PHY_LAYOUT_OVERHEAD: f64 = 4.0;
/// Reference PHY energy per bit (pJ/bit) at 65 nm — advanced-package D2D
/// links are on the order of a pJ/bit or below.
const REFERENCE_PJ_PER_BIT: f64 = 0.9;
/// Reference node feature size (nm) for energy scaling.
const REFERENCE_NM: f64 = 65.0;
/// Reference supply voltage (V).
const REFERENCE_VDD: f64 = 1.2;

/// Estimate the area and power of a die-to-die PHY endpoint.
///
/// * `node` — technology node of the chiplet hosting the PHY.
/// * `lane_count` — number of parallel data lanes (typically the flit width).
/// * `bandwidth_gbps` — sustained link bandwidth in Gbit/s, used for power.
///
/// ```
/// use ecochip_techdb::{TechDb, TechNode};
/// use ecochip_noc::phy_estimate;
///
/// let db = TechDb::default();
/// let phy = phy_estimate(db.node(TechNode::N7)?, 512, 256.0);
/// assert!(phy.area.mm2() < 1.0, "PHYs are small IPs");
/// # Ok::<(), ecochip_techdb::TechDbError>(())
/// ```
pub fn phy_estimate(node: &NodeParams, lane_count: u32, bandwidth_gbps: f64) -> PhyEstimate {
    let transistors = f64::from(lane_count.max(1)) * TRANSISTORS_PER_LANE;
    let density = node.logic_density.transistors_per_mm2();
    let area = Area::from_mm2(transistors * PHY_LAYOUT_OVERHEAD / density);

    let feature_scale = node.node.nm() as f64 / REFERENCE_NM;
    let voltage_scale = (node.vdd.volts() / REFERENCE_VDD).powi(2);
    let pj_per_bit = REFERENCE_PJ_PER_BIT * feature_scale * voltage_scale;
    let power_w = pj_per_bit * 1.0e-12 * bandwidth_gbps.max(0.0) * 1.0e9;

    PhyEstimate {
        area,
        power: Power::from_watts(power_w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::{TechDb, TechNode};

    #[test]
    fn phy_is_small_compared_to_router() {
        let db = TechDb::default();
        let node = db.node(TechNode::N7).unwrap();
        let phy = phy_estimate(node, 512, 256.0);
        assert!(phy.area.mm2() > 0.0);
        assert!(phy.area.mm2() < 1.0);
        assert!(phy.power.watts() > 0.0);
        assert!(phy.power.watts() < 2.0);
    }

    #[test]
    fn phy_scales_with_lanes_and_node() {
        let db = TechDb::default();
        let n7 = db.node(TechNode::N7).unwrap();
        let n65 = db.node(TechNode::N65).unwrap();
        let narrow = phy_estimate(n7, 128, 64.0);
        let wide = phy_estimate(n7, 512, 64.0);
        assert!(wide.area.mm2() > 3.0 * narrow.area.mm2());
        let old = phy_estimate(n65, 128, 64.0);
        assert!(old.area.mm2() > narrow.area.mm2());
        assert!(old.power.watts() > narrow.power.watts());
    }

    #[test]
    fn zero_bandwidth_means_zero_power() {
        let db = TechDb::default();
        let node = db.node(TechNode::N14).unwrap();
        let phy = phy_estimate(node, 512, 0.0);
        assert_eq!(phy.power.watts(), 0.0);
        assert!(phy.area.mm2() > 0.0);
        // Lane count of zero is clamped to one lane.
        let min = phy_estimate(node, 0, 10.0);
        assert!(min.area.mm2() > 0.0);
    }
}
