//! Instance-count-based router area and power model.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, NodeParams, Power};

use crate::error::NocError;

/// Microarchitectural configuration of one NoC / NoI router.
///
/// The defaults follow the paper's setup: 512-bit flits, five bidirectional
/// ports (four mesh neighbours plus the local network-interface controller),
/// two virtual channels and four-flit-deep input buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Number of bidirectional router ports.
    pub ports: u32,
    /// Flit width in bits (512 in Table I).
    pub flit_width_bits: u32,
    /// Number of virtual channels per port.
    pub virtual_channels: u32,
    /// Input-buffer depth in flits per virtual channel.
    pub buffer_depth_flits: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            ports: 5,
            flit_width_bits: 512,
            virtual_channels: 2,
            buffer_depth_flits: 4,
        }
    }
}

impl RouterConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] when any field is zero or the port
    /// count is below two.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.ports < 2 {
            return Err(NocError::InvalidConfig {
                name: "ports",
                value: self.ports as f64,
                expected: "at least 2 ports",
            });
        }
        for (name, value) in [
            ("flit_width_bits", self.flit_width_bits),
            ("virtual_channels", self.virtual_channels),
            ("buffer_depth_flits", self.buffer_depth_flits),
        ] {
            if value == 0 {
                return Err(NocError::InvalidConfig {
                    name,
                    value: 0.0,
                    expected: "a value > 0",
                });
            }
        }
        Ok(())
    }

    /// Total input-buffer storage in bits.
    pub fn buffer_bits(&self) -> u64 {
        u64::from(self.ports)
            * u64::from(self.virtual_channels)
            * u64::from(self.buffer_depth_flits)
            * u64::from(self.flit_width_bits)
    }
}

impl fmt::Display for RouterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-port router, {}b flits, {} VCs, depth {}",
            self.ports, self.flit_width_bits, self.virtual_channels, self.buffer_depth_flits
        )
    }
}

/// Average traffic through a router, used by the dynamic-power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Sustained injection bandwidth through the router in Gbit/s.
    pub bandwidth_gbps: f64,
    /// Switching-activity factor of the datapath in `[0, 1]`.
    pub activity: f64,
}

impl Default for TrafficProfile {
    /// 256 Gbit/s sustained (half of a 512-bit flit at 1 GHz), 0.3 activity.
    fn default() -> Self {
        Self {
            bandwidth_gbps: 256.0,
            activity: 0.3,
        }
    }
}

/// The per-router estimate produced by [`RouterEstimator::estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterEstimate {
    /// Router silicon area in the target node (includes the NIC).
    pub area: Area,
    /// Dynamic (switching) power under the configured traffic.
    pub dynamic_power: Power,
    /// Static leakage power.
    pub leakage_power: Power,
    /// Transistor count of the router (before layout overhead).
    pub transistors: f64,
}

impl RouterEstimate {
    /// Total router power (dynamic + leakage).
    pub fn total_power(&self) -> Power {
        self.dynamic_power + self.leakage_power
    }
}

/// ORION-style analytical router estimator.
///
/// Area: transistor counts per structural component (6T SRAM buffers,
/// mux-tree crossbar, separable VC/switch allocators, link and NIC drivers)
/// multiplied by a layout/wiring overhead and divided by the node's logic
/// transistor density.
///
/// Power: energy-per-bit constants at the 65 nm reference node, scaled by
/// `Vdd²` and linearly by feature size (capacitance), times the configured
/// bandwidth; leakage proportional to transistor count, `Vdd` and a
/// node-dependent leakage current per transistor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterEstimator {
    config: RouterConfig,
    traffic: TrafficProfile,
    /// Layout + wiring overhead multiplier applied to raw transistor area.
    layout_overhead: f64,
}

/// Reference node feature size for the power model (65 nm).
const REFERENCE_NM: f64 = 65.0;
/// Reference supply voltage at 65 nm (V).
const REFERENCE_VDD: f64 = 1.2;
/// Router datapath energy at the reference node, in pJ per bit traversed
/// (buffer write + read, crossbar traversal, allocation amortised).
const REFERENCE_PJ_PER_BIT: f64 = 0.62;
/// Leakage current per transistor at the reference node (nA).
const REFERENCE_LEAKAGE_NA_PER_TRANSISTOR: f64 = 0.8;
/// Switching activity at which [`REFERENCE_PJ_PER_BIT`] was calibrated.
const REFERENCE_ACTIVITY: f64 = 0.3;

impl RouterEstimator {
    /// Create an estimator with the default traffic profile.
    pub fn new(config: RouterConfig) -> Self {
        Self {
            config,
            traffic: TrafficProfile::default(),
            layout_overhead: 3.0,
        }
    }

    /// Create an estimator with an explicit traffic profile.
    pub fn with_traffic(config: RouterConfig, traffic: TrafficProfile) -> Self {
        Self {
            config,
            traffic,
            layout_overhead: 3.0,
        }
    }

    /// The router configuration being estimated.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The traffic profile used for dynamic power.
    pub fn traffic(&self) -> &TrafficProfile {
        &self.traffic
    }

    /// Transistor count of the router datapath and control.
    pub fn transistor_count(&self) -> f64 {
        let c = &self.config;
        let ports = f64::from(c.ports);
        let vcs = f64::from(c.virtual_channels);
        let flit = f64::from(c.flit_width_bits);
        // 6T SRAM cells plus ~30% periphery for the input buffers.
        let buffers = self.config.buffer_bits() as f64 * 6.0 * 1.3;
        // Mux-tree crossbar: one P-input mux per output bit, ~12 transistors
        // per crosspoint equivalent.
        let crossbar = flit * ports * ports * 12.0;
        // Separable VC + switch allocators: arbiters scale with ports² · VCs².
        let allocators = ports * ports * vcs * vcs * 120.0;
        // Link drivers / NIC packetisation logic per flit bit.
        let link_nic = flit * 420.0;
        buffers + crossbar + allocators + link_nic
    }

    /// Estimate router area and power in the given technology node.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] for invalid router configurations.
    pub fn estimate(&self, node: &NodeParams) -> Result<RouterEstimate, NocError> {
        self.config.validate()?;
        let transistors = self.transistor_count();

        // --- Area ---
        let density = node.logic_density.transistors_per_mm2();
        let area = Area::from_mm2(transistors * self.layout_overhead / density);

        // --- Dynamic power ---
        // Energy per bit scales with C·V²: capacitance roughly follows the
        // feature size, voltage from the node table.
        let vdd = node.vdd.volts();
        let feature_scale = node.node.nm() as f64 / REFERENCE_NM;
        let voltage_scale = (vdd / REFERENCE_VDD).powi(2);
        let pj_per_bit = REFERENCE_PJ_PER_BIT * feature_scale * voltage_scale;
        let bits_per_second = self.traffic.bandwidth_gbps.max(0.0) * 1.0e9;
        // The reference energy constant was calibrated at 30% switching
        // activity, so the activity factor is applied relative to that point.
        let dynamic_w = pj_per_bit
            * 1.0e-12
            * bits_per_second
            * (self.traffic.activity.clamp(0.0, 1.0) / REFERENCE_ACTIVITY);

        // --- Leakage ---
        // Leakage per transistor grows as nodes shrink (worse subthreshold
        // leakage), roughly inversely with feature size.
        let leakage_na = REFERENCE_LEAKAGE_NA_PER_TRANSISTOR / feature_scale.max(1e-3);
        let leakage_w = transistors * leakage_na * 1.0e-9 * vdd;

        Ok(RouterEstimate {
            area,
            dynamic_power: Power::from_watts(dynamic_w),
            leakage_power: Power::from_watts(leakage_w),
            transistors,
        })
    }

    /// Estimate an entire fabric of `router_count` identical routers.
    ///
    /// Returns the aggregate area and power.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] for invalid router configurations.
    pub fn estimate_fabric(
        &self,
        node: &NodeParams,
        router_count: usize,
    ) -> Result<RouterEstimate, NocError> {
        let one = self.estimate(node)?;
        let n = router_count as f64;
        Ok(RouterEstimate {
            area: one.area * n,
            dynamic_power: one.dynamic_power * n,
            leakage_power: one.leakage_power * n,
            transistors: one.transistors * n,
        })
    }
}

impl Default for RouterEstimator {
    fn default() -> Self {
        Self::new(RouterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::{TechDb, TechNode};
    use proptest::prelude::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    #[test]
    fn default_config_matches_paper() {
        let c = RouterConfig::default();
        assert_eq!(c.flit_width_bits, 512);
        assert_eq!(c.ports, 5);
        assert!(c.validate().is_ok());
        assert_eq!(c.buffer_bits(), 5 * 2 * 4 * 512);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = RouterConfig {
            ports: 1,
            ..RouterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RouterConfig {
            flit_width_bits: 0,
            ..RouterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RouterConfig {
            virtual_channels: 0,
            ..RouterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RouterConfig {
            buffer_depth_flits: 0,
            ..RouterConfig::default()
        };
        assert!(c.validate().is_err());
        let est = RouterEstimator::new(c);
        assert!(est.estimate(db().node(TechNode::N7).unwrap()).is_err());
    }

    #[test]
    fn router_in_old_node_is_much_larger() {
        // The paper: passive-interposer routers (chiplet node, e.g. 7 nm) are
        // smaller than active-interposer routers (65 nm).
        let db = db();
        let est = RouterEstimator::default();
        let r7 = est.estimate(db.node(TechNode::N7).unwrap()).unwrap();
        let r65 = est.estimate(db.node(TechNode::N65).unwrap()).unwrap();
        assert!(r65.area.mm2() > 10.0 * r7.area.mm2());
        // Sanity on magnitudes: a 512-bit router should be a fraction of a mm²
        // in 7 nm and of the order of a mm² in 65 nm.
        assert!(r7.area.mm2() < 0.2, "7nm router area {}", r7.area);
        assert!(
            r65.area.mm2() > 0.2 && r65.area.mm2() < 10.0,
            "65nm router area {}",
            r65.area
        );
    }

    #[test]
    fn router_power_is_higher_in_old_node() {
        let db = db();
        let est = RouterEstimator::default();
        let r7 = est.estimate(db.node(TechNode::N7).unwrap()).unwrap();
        let r65 = est.estimate(db.node(TechNode::N65).unwrap()).unwrap();
        assert!(r65.dynamic_power.watts() > r7.dynamic_power.watts());
        assert!(r7.total_power().watts() > 0.0);
        assert!(r65.total_power().watts() < 5.0, "router should be < 5 W");
    }

    #[test]
    fn wider_flits_cost_more_area() {
        let db = db();
        let node = db.node(TechNode::N7).unwrap();
        let narrow = RouterEstimator::new(RouterConfig {
            flit_width_bits: 128,
            ..RouterConfig::default()
        })
        .estimate(node)
        .unwrap();
        let wide = RouterEstimator::new(RouterConfig {
            flit_width_bits: 1024,
            ..RouterConfig::default()
        })
        .estimate(node)
        .unwrap();
        assert!(wide.area.mm2() > 2.0 * narrow.area.mm2());
        assert!(wide.transistors > narrow.transistors);
    }

    #[test]
    fn more_ports_cost_more_area() {
        let db = db();
        let node = db.node(TechNode::N7).unwrap();
        let small = RouterEstimator::new(RouterConfig {
            ports: 3,
            ..RouterConfig::default()
        })
        .estimate(node)
        .unwrap();
        let big = RouterEstimator::new(RouterConfig {
            ports: 8,
            ..RouterConfig::default()
        })
        .estimate(node)
        .unwrap();
        assert!(big.area > small.area);
    }

    #[test]
    fn fabric_scales_linearly() {
        let db = db();
        let node = db.node(TechNode::N14).unwrap();
        let est = RouterEstimator::default();
        let one = est.estimate(node).unwrap();
        let four = est.estimate_fabric(node, 4).unwrap();
        assert!((four.area.mm2() - 4.0 * one.area.mm2()).abs() < 1e-9);
        assert!((four.total_power().watts() - 4.0 * one.total_power().watts()).abs() < 1e-9);
        let zero = est.estimate_fabric(node, 0).unwrap();
        assert_eq!(zero.area.mm2(), 0.0);
    }

    #[test]
    fn traffic_scales_dynamic_power() {
        let db = db();
        let node = db.node(TechNode::N7).unwrap();
        let cfg = RouterConfig::default();
        let idle = RouterEstimator::with_traffic(
            cfg,
            TrafficProfile {
                bandwidth_gbps: 0.0,
                activity: 0.3,
            },
        )
        .estimate(node)
        .unwrap();
        let busy = RouterEstimator::with_traffic(
            cfg,
            TrafficProfile {
                bandwidth_gbps: 512.0,
                activity: 0.6,
            },
        )
        .estimate(node)
        .unwrap();
        assert_eq!(idle.dynamic_power.watts(), 0.0);
        assert!(busy.dynamic_power.watts() > 0.0);
        // Leakage unaffected by traffic.
        assert!((idle.leakage_power.watts() - busy.leakage_power.watts()).abs() < 1e-12);
        assert_eq!(
            RouterEstimator::default().traffic().bandwidth_gbps,
            TrafficProfile::default().bandwidth_gbps
        );
    }

    proptest! {
        #[test]
        fn estimates_are_finite_and_positive(
            ports in 2u32..12,
            flit in 32u32..2048,
            vcs in 1u32..8,
            depth in 1u32..16,
        ) {
            let db = db();
            let cfg = RouterConfig { ports, flit_width_bits: flit, virtual_channels: vcs, buffer_depth_flits: depth };
            let est = RouterEstimator::new(cfg);
            for node in TechNode::ALL {
                let r = est.estimate(db.node(node).unwrap()).unwrap();
                prop_assert!(r.area.mm2() > 0.0 && r.area.mm2().is_finite());
                prop_assert!(r.dynamic_power.watts() >= 0.0);
                prop_assert!(r.leakage_power.watts() > 0.0);
                prop_assert!(r.transistors > 0.0);
            }
        }

        #[test]
        fn area_monotone_in_flit_width(
            flit in 64u32..1024,
        ) {
            let db = db();
            let node = db.node(TechNode::N7).unwrap();
            let small = RouterEstimator::new(RouterConfig { flit_width_bits: flit, ..RouterConfig::default() }).estimate(node).unwrap();
            let large = RouterEstimator::new(RouterConfig { flit_width_bits: flit * 2, ..RouterConfig::default() }).estimate(node).unwrap();
            prop_assert!(large.area.mm2() > small.area.mm2());
        }
    }
}
