//! # ecochip-act
//!
//! A reimplementation of the **ACT** architectural carbon-modelling tool
//! (Gupta et al., ISCA 2022) at the level of detail the ECO-CHIP paper uses it
//! as a baseline (Section V-A, Fig. 7(c)).
//!
//! ACT estimates the embodied carbon of a die as a carbon-per-area figure
//! (derived from fab energy, gas and material footprints and yield) times the
//! die area, and adds a **fixed packaging footprint of 150 g CO₂e per die**
//! regardless of the package size, architecture or assembly yield. It models
//! neither the design-phase CFP nor the silicon wasted at the wafer periphery
//! — precisely the omissions the ECO-CHIP paper calls out, which make ACT
//! underestimate the embodied CFP of heterogeneous systems.
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{Area, EnergySource, TechDb, TechNode};
//! use ecochip_act::ActEstimator;
//!
//! let db = TechDb::default();
//! let act = ActEstimator::new(&db, EnergySource::Coal);
//! let cfp = act.die_embodied(Area::from_mm2(628.0), TechNode::N8)?;
//! assert!(cfp.kg() > 10.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, Carbon, EnergySource, TechDb, TechNode};
use ecochip_yield::NegativeBinomialYield;

mod error;

pub use error::ActError;

/// The fixed per-package assembly footprint ACT assumes (grams of CO₂e),
/// independent of package area, architecture or yield.
pub const ACT_FIXED_PACKAGE_G: f64 = 150.0;

/// Embodied-carbon breakdown in ACT's terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActBreakdown {
    /// Manufacturing CFP of all dies.
    pub manufacturing: Carbon,
    /// The fixed packaging CFP (150 g per package).
    pub packaging: Carbon,
}

impl ActBreakdown {
    /// Total embodied CFP as ACT reports it.
    pub fn total(&self) -> Carbon {
        self.manufacturing + self.packaging
    }
}

impl fmt::Display for ActBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACT embodied {} (manufacturing {}, packaging {})",
            self.total(),
            self.manufacturing,
            self.packaging
        )
    }
}

/// The ACT baseline estimator.
#[derive(Debug, Clone, Copy)]
pub struct ActEstimator<'a> {
    db: &'a TechDb,
    fab_source: EnergySource,
}

impl<'a> ActEstimator<'a> {
    /// Create an ACT estimator using the node parameters from `db` and the
    /// given fab energy source.
    pub fn new(db: &'a TechDb, fab_source: EnergySource) -> Self {
        Self { db, fab_source }
    }

    /// Manufacturing CFP of a single die (no packaging, no design, no wafer
    /// wastage): `CPA(p) × A / Y(A, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ActError`] for unknown nodes or invalid areas.
    pub fn die_embodied(&self, area: Area, node: TechNode) -> Result<Carbon, ActError> {
        if !area.mm2().is_finite() || area.mm2() < 0.0 {
            return Err(ActError::InvalidArea(area.mm2()));
        }
        let params = self.db.node(node)?;
        let yield_model = NegativeBinomialYield::for_node(params);
        let y = yield_model.yield_for(area);
        let intensity = self.fab_source.carbon_intensity();
        // ACT's carbon-per-area: fab energy × grid intensity + direct gas +
        // materials. ACT does not model the equipment-efficiency derate.
        let energy_carbon = intensity * (params.epa * area);
        let direct = (params.gas_cfp + params.material_cfp) * area;
        Ok(Carbon::from_kg(
            (energy_carbon + direct).kg() * y.inflation_factor(),
        ))
    }

    /// Embodied CFP of a (possibly multi-die) system as ACT computes it: the
    /// sum of per-die manufacturing CFP plus one fixed 150 g package.
    ///
    /// # Errors
    ///
    /// Returns [`ActError`] for unknown nodes or invalid areas.
    pub fn system_embodied(&self, dies: &[(Area, TechNode)]) -> Result<ActBreakdown, ActError> {
        let mut manufacturing = Carbon::ZERO;
        for (area, node) in dies {
            manufacturing += self.die_embodied(*area, *node)?;
        }
        Ok(ActBreakdown {
            manufacturing,
            packaging: Carbon::from_grams(ACT_FIXED_PACKAGE_G),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    #[test]
    fn fixed_package_constant_matches_act() {
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        let one = act
            .system_embodied(&[(Area::from_mm2(100.0), TechNode::N7)])
            .unwrap();
        let many = act
            .system_embodied(&[
                (Area::from_mm2(50.0), TechNode::N7),
                (Area::from_mm2(50.0), TechNode::N14),
                (Area::from_mm2(50.0), TechNode::N10),
            ])
            .unwrap();
        // The packaging term is the same 150 g regardless of the system.
        assert!((one.packaging.grams() - 150.0).abs() < 1e-9);
        assert!((many.packaging.grams() - 150.0).abs() < 1e-9);
        assert!(!one.to_string().is_empty());
    }

    #[test]
    fn larger_dies_cost_more() {
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        let small = act
            .die_embodied(Area::from_mm2(100.0), TechNode::N7)
            .unwrap();
        let large = act
            .die_embodied(Area::from_mm2(400.0), TechNode::N7)
            .unwrap();
        // Super-linear growth because yield degrades with area.
        assert!(large.kg() > 4.0 * small.kg());
    }

    #[test]
    fn advanced_nodes_cost_more_per_area() {
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        let a = Area::from_mm2(100.0);
        let c7 = act.die_embodied(a, TechNode::N7).unwrap();
        let c65 = act.die_embodied(a, TechNode::N65).unwrap();
        assert!(c7.kg() > c65.kg());
    }

    #[test]
    fn ga102_monolith_magnitude() {
        // ACT's estimate for a 628 mm² 8 nm-class GPU die should land in the
        // tens of kilograms — the same order as the paper's Fig. 7.
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        let cfp = act
            .die_embodied(Area::from_mm2(628.0), TechNode::N8)
            .unwrap();
        assert!(cfp.kg() > 20.0 && cfp.kg() < 120.0, "got {cfp}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        assert!(act
            .die_embodied(Area::from_mm2(-1.0), TechNode::N7)
            .is_err());
        assert!(act
            .die_embodied(Area::from_mm2(f64::NAN), TechNode::N7)
            .is_err());
        let empty = ecochip_techdb::TechDbBuilder::new().build();
        let act = ActEstimator::new(&empty, EnergySource::Coal);
        assert!(act
            .die_embodied(Area::from_mm2(10.0), TechNode::N7)
            .is_err());
    }

    #[test]
    fn zero_area_costs_only_package() {
        let db = db();
        let act = ActEstimator::new(&db, EnergySource::Coal);
        let b = act.system_embodied(&[(Area::ZERO, TechNode::N7)]).unwrap();
        assert_eq!(b.manufacturing.kg(), 0.0);
        assert!((b.total().grams() - 150.0).abs() < 1e-9);
    }
}
