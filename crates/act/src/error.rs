//! Error types for the ACT baseline estimator.

use std::error::Error;
use std::fmt;

use ecochip_techdb::TechDbError;

/// Errors produced by the ACT baseline estimator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ActError {
    /// The die area was negative or not finite.
    InvalidArea(f64),
    /// The technology database has no entry for the requested node.
    TechDb(TechDbError),
}

impl fmt::Display for ActError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActError::InvalidArea(a) => write!(f, "invalid die area {a} mm2"),
            ActError::TechDb(e) => write!(f, "technology database error: {e}"),
        }
    }
}

impl Error for ActError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ActError::TechDb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechDbError> for ActError {
    fn from(value: TechDbError) -> Self {
        ActError::TechDb(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ActError::InvalidArea(-1.0);
        assert!(e.to_string().contains("area"));
        assert!(Error::source(&e).is_none());
        let e: ActError = TechDbError::MissingNode(7).into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ActError>();
    }
}
