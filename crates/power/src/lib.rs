//! # ecochip-power
//!
//! Operational energy and carbon-footprint models (Section III-F, Eqs. 3 and
//! 14 of the ECO-CHIP paper).
//!
//! Three usage-profile flavours cover the paper's test cases:
//!
//! * [`UsageProfile::Dynamic`] — the first-principles CMOS model of Eq. (14):
//!   `Euse = TON (Vdd·Ileak + α·C·Vdd²·f)`, used when the electrical operating
//!   point is known.
//! * [`UsageProfile::Battery`] — battery-operated devices (A15): energy from
//!   the battery capacity and charge frequency.
//! * [`UsageProfile::Measured`] — profiled devices (GA102, EMR): measured
//!   energy per year of use.
//!
//! Inter-die communication power (NoC routers, PHYs) is added on top of the
//! profile, as the paper notes HI increases operational CFP through
//! communication overheads and older-node supply voltages.
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{EnergySource, Energy, TimeSpan};
//! use ecochip_power::{OperationalEstimator, UsageProfile};
//!
//! // A GPU measured at 228 kWh per year of typical use on a coal-heavy grid:
//! let estimator = OperationalEstimator::new(EnergySource::Coal);
//! let profile = UsageProfile::Measured { energy_per_year: Energy::from_kwh(228.0) };
//! let cfp = estimator.lifetime_cfp(&profile, TimeSpan::from_years(2.0), Default::default());
//! assert!(cfp.kg() > 300.0 && cfp.kg() < 350.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod operational;

pub use operational::{OperatingPoint, OperationalEstimator, UsageProfile};
