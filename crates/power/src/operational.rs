//! Operational energy and CFP estimation.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Carbon, Energy, EnergySource, Frequency, Power, TimeSpan, Voltage};

/// Electrical operating point for the first-principles energy model of
/// Eq. (14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage `Vdd`.
    pub vdd: Voltage,
    /// Average use-case operating frequency `f` (systems rarely run at their
    /// maximum frequency, as the paper notes).
    pub frequency: Frequency,
    /// Total leakage current `Ileak` in amperes.
    pub leakage_current_a: f64,
    /// Effective switched capacitance `C` in farads.
    pub switched_capacitance_f: f64,
    /// Average switching activity `α` in `[0, 1]`.
    pub activity: f64,
    /// Duty cycle: fraction of wall-clock time the system is ON
    /// (`TON`, 5 % – 20 % in Table I).
    pub duty_cycle: f64,
}

impl Default for OperatingPoint {
    /// A mid-range SoC operating point: 0.8 V, 1.5 GHz average, 2 A leakage,
    /// 5 nF switched capacitance, 20 % activity, 15 % duty cycle.
    fn default() -> Self {
        Self {
            vdd: Voltage::from_volts(0.8),
            frequency: Frequency::from_ghz(1.5),
            leakage_current_a: 2.0,
            switched_capacitance_f: 5.0e-9,
            activity: 0.2,
            duty_cycle: 0.15,
        }
    }
}

impl OperatingPoint {
    /// Average power while the device is ON:
    /// `P = Vdd·Ileak + α·C·Vdd²·f`.
    pub fn on_power(&self) -> Power {
        let vdd = self.vdd.volts();
        let leakage = vdd * self.leakage_current_a.max(0.0);
        let dynamic = self.activity.clamp(0.0, 1.0)
            * self.switched_capacitance_f.max(0.0)
            * vdd
            * vdd
            * self.frequency.hz().max(0.0);
        Power::from_watts(leakage + dynamic)
    }

    /// Energy consumed over one year of deployment at the configured duty
    /// cycle (Eq. 14 with `TON = duty_cycle × 1 year`).
    pub fn energy_per_year(&self) -> Energy {
        let on_time = TimeSpan::from_years(1.0) * self.duty_cycle.clamp(0.0, 1.0);
        self.on_power() * on_time
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} ({}% duty)",
            self.vdd,
            self.frequency,
            self.duty_cycle * 100.0
        )
    }
}

/// How the deployed system consumes energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum UsageProfile {
    /// First-principles CMOS model (Eq. 14).
    Dynamic {
        /// The electrical operating point.
        operating_point: OperatingPoint,
    },
    /// Battery-operated device: energy from battery capacity and recharge
    /// frequency (the paper's A15 / mobile path).
    Battery {
        /// Battery capacity in watt-hours.
        battery_wh: f64,
        /// Number of full charge cycles per year.
        charges_per_year: f64,
        /// Charger + conversion efficiency in `(0, 1]`.
        charger_efficiency: f64,
    },
    /// Profiled device: measured energy per year of typical use (the paper's
    /// GA102 / EMR path).
    Measured {
        /// Energy consumed per year of use.
        energy_per_year: Energy,
    },
}

impl Default for UsageProfile {
    fn default() -> Self {
        UsageProfile::Dynamic {
            operating_point: OperatingPoint::default(),
        }
    }
}

impl UsageProfile {
    /// Energy consumed by the profile over one year, excluding any extra
    /// (communication) power.
    pub fn energy_per_year(&self) -> Energy {
        match self {
            UsageProfile::Dynamic { operating_point } => operating_point.energy_per_year(),
            UsageProfile::Battery {
                battery_wh,
                charges_per_year,
                charger_efficiency,
            } => {
                let efficiency = charger_efficiency.clamp(1e-3, 1.0);
                Energy::from_wh(battery_wh.max(0.0) * charges_per_year.max(0.0) / efficiency)
            }
            UsageProfile::Measured { energy_per_year } => *energy_per_year,
        }
    }

    /// The fraction of wall-clock time the device is powered, used to convert
    /// extra (always-on-while-active) power into energy. Dynamic profiles use
    /// their duty cycle; battery and measured profiles assume a 15 % duty
    /// cycle, the middle of the Table I range.
    pub fn duty_cycle(&self) -> f64 {
        match self {
            UsageProfile::Dynamic { operating_point } => operating_point.duty_cycle.clamp(0.0, 1.0),
            _ => 0.15,
        }
    }
}

/// Operational CFP estimator (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationalEstimator {
    source: EnergySource,
}

impl OperationalEstimator {
    /// Create an estimator for the given usage-phase energy source
    /// (`Csrc,use`).
    pub fn new(source: EnergySource) -> Self {
        Self { source }
    }

    /// The usage-phase energy source.
    pub fn source(&self) -> EnergySource {
        self.source
    }

    /// Energy used per year including `extra_power` drawn by HI communication
    /// circuitry whenever the device is on.
    pub fn energy_per_year(&self, profile: &UsageProfile, extra_power: Power) -> Energy {
        let base = profile.energy_per_year();
        let on_time = TimeSpan::from_years(1.0) * profile.duty_cycle();
        base + extra_power * on_time
    }

    /// Operational CFP per year of use (Eq. 3).
    pub fn annual_cfp(&self, profile: &UsageProfile, extra_power: Power) -> Carbon {
        self.source.carbon_intensity() * self.energy_per_year(profile, extra_power)
    }

    /// Operational CFP over a whole deployment lifetime.
    pub fn lifetime_cfp(
        &self,
        profile: &UsageProfile,
        lifetime: TimeSpan,
        extra_power: Power,
    ) -> Carbon {
        self.annual_cfp(profile, extra_power) * lifetime.years().max(0.0)
    }
}

impl Default for OperationalEstimator {
    /// World-average grid mix for the usage phase.
    fn default() -> Self {
        Self {
            source: EnergySource::WorldGrid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dynamic_power_matches_closed_form() {
        let op = OperatingPoint {
            vdd: Voltage::from_volts(1.0),
            frequency: Frequency::from_ghz(1.0),
            leakage_current_a: 1.0,
            switched_capacitance_f: 1.0e-9,
            activity: 0.5,
            duty_cycle: 1.0,
        };
        // P = 1*1 + 0.5*1e-9*1*1e9 = 1 + 0.5 = 1.5 W.
        assert!((op.on_power().watts() - 1.5).abs() < 1e-9);
        // One year at 100% duty: 1.5 W * 8760 h = 13.14 kWh.
        assert!((op.energy_per_year().kwh() - 13.14).abs() < 1e-6);
        assert!(!op.to_string().is_empty());
    }

    #[test]
    fn higher_vdd_means_more_power() {
        // Chiplets in older nodes run at higher Vdd, raising operational CFP
        // — the effect the paper highlights for HI systems.
        let low = OperatingPoint {
            vdd: Voltage::from_volts(0.75),
            ..OperatingPoint::default()
        };
        let high = OperatingPoint {
            vdd: Voltage::from_volts(1.2),
            ..OperatingPoint::default()
        };
        assert!(high.on_power().watts() > low.on_power().watts());
    }

    #[test]
    fn battery_profile_energy() {
        // A 12.7 Wh battery charged 365 times a year at 85% efficiency.
        let profile = UsageProfile::Battery {
            battery_wh: 12.7,
            charges_per_year: 365.0,
            charger_efficiency: 0.85,
        };
        let e = profile.energy_per_year().kwh();
        assert!((e - 12.7e-3 * 365.0 / 0.85).abs() < 1e-9);
        assert!((profile.duty_cycle() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn measured_profile_passthrough_and_gpu_magnitude() {
        // The paper's GA102: Euse = 228 kWh, coal grid, 2-year lifetime
        // => ~319 kg CO2e operational.
        let est = OperationalEstimator::new(EnergySource::Coal);
        let profile = UsageProfile::Measured {
            energy_per_year: Energy::from_kwh(228.0),
        };
        let cfp = est.lifetime_cfp(&profile, TimeSpan::from_years(2.0), Power::ZERO);
        assert!((cfp.kg() - 2.0 * 228.0 * 0.7).abs() < 1e-6);
    }

    #[test]
    fn extra_power_increases_cfp() {
        let est = OperationalEstimator::new(EnergySource::Coal);
        let profile = UsageProfile::default();
        let base = est.annual_cfp(&profile, Power::ZERO);
        let with_noc = est.annual_cfp(&profile, Power::from_watts(2.0));
        assert!(with_noc.kg() > base.kg());
        // The added amount matches 2 W over the duty-cycled year.
        let expected_extra = 2.0 * 8760.0 * profile.duty_cycle() / 1000.0 * 0.7;
        assert!((with_noc.kg() - base.kg() - expected_extra).abs() < 1e-6);
    }

    #[test]
    fn cleaner_grid_reduces_operational_cfp() {
        let profile = UsageProfile::Measured {
            energy_per_year: Energy::from_kwh(100.0),
        };
        let coal = OperationalEstimator::new(EnergySource::Coal).annual_cfp(&profile, Power::ZERO);
        let wind = OperationalEstimator::new(EnergySource::Wind).annual_cfp(&profile, Power::ZERO);
        assert!(wind.kg() < coal.kg() / 20.0);
        assert_eq!(
            OperationalEstimator::default().source(),
            EnergySource::WorldGrid
        );
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let profile = UsageProfile::Battery {
            battery_wh: -5.0,
            charges_per_year: -1.0,
            charger_efficiency: 0.0,
        };
        assert_eq!(profile.energy_per_year().kwh(), 0.0);
        let op = OperatingPoint {
            activity: 2.0,
            leakage_current_a: -1.0,
            ..OperatingPoint::default()
        };
        assert!(op.on_power().watts().is_finite());
        let est = OperationalEstimator::new(EnergySource::Coal);
        let cfp = est.lifetime_cfp(
            &UsageProfile::default(),
            TimeSpan::from_years(-1.0),
            Power::ZERO,
        );
        assert_eq!(cfp.kg(), 0.0);
    }

    proptest! {
        #[test]
        fn operational_cfp_is_monotone_in_lifetime(
            years in 0.5f64..10.0,
            extra in 0.5f64..5.0,
        ) {
            let est = OperationalEstimator::new(EnergySource::Coal);
            let profile = UsageProfile::default();
            let short = est.lifetime_cfp(&profile, TimeSpan::from_years(years), Power::ZERO);
            let long = est.lifetime_cfp(&profile, TimeSpan::from_years(years + extra), Power::ZERO);
            prop_assert!(long.kg() > short.kg());
        }

        #[test]
        fn energy_is_nonnegative_for_any_operating_point(
            vdd in 0.5f64..1.8,
            freq_ghz in 0.1f64..4.0,
            leak in 0.0f64..10.0,
            cap in 1e-10f64..1e-7,
            activity in 0.0f64..1.0,
            duty in 0.0f64..1.0,
        ) {
            let op = OperatingPoint {
                vdd: Voltage::from_volts(vdd),
                frequency: Frequency::from_ghz(freq_ghz),
                leakage_current_a: leak,
                switched_capacitance_f: cap,
                activity,
                duty_cycle: duty,
            };
            prop_assert!(op.energy_per_year().kwh() >= 0.0);
            prop_assert!(op.on_power().watts() >= 0.0);
        }
    }
}
