//! Per-chiplet manufacturing CFP (Eqs. 5–6 of the paper).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, Carbon, CarbonPerArea, EnergySource, TechDb, TechNode};
use ecochip_yield::{DieYield, NegativeBinomialYield, Wafer, WaferUtilization};

use crate::error::EcoChipError;

/// Manufacturing CFP of a single die, with its contributing factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipletManufacturing {
    /// Die area used for the estimate (including any communication-circuit
    /// overhead added by the caller).
    pub area: Area,
    /// Die yield at this area and node (Eq. 4).
    pub die_yield: DieYield,
    /// Carbon footprint per good-die area (Eq. 6), i.e. already divided by
    /// yield.
    pub cfpa: CarbonPerArea,
    /// CFP of processing the die itself (`CFPA × Adie`).
    pub die_cfp: Carbon,
    /// CFP of the amortised wafer-periphery wastage (`CFPA_Si × Awasted`).
    pub wastage_cfp: Carbon,
    /// Dies per wafer at this area (Eq. 7).
    pub dies_per_wafer: u64,
}

impl ChipletManufacturing {
    /// Total manufacturing CFP of the die (Eq. 5).
    pub fn total(&self) -> Carbon {
        self.die_cfp + self.wastage_cfp
    }
}

impl fmt::Display for ChipletManufacturing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} die + {} wastage, yield {})",
            self.total(),
            self.die_cfp,
            self.wastage_cfp,
            self.die_yield
        )
    }
}

/// The manufacturing CFP model: Eq. (6) carbon-per-area plus Eq. (5)'s
/// wafer-wastage term.
#[derive(Debug, Clone, Copy)]
pub struct ManufacturingModel<'a> {
    db: &'a TechDb,
    wafer: Wafer,
    fab_source: EnergySource,
    include_wastage: bool,
}

impl<'a> ManufacturingModel<'a> {
    /// Create a model over the given database, wafer size and fab energy
    /// source (`Cmfg,src`).
    pub fn new(db: &'a TechDb, wafer: Wafer, fab_source: EnergySource) -> Self {
        Self {
            db,
            wafer,
            fab_source,
            include_wastage: true,
        }
    }

    /// Disable the wafer-periphery wastage term (used to reproduce Fig. 3(b),
    /// which contrasts estimates with and without wastage accounting).
    pub fn without_wastage(mut self) -> Self {
        self.include_wastage = false;
        self
    }

    /// The wafer used for dies-per-wafer computations.
    pub fn wafer(&self) -> Wafer {
        self.wafer
    }

    /// The fab energy source (`Cmfg,src`) the model was built with.
    pub fn fab_source(&self) -> EnergySource {
        self.fab_source
    }

    /// Whether the wafer-periphery wastage term is included.
    pub fn includes_wastage(&self) -> bool {
        self.include_wastage
    }

    /// Fingerprint of everything besides the die area that influences
    /// [`ManufacturingModel::chiplet_cfp`] for `node`: the node's
    /// manufacturing parameters from the technology database plus the
    /// model's wafer, fab energy source and wastage setting. Sweep
    /// memoization keys on it so caches shared across estimators (different
    /// techdbs included) never serve stale results.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::TechDb`] for unknown nodes.
    pub fn memo_bits(&self, node: TechNode) -> Result<u64, EcoChipError> {
        let params = self.db.node(node)?;
        let mut hasher = DefaultHasher::new();
        params.defect_density.per_cm2().to_bits().hash(&mut hasher);
        params.clustering_alpha.to_bits().hash(&mut hasher);
        params.epa.kwh_per_cm2().to_bits().hash(&mut hasher);
        params.gas_cfp.kg_per_cm2().to_bits().hash(&mut hasher);
        params.material_cfp.kg_per_cm2().to_bits().hash(&mut hasher);
        params.equipment_derate.to_bits().hash(&mut hasher);
        params
            .silicon_wafer_cfp
            .kg_per_cm2()
            .to_bits()
            .hash(&mut hasher);
        self.fab_source
            .carbon_intensity()
            .kg_per_kwh()
            .to_bits()
            .hash(&mut hasher);
        self.wafer.diameter_mm().to_bits().hash(&mut hasher);
        self.include_wastage.hash(&mut hasher);
        Ok(hasher.finish())
    }

    /// Carbon footprint per unit *good* area at a node (Eq. 6):
    /// `CFPA = (ηeq · Cmfg,src · EPA + Cgas + Cmaterial) / Y`.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::TechDb`] for unknown nodes.
    pub fn cfpa(&self, node: TechNode, die_yield: DieYield) -> Result<CarbonPerArea, EcoChipError> {
        let params = self.db.node(node)?;
        let intensity = self.fab_source.carbon_intensity();
        let energy_kg_per_cm2 =
            params.equipment_derate * intensity.kg_per_kwh() * params.epa.kwh_per_cm2();
        let raw =
            energy_kg_per_cm2 + params.gas_cfp.kg_per_cm2() + params.material_cfp.kg_per_cm2();
        Ok(CarbonPerArea::from_kg_per_cm2(
            raw * die_yield.inflation_factor(),
        ))
    }

    /// Manufacturing CFP of one die of `area` in `node` (Eq. 5).
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] for unknown nodes, invalid areas or dies that
    /// do not fit on the wafer.
    pub fn chiplet_cfp(
        &self,
        area: Area,
        node: TechNode,
    ) -> Result<ChipletManufacturing, EcoChipError> {
        if !area.mm2().is_finite() || area.mm2() <= 0.0 {
            return Err(EcoChipError::InvalidSystem(format!(
                "chiplet area must be positive, got {} mm2",
                area.mm2()
            )));
        }
        let params = self.db.node(node)?;
        let die_yield = NegativeBinomialYield::for_node(params).yield_for(area);
        let cfpa = self.cfpa(node, die_yield)?;
        let die_cfp = cfpa * area;

        let utilization: Option<WaferUtilization> = if self.include_wastage {
            Some(self.wafer.utilization(area)?)
        } else {
            None
        };
        let (wastage_cfp, dies_per_wafer) = match utilization {
            Some(u) => {
                let wastage = params.silicon_wafer_cfp * u.wasted_area_per_die;
                (wastage, u.dies_per_wafer)
            }
            None => (Carbon::ZERO, 0),
        };

        Ok(ChipletManufacturing {
            area,
            die_yield,
            cfpa,
            die_cfp,
            wastage_cfp,
            dies_per_wafer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    fn model(db: &TechDb) -> ManufacturingModel<'_> {
        ManufacturingModel::new(db, Wafer::standard_450mm(), EnergySource::Coal)
    }

    #[test]
    fn cfpa_matches_closed_form() {
        let db = db();
        let m = model(&db);
        // 7 nm: ηeq 0.95, EPA 2.75 kWh/cm², coal 0.7 kg/kWh, gas 0.40,
        // material 0.5 => 0.95*0.7*2.75 + 0.9 = 2.72875 kg/cm² at Y=1.
        let cfpa = m.cfpa(TechNode::N7, DieYield::PERFECT).unwrap();
        assert!((cfpa.kg_per_cm2() - 2.728_75).abs() < 1e-6);
        // Yield of 0.5 doubles it.
        let half = m.cfpa(TechNode::N7, DieYield::from_fraction(0.5)).unwrap();
        assert!((half.kg_per_cm2() - 2.0 * 2.728_75).abs() < 1e-6);
    }

    #[test]
    fn ga102_monolith_is_tens_of_kilograms() {
        // The 628 mm² GA102-class die lands in the tens of kg of CO2e, the
        // order of magnitude of Fig. 7(a).
        let db = db();
        let m = model(&db);
        let c = m.chiplet_cfp(Area::from_mm2(628.0), TechNode::N8).unwrap();
        assert!(c.total().kg() > 20.0 && c.total().kg() < 120.0, "{c}");
        assert!(c.die_yield.fraction() < 0.5, "big die yields poorly");
        assert!(c.dies_per_wafer > 100);
        assert!(c.wastage_cfp.kg() > 0.0);
    }

    #[test]
    fn splitting_a_die_lowers_manufacturing_cfp() {
        // Fig. 2(b): four quarter-size dies beat one monolith on Cmfg because
        // yield and wastage improve.
        let db = db();
        let m = model(&db);
        let mono = m.chiplet_cfp(Area::from_mm2(628.0), TechNode::N8).unwrap();
        let quarter = m.chiplet_cfp(Area::from_mm2(157.0), TechNode::N8).unwrap();
        assert!(4.0 * quarter.total().kg() < mono.total().kg());
    }

    #[test]
    fn exponential_growth_with_area() {
        // Fig. 2(a): CFP grows super-linearly with area due to yield.
        let db = db();
        let m = model(&db);
        let a100 = m.chiplet_cfp(Area::from_mm2(100.0), TechNode::N10).unwrap();
        let a200 = m.chiplet_cfp(Area::from_mm2(200.0), TechNode::N10).unwrap();
        assert!(a200.total().kg() > 2.0 * a100.total().kg());
    }

    #[test]
    fn wastage_toggle_reproduces_fig3() {
        let db = db();
        let with = model(&db);
        let without = model(&db).without_wastage();
        let area = Area::from_mm2(628.0);
        let a = with.chiplet_cfp(area, TechNode::N8).unwrap();
        let b = without.chiplet_cfp(area, TechNode::N8).unwrap();
        assert!(a.total().kg() > b.total().kg());
        assert_eq!(b.wastage_cfp.kg(), 0.0);
        assert_eq!(b.dies_per_wafer, 0);
        assert_eq!(a.die_cfp.kg(), b.die_cfp.kg());
        assert_eq!(with.wafer(), Wafer::standard_450mm());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let db = db();
        let m = model(&db);
        assert!(m.chiplet_cfp(Area::ZERO, TechNode::N7).is_err());
        assert!(m.chiplet_cfp(Area::from_mm2(-5.0), TechNode::N7).is_err());
        assert!(m
            .chiplet_cfp(Area::from_mm2(f64::NAN), TechNode::N7)
            .is_err());
        let empty = ecochip_techdb::TechDbBuilder::new().build();
        let m = ManufacturingModel::new(&empty, Wafer::standard_450mm(), EnergySource::Coal);
        assert!(m.chiplet_cfp(Area::from_mm2(100.0), TechNode::N7).is_err());
    }

    #[test]
    fn greener_fab_lowers_cfp_but_not_gas_and_material() {
        let db = db();
        let coal = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let wind = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Wind);
        let area = Area::from_mm2(200.0);
        let c = coal.chiplet_cfp(area, TechNode::N7).unwrap();
        let w = wind.chiplet_cfp(area, TechNode::N7).unwrap();
        assert!(w.total().kg() < c.total().kg());
        // Gas + material emissions do not depend on the energy source, so the
        // wind-powered fab still has a significant floor.
        assert!(w.total().kg() > 0.2 * c.total().kg());
    }

    proptest! {
        #[test]
        fn manufacturing_cfp_is_positive_and_monotone_in_area(
            area in 10.0f64..1500.0,
            extra in 5.0f64..500.0,
        ) {
            let db = db();
            let m = model(&db);
            let small = m.chiplet_cfp(Area::from_mm2(area), TechNode::N7).unwrap();
            let large = m.chiplet_cfp(Area::from_mm2(area + extra), TechNode::N7).unwrap();
            prop_assert!(small.total().kg() > 0.0);
            prop_assert!(large.die_cfp.kg() > small.die_cfp.kg());
            prop_assert!(large.total().kg() > small.total().kg());
        }

        #[test]
        fn advanced_nodes_have_higher_cfpa(
            area in 20.0f64..800.0,
        ) {
            let db = db();
            let m = model(&db);
            let c7 = m.chiplet_cfp(Area::from_mm2(area), TechNode::N7).unwrap();
            let c65 = m.chiplet_cfp(Area::from_mm2(area), TechNode::N65).unwrap();
            prop_assert!(c7.total().kg() > c65.total().kg());
        }
    }
}
