//! Carbon-aware multi-objective optimization over sweep spaces.
//!
//! Exhaustive sweeps enumerate a cartesian product; this module turns the
//! same index-addressable [`SweepSpec`] into a *search* problem:
//!
//! * [`ObjectiveSet`] — which axes of merit to optimize (embodied CFP,
//!   operational CFP, dollar cost, silicon area), selectable per run.
//! * [`ParetoFrontier`] — the set of non-dominated design points, kept in
//!   canonical (case-index) order so two runs that evaluate the same cases
//!   produce byte-identical frontiers.
//! * [`ParetoSink`] — a streaming [`SweepSink`] that rides the chunked
//!   [`SweepEngine`] pipeline: the engine's
//!   deterministic emission order makes the frontier invariant to worker
//!   count, chunk size and sharding.
//! * [`optimize`] — the single entry point dispatching on [`OptMethod`]:
//!   exhaustive Pareto enumeration, simulated annealing, or a steady-state
//!   genetic explorer. The heuristics are budget-bounded (they answer
//!   spaces where [`SweepSpec::try_len`] would overflow or exhaustive
//!   evaluation is unaffordable) and deterministic via a seeded
//!   [`SplitMix64`] stream — same seed, same trajectory, same bytes.
//!
//! Every front end (CLI `--optimize`, `POST /v1/optimize`, the
//! orchestrator's island mode) emits the same [`OptEvent`] NDJSON lines:
//! one `improvement` event per incumbent/frontier improvement and a final
//! `done` event carrying the full frontier.

use std::time::Instant;

use ecochip_trace::{Stage, StageTimings};
use serde::{Deserialize, Serialize};

use crate::costing;
use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::report::CarbonReport;
use crate::sweep::{Shard, SweepContext, SweepEngine, SweepPoint, SweepSink, SweepSpec};
use crate::system::System;

/// Default evaluation budget for the heuristic explorers.
pub const DEFAULT_BUDGET: usize = 128;

/// Default RNG seed (explorer runs are deterministic per seed).
pub const DEFAULT_SEED: u64 = 0;

/// The objective names [`ObjectiveSet`] parses, for usage strings.
pub const OBJECTIVE_NAMES: &str = "embodied|operational|cost|area";

/// The method names [`OptMethod`] parses, for usage strings.
pub const METHOD_NAMES: &str = "pareto|anneal|genetic";

/// A malformed optimization parameter (method or objective list).
///
/// Front ends map this to their usage-error contract: the CLI exits 2 with
/// the message as a one-line hint, the HTTP server answers 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptParseError(String);

impl OptParseError {
    /// The one-line description of what was malformed.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for OptParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for OptParseError {}

/// The deterministic splitmix64 generator driving the explorers.
///
/// Tiny, seedable and platform-independent: the same seed produces the
/// same stream everywhere, which is what makes seeded `--optimize` runs
/// byte-identical and CI-diffable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The splitmix64 stream increment (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the modulo reduction: the tiny bias is irrelevant for search
    /// heuristics and keeps the stream trivially reproducible.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range needs a non-empty range");
        self.next_u64() % n
    }
}

/// Derive island `island`'s RNG seed from the run seed.
///
/// Each island of an island-model run explores its shard with its own
/// deterministic stream; the derivation is stable, so a given
/// `(seed, island)` pair always explores the same trajectory regardless of
/// how many other islands run beside it.
#[must_use]
pub fn island_seed(seed: u64, island: usize) -> u64 {
    SplitMix64::new(seed ^ GOLDEN.wrapping_mul(island as u64 + 1)).next_u64()
}

/// One axis of merit a design point is scored on. All objectives are
/// minimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptObjective {
    /// Embodied CFP (manufacturing + HI + design), kg CO₂e.
    Embodied,
    /// Lifetime operational CFP, kg CO₂e.
    Operational,
    /// System dollar cost (the Fig. 15 cost model).
    Cost,
    /// Total silicon area, mm².
    Area,
}

impl OptObjective {
    /// The wire/CLI name of this objective.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OptObjective::Embodied => "embodied",
            OptObjective::Operational => "operational",
            OptObjective::Cost => "cost",
            OptObjective::Area => "area",
        }
    }

    /// Score `system`/`report` on this objective (lower is better).
    fn score(
        self,
        estimator: &EcoChip,
        system: &System,
        report: &CarbonReport,
    ) -> Result<f64, EcoChipError> {
        Ok(match self {
            OptObjective::Embodied => report.embodied().kg(),
            OptObjective::Operational => report.operational().kg(),
            OptObjective::Cost => costing::system_cost(estimator, system)?.total().dollars(),
            OptObjective::Area => report.silicon_area().mm2(),
        })
    }
}

impl std::str::FromStr for OptObjective {
    type Err = OptParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "embodied" => Ok(OptObjective::Embodied),
            "operational" => Ok(OptObjective::Operational),
            "cost" => Ok(OptObjective::Cost),
            "area" => Ok(OptObjective::Area),
            other => Err(OptParseError(format!(
                "unknown objective {other:?}; pass a comma-separated list of {OBJECTIVE_NAMES}"
            ))),
        }
    }
}

/// An ordered, duplicate-free set of objectives.
///
/// The order is the order values appear in every [`FrontierPoint`], so it
/// is part of the wire contract: `"embodied,cost"` and `"cost,embodied"`
/// are different sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveSet {
    objectives: Vec<OptObjective>,
}

impl Default for ObjectiveSet {
    /// The paper's headline tradeoff: embodied vs operational CFP.
    fn default() -> Self {
        Self {
            objectives: vec![OptObjective::Embodied, OptObjective::Operational],
        }
    }
}

impl ObjectiveSet {
    /// The objectives, in scoring order.
    #[must_use]
    pub fn objectives(&self) -> &[OptObjective] {
        &self.objectives
    }

    /// Number of objectives in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the set is empty (never true for a parsed set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// The canonical comma-joined form (`"embodied,operational"`).
    #[must_use]
    pub fn label(&self) -> String {
        self.objectives
            .iter()
            .map(|o| o.label())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Score a design on every objective, in set order.
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors when [`OptObjective::Cost`] is in the
    /// set.
    pub fn score(
        &self,
        estimator: &EcoChip,
        system: &System,
        report: &CarbonReport,
    ) -> Result<Vec<f64>, EcoChipError> {
        self.objectives
            .iter()
            .map(|objective| objective.score(estimator, system, report))
            .collect()
    }
}

impl std::str::FromStr for ObjectiveSet {
    type Err = OptParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut objectives = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(OptParseError(format!(
                    "empty objective in {s:?}; pass a comma-separated list of {OBJECTIVE_NAMES}"
                )));
            }
            let objective: OptObjective = part.parse()?;
            if objectives.contains(&objective) {
                return Err(OptParseError(format!(
                    "duplicate objective {part:?} in {s:?}"
                )));
            }
            objectives.push(objective);
        }
        if objectives.is_empty() {
            return Err(OptParseError(format!(
                "no objectives in {s:?}; pass a comma-separated list of {OBJECTIVE_NAMES}"
            )));
        }
        Ok(Self { objectives })
    }
}

/// The optimization method a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptMethod {
    /// Exhaustive streaming Pareto enumeration of the (sharded) space.
    Pareto,
    /// Budget-bounded simulated annealing over axis indices.
    Anneal,
    /// Budget-bounded steady-state genetic search over axis indices.
    Genetic,
}

impl OptMethod {
    /// The wire/CLI name of this method.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OptMethod::Pareto => "pareto",
            OptMethod::Anneal => "anneal",
            OptMethod::Genetic => "genetic",
        }
    }
}

impl std::str::FromStr for OptMethod {
    type Err = OptParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pareto" => Ok(OptMethod::Pareto),
            "anneal" => Ok(OptMethod::Anneal),
            "genetic" => Ok(OptMethod::Genetic),
            other => Err(OptParseError(format!(
                "unknown optimize method {other:?}; pass {METHOD_NAMES}"
            ))),
        }
    }
}

/// One named objective value of a [`FrontierPoint`] (the wire form keeps
/// the name next to the number so streams are self-describing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// Objective name (`"embodied"`, `"operational"`, `"cost"`, `"area"`).
    pub objective: String,
    /// The score (lower is better).
    pub value: f64,
}

/// A design point on (or considered for) the Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The point's flat case index in the sweep's index space — the
    /// canonical identity (and sort key) of the design.
    pub index: usize,
    /// Human-readable case label (axis values joined with `" / "`).
    pub label: String,
    /// Objective scores, in [`ObjectiveSet`] order.
    pub objectives: Vec<ObjectiveValue>,
}

impl FrontierPoint {
    /// A point scored as `values` (in `set` order) for case `index`.
    #[must_use]
    pub fn new(index: usize, label: String, set: &ObjectiveSet, values: &[f64]) -> Self {
        let objectives = set
            .objectives()
            .iter()
            .zip(values)
            .map(|(objective, value)| ObjectiveValue {
                objective: objective.label().to_string(),
                value: *value,
            })
            .collect();
        Self {
            index,
            label,
            objectives,
        }
    }

    /// The raw objective values, in set order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.objectives.iter().map(|o| o.value)
    }

    /// Pareto dominance: `self` dominates `other` iff it is no worse on
    /// every objective and strictly better on at least one.
    #[must_use]
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        debug_assert_eq!(self.objectives.len(), other.objectives.len());
        let mut strictly_better = false;
        for (a, b) in self.values().zip(other.values()) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// The set of non-dominated points seen so far, in canonical case-index
/// order.
///
/// Insertion is order-independent: the surviving set is exactly the
/// non-dominated subset of everything ever inserted, so sharded runs that
/// merge per-shard frontiers reproduce the unsharded frontier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFrontier {
    points: Vec<FrontierPoint>,
}

impl ParetoFrontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The frontier, sorted by case index.
    #[must_use]
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of points currently on the frontier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consume the frontier into its sorted points.
    #[must_use]
    pub fn into_points(self) -> Vec<FrontierPoint> {
        self.points
    }

    /// Offer `candidate` to the frontier. Returns `true` when the
    /// candidate was admitted (it is not dominated by, nor a duplicate
    /// of, any current point); dominated incumbents are evicted.
    pub fn insert(&mut self, candidate: FrontierPoint) -> bool {
        // Explorers revisit indices; the same case is never an improvement.
        if self.points.iter().any(|p| p.index == candidate.index) {
            return false;
        }
        if self.points.iter().any(|p| p.dominates(&candidate)) {
            return false;
        }
        self.points.retain(|p| !candidate.dominates(p));
        let at = self.points.partition_point(|p| p.index < candidate.index);
        self.points.insert(at, candidate);
        true
    }

    /// Merge another frontier in (island/shard merge). Returns how many of
    /// its points were admitted.
    pub fn merge(&mut self, other: &ParetoFrontier) -> usize {
        other
            .points
            .iter()
            .filter(|p| self.insert((*p).clone()))
            .count()
    }
}

/// Parameters of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptConfig {
    /// The search method.
    pub method: OptMethod,
    /// The objectives to minimize.
    pub objectives: ObjectiveSet,
    /// Evaluation budget for the heuristic explorers (ignored by
    /// [`OptMethod::Pareto`], which enumerates its slice exhaustively).
    pub budget: usize,
    /// RNG seed (explorer trajectories are deterministic per seed).
    pub seed: u64,
    /// Island index stamped into emitted events, for island-model runs.
    pub island: Option<usize>,
    /// Points seeding the frontier archive before exploration starts —
    /// the island-model frontier exchange: each round an island receives
    /// the merged global frontier, so only genuinely new non-dominated
    /// points are reported as improvements.
    pub seed_frontier: Vec<FrontierPoint>,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            method: OptMethod::Pareto,
            objectives: ObjectiveSet::default(),
            budget: DEFAULT_BUDGET,
            seed: DEFAULT_SEED,
            island: None,
            seed_frontier: Vec::new(),
        }
    }
}

/// One NDJSON line of an optimization stream.
///
/// `event` is `"improvement"` (carries `point`, the newly admitted
/// incumbent/frontier point) or `"done"` (carries `frontier`, the full
/// final frontier). Fields that do not apply to an event kind are `null`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptEvent {
    /// `"improvement"` or `"done"`.
    pub event: String,
    /// The method that produced the event (`"pareto"|"anneal"|"genetic"`).
    pub method: String,
    /// Island index, for island-model runs.
    pub island: Option<usize>,
    /// Cases evaluated so far (including this one).
    pub evaluated: usize,
    /// Frontier size after this event.
    pub frontier_size: usize,
    /// The improving point (`improvement` events only).
    pub point: Option<FrontierPoint>,
    /// The full final frontier, sorted by case index (`done` events only).
    pub frontier: Option<Vec<FrontierPoint>>,
}

impl OptEvent {
    /// An incumbent/frontier improvement event.
    #[must_use]
    pub fn improvement(
        method: OptMethod,
        island: Option<usize>,
        evaluated: usize,
        frontier_size: usize,
        point: FrontierPoint,
    ) -> Self {
        Self {
            event: "improvement".to_string(),
            method: method.label().to_string(),
            island,
            evaluated,
            frontier_size,
            point: Some(point),
            frontier: None,
        }
    }

    /// The terminal event carrying the final frontier.
    #[must_use]
    pub fn done(outcome: &OptOutcome, island: Option<usize>) -> Self {
        Self {
            event: "done".to_string(),
            method: outcome.method.clone(),
            island,
            evaluated: outcome.evaluated,
            frontier_size: outcome.frontier.len(),
            point: None,
            frontier: Some(outcome.frontier.clone()),
        }
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptOutcome {
    /// The method that ran (`"pareto"|"anneal"|"genetic"`).
    pub method: String,
    /// Total cases evaluated.
    pub evaluated: usize,
    /// The final Pareto frontier, sorted by case index.
    pub frontier: Vec<FrontierPoint>,
}

/// A streaming [`SweepSink`] that folds sweep points into a Pareto
/// frontier and reports admissions as [`OptEvent`]s.
///
/// The engine emits points in deterministic case order, so the point's
/// flat index is `start_index + emission count` — and the resulting
/// frontier (and event stream) is bit-for-bit invariant to `--jobs` and
/// `--chunk`.
#[derive(Debug)]
pub struct ParetoSink<'a, F> {
    estimator: &'a EcoChip,
    objectives: &'a ObjectiveSet,
    island: Option<usize>,
    frontier: ParetoFrontier,
    next_index: usize,
    evaluated: usize,
    on_event: F,
}

impl<'a, F> ParetoSink<'a, F>
where
    F: FnMut(&OptEvent) -> Result<(), EcoChipError>,
{
    /// A sink scoring points with `objectives`, numbering them from
    /// `start_index` (the owning shard's first case index).
    pub fn new(
        estimator: &'a EcoChip,
        objectives: &'a ObjectiveSet,
        start_index: usize,
        island: Option<usize>,
        on_event: F,
    ) -> Self {
        Self {
            estimator,
            objectives,
            island,
            frontier: ParetoFrontier::new(),
            next_index: start_index,
            evaluated: 0,
            on_event,
        }
    }

    /// Replace the starting frontier (the island-model frontier
    /// exchange: points already known globally are not re-reported).
    #[must_use]
    pub fn with_frontier(mut self, frontier: ParetoFrontier) -> Self {
        self.frontier = frontier;
        self
    }

    /// Finish the stream: the frontier and the number of points folded.
    #[must_use]
    pub fn finish(self) -> (ParetoFrontier, usize) {
        (self.frontier, self.evaluated)
    }
}

impl<F> SweepSink for ParetoSink<'_, F>
where
    F: FnMut(&OptEvent) -> Result<(), EcoChipError>,
{
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
        let index = self.next_index;
        self.next_index += 1;
        self.evaluated += 1;
        let values = self
            .objectives
            .score(self.estimator, &point.system, &point.report)?;
        let candidate = FrontierPoint::new(index, point.label, self.objectives, &values);
        if self.frontier.insert(candidate.clone()) {
            (self.on_event)(&OptEvent::improvement(
                OptMethod::Pareto,
                self.island,
                self.evaluated,
                self.frontier.len(),
                candidate,
            ))?;
        }
        Ok(())
    }
}

/// A scored case: its frontier form plus the scalar annealing energy.
#[derive(Debug, Clone)]
struct Evaluated {
    point: FrontierPoint,
    energy: f64,
}

/// Scalarize an objective vector for the single-incumbent explorers:
/// the sum of natural logs (a geometric-mean energy), so objectives with
/// wildly different units (kg vs dollars vs mm²) contribute comparable,
/// scale-free gradients.
fn scalar_energy(values: &[f64]) -> f64 {
    values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum()
}

/// Serial case evaluator shared by the explorers: decodes a flat index,
/// picks the fab-energy-source estimator variant the engine would use,
/// estimates against the (possibly warm) memo context and scores the
/// objective set. Serial evaluation is what makes explorer trajectories
/// independent of worker counts.
struct CaseEval<'a> {
    estimator: &'a EcoChip,
    context: &'a SweepContext,
    objectives: &'a ObjectiveSet,
    timings: Option<&'a StageTimings>,
    variants: Vec<(u64, EcoChip)>,
}

impl<'a> CaseEval<'a> {
    fn new(
        estimator: &'a EcoChip,
        context: &'a SweepContext,
        objectives: &'a ObjectiveSet,
        timings: Option<&'a StageTimings>,
    ) -> Self {
        Self {
            estimator,
            context,
            objectives,
            timings,
            variants: Vec::new(),
        }
    }

    fn at(&mut self, spec: &SweepSpec, index: usize) -> Result<Evaluated, EcoChipError> {
        let case = spec.case_at(index)?;
        let variant = match case.fab_source {
            None => None,
            Some(source) => {
                let bits = source.carbon_intensity().kg_per_kwh().to_bits();
                let at = match self.variants.iter().position(|(b, _)| *b == bits) {
                    Some(at) => at,
                    None => {
                        let mut config = self.estimator.config().clone();
                        config.fab_source = source;
                        self.variants.push((bits, EcoChip::new(config)));
                        self.variants.len() - 1
                    }
                };
                Some(at)
            }
        };
        let estimator = match variant {
            None => self.estimator,
            Some(at) => &self.variants[at].1,
        };
        let report = match self.timings {
            None => estimator.estimate_with(&case.system, self.context)?,
            Some(timings) => {
                let started = Instant::now();
                let report = estimator.estimate_with(&case.system, self.context);
                timings.record(Stage::Estimate, started.elapsed());
                report?
            }
        };
        let values = self.objectives.score(estimator, &case.system, &report)?;
        let energy = scalar_energy(&values);
        Ok(Evaluated {
            point: FrontierPoint::new(index, case.label(), self.objectives, &values),
            energy,
        })
    }
}

/// Decompose a flat case index into per-axis digits (row-major, last axis
/// fastest — the [`SweepSpec::case_at`] convention).
fn digits_of(mut index: usize, lens: &[usize]) -> Vec<usize> {
    let mut digits = vec![0usize; lens.len()];
    for (at, len) in lens.iter().enumerate().rev() {
        digits[at] = index % len;
        index /= len;
    }
    digits
}

/// Recompose per-axis digits into a flat case index.
fn index_of(digits: &[usize], lens: &[usize]) -> usize {
    let mut index = 0usize;
    for (digit, len) in digits.iter().zip(lens) {
        index = index * len + digit;
    }
    index
}

/// Map an arbitrary flat index into the explored range (island shards
/// explore only their own slice of the index space).
fn into_range(index: usize, range: &std::ops::Range<usize>) -> usize {
    if range.contains(&index) {
        index
    } else {
        range.start + index % range.len()
    }
}

/// A single-axis mutation of `index`: step one axis's digit ±1 (wrapping
/// within the axis), then fold the result back into `range`.
fn neighbor(
    index: usize,
    lens: &[usize],
    range: &std::ops::Range<usize>,
    rng: &mut SplitMix64,
) -> usize {
    let movable: Vec<usize> = (0..lens.len()).filter(|&at| lens[at] > 1).collect();
    if movable.is_empty() || range.len() < 2 {
        return index;
    }
    let axis = movable[rng.gen_range(movable.len() as u64) as usize];
    let len = lens[axis];
    let mut digits = digits_of(index, lens);
    let step = if rng.next_u64() & 1 == 0 { 1 } else { len - 1 };
    digits[axis] = (digits[axis] + step) % len;
    into_range(index_of(&digits, lens), range)
}

/// Run one optimization over the slice of `spec`'s index space that
/// `shard` owns, emitting [`OptEvent`] lines through `on_event` (every
/// improvement, then the terminal `done` event) and returning the final
/// outcome.
///
/// * [`OptMethod::Pareto`] enumerates the slice exhaustively through
///   `engine`'s chunked streaming pipeline (so `--jobs`/`--chunk` change
///   wall-clock, never bytes).
/// * [`OptMethod::Anneal`] / [`OptMethod::Genetic`] evaluate serially,
///   bounded by `config.budget`, deterministic per `config.seed`.
///
/// # Errors
///
/// Propagates spec resolution, estimator, cost-model and sink errors.
#[allow(clippy::too_many_arguments)]
pub fn optimize<F>(
    estimator: &EcoChip,
    engine: &SweepEngine,
    spec: &SweepSpec,
    shard: Shard,
    context: &SweepContext,
    timings: Option<&StageTimings>,
    config: &OptConfig,
    mut on_event: F,
) -> Result<OptOutcome, EcoChipError>
where
    F: FnMut(&OptEvent) -> Result<(), EcoChipError>,
{
    let total = spec.try_len()?;
    let range = shard.range(total);
    let mut seeded = ParetoFrontier::new();
    for point in &config.seed_frontier {
        seeded.insert(point.clone());
    }
    let outcome = match config.method {
        OptMethod::Pareto => {
            let mut sink = ParetoSink::new(
                estimator,
                &config.objectives,
                range.start,
                config.island,
                &mut on_event,
            )
            .with_frontier(seeded);
            engine.run_streaming_timed(estimator, spec, shard, context, timings, &mut sink)?;
            let (frontier, evaluated) = sink.finish();
            OptOutcome {
                method: OptMethod::Pareto.label().to_string(),
                evaluated,
                frontier: frontier.into_points(),
            }
        }
        OptMethod::Anneal => anneal(
            estimator,
            spec,
            &range,
            context,
            timings,
            config,
            seeded,
            &mut on_event,
        )?,
        OptMethod::Genetic => genetic(
            estimator,
            spec,
            &range,
            context,
            timings,
            config,
            seeded,
            &mut on_event,
        )?,
    };
    on_event(&OptEvent::done(&outcome, config.island))?;
    Ok(outcome)
}

/// Simulated annealing over the flat index space: single-axis neighbor
/// moves, linear cooling, Metropolis acceptance on the log-scalarized
/// energy. Every evaluated point is offered to the frontier; improvement
/// events fire when the scalar incumbent improves.
#[allow(clippy::too_many_arguments)]
fn anneal<F>(
    estimator: &EcoChip,
    spec: &SweepSpec,
    range: &std::ops::Range<usize>,
    context: &SweepContext,
    timings: Option<&StageTimings>,
    config: &OptConfig,
    mut frontier: ParetoFrontier,
    on_event: &mut F,
) -> Result<OptOutcome, EcoChipError>
where
    F: FnMut(&OptEvent) -> Result<(), EcoChipError>,
{
    let method = OptMethod::Anneal;
    let mut evaluated = 0usize;
    if range.is_empty() {
        return Ok(OptOutcome {
            method: method.label().to_string(),
            evaluated,
            frontier: frontier.into_points(),
        });
    }
    let lens: Vec<usize> = spec.axes().iter().map(|axis| axis.len()).collect();
    let budget = config.budget.max(1);
    let mut rng = SplitMix64::new(config.seed);
    let mut eval = CaseEval::new(estimator, context, &config.objectives, timings);

    let start = range.start + rng.gen_range(range.len() as u64) as usize;
    let mut current = eval.at(spec, start)?;
    evaluated += 1;
    frontier.insert(current.point.clone());
    let mut best = current.energy;
    on_event(&OptEvent::improvement(
        method,
        config.island,
        evaluated,
        frontier.len(),
        current.point.clone(),
    ))?;

    while evaluated < budget {
        let temperature = (1.0 - evaluated as f64 / budget as f64).max(1e-3);
        let candidate_index = neighbor(current.point.index, &lens, range, &mut rng);
        let candidate = eval.at(spec, candidate_index)?;
        evaluated += 1;
        frontier.insert(candidate.point.clone());
        if candidate.energy < best {
            best = candidate.energy;
            on_event(&OptEvent::improvement(
                method,
                config.island,
                evaluated,
                frontier.len(),
                candidate.point.clone(),
            ))?;
        }
        let accept = candidate.energy < current.energy
            || rng.next_f64() < ((current.energy - candidate.energy) / temperature).exp();
        if accept {
            current = candidate;
        }
    }
    Ok(OptOutcome {
        method: method.label().to_string(),
        evaluated,
        frontier: frontier.into_points(),
    })
}

/// Steady-state genetic search: tournament selection, uniform per-axis
/// crossover, single-digit mutation, worst-member replacement. Improvement
/// events fire when the best scalar energy improves.
#[allow(clippy::too_many_arguments)]
fn genetic<F>(
    estimator: &EcoChip,
    spec: &SweepSpec,
    range: &std::ops::Range<usize>,
    context: &SweepContext,
    timings: Option<&StageTimings>,
    config: &OptConfig,
    mut frontier: ParetoFrontier,
    on_event: &mut F,
) -> Result<OptOutcome, EcoChipError>
where
    F: FnMut(&OptEvent) -> Result<(), EcoChipError>,
{
    let method = OptMethod::Genetic;
    let mut evaluated = 0usize;
    if range.is_empty() {
        return Ok(OptOutcome {
            method: method.label().to_string(),
            evaluated,
            frontier: frontier.into_points(),
        });
    }
    let lens: Vec<usize> = spec.axes().iter().map(|axis| axis.len()).collect();
    let budget = config.budget.max(1);
    let mut rng = SplitMix64::new(config.seed);
    let mut eval = CaseEval::new(estimator, context, &config.objectives, timings);

    let pop_size = 8.min(budget).min(range.len()).max(1);
    let mut population: Vec<Evaluated> = Vec::with_capacity(pop_size);
    let mut best = f64::INFINITY;
    let emit_if_best = |member: &Evaluated,
                        best: &mut f64,
                        evaluated: usize,
                        frontier: &ParetoFrontier,
                        on_event: &mut F|
     -> Result<(), EcoChipError> {
        if member.energy < *best {
            *best = member.energy;
            on_event(&OptEvent::improvement(
                method,
                config.island,
                evaluated,
                frontier.len(),
                member.point.clone(),
            ))?;
        }
        Ok(())
    };

    while population.len() < pop_size && evaluated < budget {
        let index = range.start + rng.gen_range(range.len() as u64) as usize;
        let member = eval.at(spec, index)?;
        evaluated += 1;
        frontier.insert(member.point.clone());
        emit_if_best(&member, &mut best, evaluated, &frontier, on_event)?;
        population.push(member);
    }

    while evaluated < budget {
        let pick = |rng: &mut SplitMix64, population: &[Evaluated]| -> usize {
            let a = rng.gen_range(population.len() as u64) as usize;
            let b = rng.gen_range(population.len() as u64) as usize;
            if population[a].energy <= population[b].energy {
                a
            } else {
                b
            }
        };
        let parent_a = pick(&mut rng, &population);
        let parent_b = pick(&mut rng, &population);
        let child_index = if lens.is_empty() {
            range.start
        } else {
            let digits_a = digits_of(population[parent_a].point.index, &lens);
            let digits_b = digits_of(population[parent_b].point.index, &lens);
            let mut child: Vec<usize> = digits_a
                .iter()
                .zip(&digits_b)
                .map(|(&a, &b)| if rng.next_u64() & 1 == 0 { a } else { b })
                .collect();
            // Mutate one random axis with probability ~1/2 to keep the
            // steady-state population from collapsing.
            if rng.next_u64() & 1 == 0 {
                let axis = rng.gen_range(lens.len() as u64) as usize;
                child[axis] = rng.gen_range(lens[axis] as u64) as usize;
            }
            into_range(index_of(&child, &lens), range)
        };
        let child = eval.at(spec, child_index)?;
        evaluated += 1;
        frontier.insert(child.point.clone());
        emit_if_best(&child, &mut best, evaluated, &frontier, on_event)?;
        let worst = population
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.energy.total_cmp(&b.energy))
            .map(|(at, _)| at)
            .expect("population is non-empty");
        if child.energy < population[worst].energy {
            population[worst] = child;
        }
    }
    Ok(OptOutcome {
        method: method.label().to_string(),
        evaluated,
        frontier: frontier.into_points(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disaggregation::NodeTuple;
    use crate::sweep::SweepAxis;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig};
    use ecochip_power::UsageProfile;
    use ecochip_techdb::{DesignType, Energy, TechNode, TimeSpan};

    fn base_system() -> System {
        let tuple = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        System::builder("ga102-like")
            .chiplet(Chiplet::new(
                "logic",
                DesignType::Logic,
                tuple.logic,
                ChipletSize::Transistors(20.0e9),
            ))
            .chiplet(Chiplet::new(
                "analog",
                DesignType::Analog,
                tuple.analog,
                ChipletSize::Transistors(6.0e9),
            ))
            .chiplet(Chiplet::new(
                "sram",
                DesignType::Memory,
                tuple.memory,
                ChipletSize::Transistors(2.3e9),
            ))
            .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
            .usage(UsageProfile::Measured {
                energy_per_year: Energy::from_kwh(228.0),
            })
            .lifetime(TimeSpan::from_years(4.0))
            .build()
            .expect("base system")
    }

    fn small_spec() -> SweepSpec {
        let base = base_system();
        let lifetimes = SweepAxis::lifetimes_years(&[1.0, 2.0, 4.0, 8.0]);
        let energy = SweepAxis::FabEnergySources(vec![
            ecochip_techdb::EnergySource::Coal,
            ecochip_techdb::EnergySource::Solar,
            ecochip_techdb::EnergySource::Wind,
        ]);
        SweepSpec::new(base).axis(lifetimes).axis(energy)
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
        let mut c = SplitMix64::new(43);
        assert_ne!(c.next_u64(), xs[0]);
        for _ in 0..100 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.gen_range(7) < 7);
        }
        // Island seeds are stable and island-distinct.
        assert_eq!(island_seed(42, 0), island_seed(42, 0));
        assert_ne!(island_seed(42, 0), island_seed(42, 1));
    }

    #[test]
    fn objective_sets_parse_and_reject() {
        let set: ObjectiveSet = "embodied,operational,cost,area".parse().unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.label(), "embodied,operational,cost,area");
        assert_eq!(ObjectiveSet::default().label(), "embodied,operational");
        for bad in ["", "embodied,", "embodied,embodied", "latency"] {
            assert!(bad.parse::<ObjectiveSet>().is_err(), "{bad:?}");
        }
        assert!("pareto".parse::<OptMethod>().is_ok());
        assert!("anneal".parse::<OptMethod>().is_ok());
        assert!("genetic".parse::<OptMethod>().is_ok());
        let err = "hillclimb".parse::<OptMethod>().unwrap_err();
        assert!(err.message().contains("pareto|anneal|genetic"), "{err}");
    }

    fn fp(index: usize, values: &[f64]) -> FrontierPoint {
        let set: ObjectiveSet = "embodied,cost".parse().unwrap();
        FrontierPoint::new(index, format!("p{index}"), &set, values)
    }

    #[test]
    fn dominance_and_frontier_are_order_independent() {
        let a = fp(0, &[1.0, 1.0]);
        let b = fp(1, &[2.0, 2.0]);
        let c = fp(2, &[0.5, 3.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a));
        // Equal vectors: neither dominates.
        let a2 = fp(3, &[1.0, 1.0]);
        assert!(!a.dominates(&a2) && !a2.dominates(&a));

        let points = [a.clone(), b.clone(), c.clone(), a2.clone()];
        // Every insertion order converges to the same frontier set.
        let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]];
        let mut frontiers = Vec::new();
        for order in orders {
            let mut frontier = ParetoFrontier::new();
            for at in order {
                frontier.insert(points[at].clone());
            }
            frontiers.push(frontier);
        }
        for frontier in &frontiers {
            assert_eq!(frontier, &frontiers[0]);
            // b is dominated; a, c, a2 survive, sorted by index.
            let indices: Vec<usize> = frontier.points().iter().map(|p| p.index).collect();
            assert_eq!(indices, vec![0, 2, 3]);
        }
        // Duplicate indices are never re-admitted.
        let mut frontier = frontiers.pop().unwrap();
        assert!(!frontier.insert(a.clone()));
        // Merging is admission-counted.
        let mut other = ParetoFrontier::new();
        other.insert(fp(9, &[0.1, 0.1]));
        assert_eq!(frontier.merge(&other), 1);
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn index_digit_roundtrip_matches_case_at() {
        let lens = [4usize, 3usize];
        for index in 0..12 {
            let digits = digits_of(index, &lens);
            assert_eq!(index_of(&digits, &lens), index);
        }
        // Digit decomposition follows case_at's row-major order: the last
        // axis is fastest.
        assert_eq!(digits_of(5, &lens), vec![1, 2]);
        let spec = small_spec();
        let case = spec.case_at(5).unwrap();
        assert_eq!(case.labels[0], "2y");
    }

    #[test]
    fn pareto_optimize_finds_the_exhaustive_frontier() {
        let estimator = EcoChip::default();
        let spec = small_spec();
        let mut events = Vec::new();
        let outcome = optimize(
            &estimator,
            &SweepEngine::serial(),
            &spec,
            Shard::FULL,
            &SweepContext::new(),
            None,
            &OptConfig::default(),
            |event: &OptEvent| {
                events.push(event.clone());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(outcome.evaluated, 12);
        assert!(!outcome.frontier.is_empty());
        // The streamed frontier equals the brute-force non-dominated set.
        let mut brute = ParetoFrontier::new();
        let context = SweepContext::new();
        let objectives = ObjectiveSet::default();
        let mut eval = CaseEval::new(&estimator, &context, &objectives, None);
        for index in 0..12 {
            brute.insert(eval.at(&spec, index).unwrap().point);
        }
        assert_eq!(outcome.frontier, brute.into_points());
        // The event stream ends with a done event carrying the frontier.
        let done = events.last().unwrap();
        assert_eq!(done.event, "done");
        assert_eq!(done.frontier.as_ref().unwrap(), &outcome.frontier);
        assert!(events.iter().filter(|e| e.event == "improvement").count() >= 1);
    }

    #[test]
    fn sharded_pareto_merges_to_the_full_frontier() {
        let estimator = EcoChip::default();
        let spec = small_spec();
        let context = SweepContext::new();
        let full = optimize(
            &estimator,
            &SweepEngine::serial(),
            &spec,
            Shard::FULL,
            &context,
            None,
            &OptConfig::default(),
            |_event: &OptEvent| Ok(()),
        )
        .unwrap();
        for of in [2usize, 3, 5] {
            let mut merged = ParetoFrontier::new();
            for index in 0..of {
                let outcome = optimize(
                    &estimator,
                    &SweepEngine::serial(),
                    &spec,
                    Shard::new(index, of).unwrap(),
                    &context,
                    None,
                    &OptConfig::default(),
                    |_event: &OptEvent| Ok(()),
                )
                .unwrap();
                for point in outcome.frontier {
                    merged.insert(point);
                }
            }
            assert_eq!(merged.into_points(), full.frontier, "of={of}");
        }
    }

    #[test]
    fn explorers_are_deterministic_per_seed_and_budget_bounded() {
        let estimator = EcoChip::default();
        let spec = small_spec();
        let context = SweepContext::new();
        for method in [OptMethod::Anneal, OptMethod::Genetic] {
            let config = OptConfig {
                method,
                budget: 20,
                seed: 42,
                ..OptConfig::default()
            };
            let run = |config: &OptConfig| {
                let mut lines = Vec::new();
                let outcome = optimize(
                    &estimator,
                    &SweepEngine::serial(),
                    &spec,
                    Shard::FULL,
                    &context,
                    None,
                    config,
                    |event: &OptEvent| {
                        lines.push(serde_json::to_string(event).unwrap());
                        Ok(())
                    },
                )
                .unwrap();
                (outcome, lines)
            };
            let (a, lines_a) = run(&config);
            let (b, lines_b) = run(&config);
            assert_eq!(a, b, "{method:?}");
            assert_eq!(lines_a, lines_b, "{method:?}");
            assert_eq!(a.evaluated, 20, "{method:?}");
            assert!(!a.frontier.is_empty(), "{method:?}");
            // A different seed explores a different trajectory.
            let (_, lines_c) = run(&OptConfig {
                seed: 7,
                ..config.clone()
            });
            assert_ne!(lines_a, lines_c, "{method:?}");
        }
    }

    #[test]
    fn explorer_events_roundtrip_and_null_out_unused_fields() {
        let set = ObjectiveSet::default();
        let point = FrontierPoint::new(3, "p".into(), &set, &[1.0, 2.0]);
        let event = OptEvent::improvement(OptMethod::Anneal, Some(1), 5, 2, point);
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.starts_with(r#"{"event":"improvement""#), "{json}");
        assert!(json.contains(r#""frontier":null"#), "{json}");
        let back: OptEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        let outcome = OptOutcome {
            method: "anneal".into(),
            evaluated: 5,
            frontier: vec![],
        };
        let done = OptEvent::done(&outcome, None);
        let json = serde_json::to_string(&done).unwrap();
        assert!(json.contains(r#""event":"done""#), "{json}");
        let back: OptEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, done);
    }
}
