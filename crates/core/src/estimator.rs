//! The ECO-CHIP total-CFP estimator.

use ecochip_act::{ActBreakdown, ActEstimator};
use ecochip_design::{gates_from_transistors, DesignEstimator};
use ecochip_floorplan::{ChipletOutline, Floorplan, SlicingFloorplanner};
use ecochip_packaging::{CommOverheads, CommunicationEstimator, PackageEstimator};
use ecochip_power::OperationalEstimator;
use ecochip_techdb::{Area, Carbon, TechNode};
use ecochip_yield::NegativeBinomialYield;

use crate::config::EstimatorConfig;
use crate::error::EcoChipError;
use crate::manufacturing::ManufacturingModel;
use crate::report::{CarbonReport, ChipletReport, HiBreakdown};
use crate::sweep::SweepContext;
use crate::system::System;

/// The ECO-CHIP estimator.
///
/// Construct it once with an [`EstimatorConfig`] and call
/// [`EcoChip::estimate`] for every [`System`] of interest; the estimator is
/// cheap to clone and borrows nothing, so it can be reused across sweeps.
#[derive(Debug, Clone, Default)]
pub struct EcoChip {
    config: EstimatorConfig,
}

impl EcoChip {
    /// Create an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Fingerprint of every configuration input that feeds the memoized
    /// stages (floorplan and per-die manufacturing): the floorplanner
    /// parameters plus, for every node of the technology database, the
    /// manufacturing model's [`ManufacturingModel::memo_bits`] (node
    /// parameters, wafer, fab energy source, wastage accounting).
    ///
    /// [`SweepContext::save_to`] stamps memo files with this value and
    /// [`SweepContext::load_from`] rejects files whose stamp differs, so a
    /// memo filled under one configuration is never reused under another.
    /// The hash is stable within one toolchain but not guaranteed across
    /// Rust releases; a cross-version mismatch simply rejects the memo,
    /// which is always safe.
    pub fn memo_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let mut hasher = DefaultHasher::new();
        self.config
            .floorplan
            .chiplet_spacing
            .mm()
            .to_bits()
            .hash(&mut hasher);
        self.config
            .floorplan
            .edge_margin
            .mm()
            .to_bits()
            .hash(&mut hasher);
        let model = {
            let m = ManufacturingModel::new(
                &self.config.techdb,
                self.config.wafer,
                self.config.fab_source,
            );
            if self.config.include_wafer_wastage {
                m
            } else {
                m.without_wastage()
            }
        };
        let mut nodes: Vec<TechNode> = self.config.techdb.iter().map(|(node, _)| *node).collect();
        nodes.sort_unstable();
        for node in nodes {
            node.hash(&mut hasher);
            model
                .memo_bits(node)
                .expect("every iterated node exists in its own database")
                .hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The chiplet outlines of a system — the input of the floorplan stage.
    fn outlines(&self, system: &System) -> Result<Vec<ChipletOutline>, EcoChipError> {
        let db = &self.config.techdb;
        let mut outlines = Vec::with_capacity(system.chiplets.len());
        for chiplet in &system.chiplets {
            outlines.push(ChipletOutline::new(chiplet.name.clone(), chiplet.area(db)?));
        }
        Ok(outlines)
    }

    /// Floorplan the chiplets of a system (exposed for package-area studies).
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] when areas cannot be derived or the
    /// floorplanner rejects the input.
    pub fn floorplan(&self, system: &System) -> Result<Floorplan, EcoChipError> {
        self.floorplan_with(system, &SweepContext::disabled())
    }

    /// Floorplan a system, consulting a sweep memo for the outline set.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] when areas cannot be derived or the
    /// floorplanner rejects the input.
    pub fn floorplan_with(
        &self,
        system: &System,
        context: &SweepContext,
    ) -> Result<Floorplan, EcoChipError> {
        let outlines = self.outlines(system)?;
        context.floorplan(&self.config.floorplan, &outlines, || {
            Ok(SlicingFloorplanner::new(self.config.floorplan).floorplan(&outlines)?)
        })
    }

    /// Estimate the full carbon report of a system (Eqs. 1–3).
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] when the system description is inconsistent,
    /// a technology node is missing from the database, a die does not fit on
    /// the configured wafer, or a packaging configuration is invalid.
    pub fn estimate(&self, system: &System) -> Result<CarbonReport, EcoChipError> {
        self.estimate_with(system, &SweepContext::disabled())
    }

    /// Estimate the full carbon report of a system, consulting (and filling)
    /// a sweep memo for the floorplan and per-die manufacturing stages.
    ///
    /// Sweep axes that do not perturb a stage's inputs reuse its cached
    /// result; reports are bit-for-bit identical to [`EcoChip::estimate`].
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] when the system description is inconsistent,
    /// a technology node is missing from the database, a die does not fit on
    /// the configured wafer, or a packaging configuration is invalid.
    pub fn estimate_with(
        &self,
        system: &System,
        context: &SweepContext,
    ) -> Result<CarbonReport, EcoChipError> {
        let db = &self.config.techdb;
        // The outline set feeds both the floorplan stage and the per-chiplet
        // loop below: an outline's area *is* the chiplet's derived base area,
        // so building the outlines once avoids re-deriving every area.
        let outlines = self.outlines(system)?;
        let floorplan = context.floorplan(&self.config.floorplan, &outlines, || {
            Ok(SlicingFloorplanner::new(self.config.floorplan).floorplan(&outlines)?)
        })?;

        // --- Inter-die communication overheads -------------------------------
        let comm = if system.is_monolithic() {
            CommOverheads::none(1)
        } else {
            CommunicationEstimator::new(db, self.config.comm).overheads(
                &system.packaging,
                &system.chiplet_nodes(),
                &floorplan,
            )?
        };

        // --- Per-chiplet manufacturing and design ----------------------------
        let mfg_model = {
            let m = ManufacturingModel::new(db, self.config.wafer, self.config.fab_source);
            if self.config.include_wafer_wastage {
                m
            } else {
                m.without_wastage()
            }
        };
        let design_model = DesignEstimator::new(db, self.config.design);

        let mut chiplet_reports = Vec::with_capacity(system.chiplets.len());
        for (i, chiplet) in system.chiplets.iter().enumerate() {
            let base_area = outlines[i].area;
            let comm_area = comm
                .chiplet_extra_area
                .get(i)
                .copied()
                .unwrap_or(Area::ZERO);
            let manufacturing =
                context.manufacturing(&mfg_model, base_area + comm_area, chiplet.node)?;

            let transistors = chiplet.transistors(db)?;
            let gates = gates_from_transistors(transistors)
                * self.config.design_effort_factor(chiplet.design_type);
            let design = design_model
                .amortized_chiplet_cfp(gates, chiplet.node, &system.volumes)
                .map_err(EcoChipError::from)?;

            chiplet_reports.push(ChipletReport {
                name: chiplet.name.clone(),
                node: chiplet.node,
                base_area,
                comm_area,
                manufacturing,
                design,
            });
        }

        // --- HI overheads -----------------------------------------------------
        let hi = if system.is_monolithic() {
            HiBreakdown::none()
        } else {
            let package = PackageEstimator::new(db, self.config.packaging_source)
                .package_cfp(&system.packaging, &floorplan)?;
            let interposer_comm =
                self.interposer_comm_cfp(comm.interposer_logic_area, comm.interposer_node)?;
            HiBreakdown {
                package: package.total(),
                interposer_comm,
                package_area: package.package_area,
                whitespace_area: floorplan.whitespace_area(),
                assembly_yield: package.assembly_yield,
                comm_power: comm.total_power,
            }
        };

        // --- Communication-fabric design CFP ----------------------------------
        let comm_design = self.comm_design_cfp(system, &comm, &design_model)?;

        // --- Operational CFP ---------------------------------------------------
        let operational = OperationalEstimator::new(self.config.operational_source);
        let operational_per_year = operational.annual_cfp(&system.usage, hi.comm_power);

        Ok(CarbonReport {
            system_name: system.name.clone(),
            chiplets: chiplet_reports,
            hi,
            comm_design,
            operational_per_year,
            lifetime: system.lifetime,
        })
    }

    /// Embodied CFP of the same system as the ACT baseline would report it
    /// (fixed 150 g package, no design CFP, no wafer wastage) — the
    /// comparison of Fig. 7(c).
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError`] for missing nodes or invalid areas.
    pub fn act_embodied(&self, system: &System) -> Result<ActBreakdown, EcoChipError> {
        let db = &self.config.techdb;
        let mut dies = Vec::with_capacity(system.chiplets.len());
        for chiplet in &system.chiplets {
            dies.push((chiplet.area(db)?, chiplet.node));
        }
        ActEstimator::new(db, self.config.fab_source)
            .system_embodied(&dies)
            .map_err(|e| EcoChipError::InvalidSystem(format!("act baseline failed: {e}")))
    }

    /// Manufacturing CFP of communication logic implemented in the interposer
    /// (`C_mfg,comm = CFPA × A_router` for active interposers).
    fn interposer_comm_cfp(
        &self,
        area: Area,
        node: Option<TechNode>,
    ) -> Result<Carbon, EcoChipError> {
        let Some(node) = node else {
            return Ok(Carbon::ZERO);
        };
        if area.mm2() <= 0.0 {
            return Ok(Carbon::ZERO);
        }
        let db = &self.config.techdb;
        let params = db.node(node)?;
        let y = NegativeBinomialYield::for_node(params).yield_for(area);
        let mfg_model = ManufacturingModel::new(db, self.config.wafer, self.config.fab_source);
        let cfpa = mfg_model.cfpa(node, y)?;
        Ok(cfpa * area)
    }

    /// Design CFP of the communication fabric, amortised per system
    /// (`C_des,comm / NS` in Eq. 12).
    fn comm_design_cfp(
        &self,
        system: &System,
        comm: &CommOverheads,
        design_model: &DesignEstimator<'_>,
    ) -> Result<Carbon, EcoChipError> {
        let db = &self.config.techdb;
        let mut total = Carbon::ZERO;
        for (i, chiplet) in system.chiplets.iter().enumerate() {
            let area = comm
                .chiplet_extra_area
                .get(i)
                .copied()
                .unwrap_or(Area::ZERO);
            if area.mm2() <= 0.0 {
                continue;
            }
            let transistors =
                db.node(chiplet.node)?.logic_density.transistors_per_mm2() * area.mm2();
            let gates = gates_from_transistors(transistors);
            total += design_model
                .amortized_comm_cfp(gates, chiplet.node, &system.volumes)
                .map_err(EcoChipError::from)?;
        }
        if let (Some(node), true) = (comm.interposer_node, comm.interposer_logic_area.mm2() > 0.0) {
            let transistors = db.node(node)?.logic_density.transistors_per_mm2()
                * comm.interposer_logic_area.mm2();
            let gates = gates_from_transistors(transistors);
            total += design_model
                .amortized_comm_cfp(gates, node, &system.volumes)
                .map_err(EcoChipError::from)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{
        InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig,
    };
    use ecochip_power::UsageProfile;
    use ecochip_techdb::{DesignType, Energy, TimeSpan};

    fn gpu_like_monolith() -> System {
        System::builder("gpu-monolith")
            .chiplet(Chiplet::new(
                "soc",
                DesignType::Logic,
                TechNode::N7,
                ChipletSize::Transistors(28.0e9),
            ))
            .usage(UsageProfile::Measured {
                energy_per_year: Energy::from_kwh(228.0),
            })
            .lifetime(TimeSpan::from_years(2.0))
            .build()
            .unwrap()
    }

    fn gpu_like_3chiplet(packaging: PackagingArchitecture) -> System {
        System::builder("gpu-3chiplet")
            .chiplets([
                Chiplet::new(
                    "digital",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(22.0e9),
                ),
                Chiplet::new(
                    "memory",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(5.0e9),
                ),
                Chiplet::new(
                    "analog",
                    DesignType::Analog,
                    TechNode::N10,
                    ChipletSize::Transistors(1.0e9),
                ),
            ])
            .packaging(packaging)
            .usage(UsageProfile::Measured {
                energy_per_year: Energy::from_kwh(228.0),
            })
            .lifetime(TimeSpan::from_years(2.0))
            .build()
            .unwrap()
    }

    #[test]
    fn monolith_report_has_no_hi_overheads() {
        let est = EcoChip::default();
        let report = est.estimate(&gpu_like_monolith()).unwrap();
        assert_eq!(report.hi_overhead().kg(), 0.0);
        assert_eq!(report.hi.comm_power.watts(), 0.0);
        assert_eq!(report.chiplets.len(), 1);
        assert!(report.manufacturing().kg() > 10.0);
        assert!(report.design().kg() > 0.0);
        assert!(report.operational().kg() > 100.0);
        assert!(report.total().kg() > report.embodied().kg());
        assert!(report.embodied_fraction() > 0.0 && report.embodied_fraction() < 1.0);
    }

    #[test]
    fn chiplet_system_has_hi_overheads_but_lower_embodied() {
        // The headline result: disaggregation with node mix-and-match lowers
        // embodied CFP despite packaging overheads.
        let est = EcoChip::default();
        let mono = est.estimate(&gpu_like_monolith()).unwrap();
        let hi = est
            .estimate(&gpu_like_3chiplet(PackagingArchitecture::RdlFanout(
                RdlFanoutConfig::default(),
            )))
            .unwrap();
        assert!(hi.hi_overhead().kg() > 0.0);
        assert!(hi.hi.package_area.mm2() > hi.silicon_area().mm2() * 0.8);
        assert!(
            hi.embodied().kg() < mono.embodied().kg(),
            "3-chiplet embodied {} should be below monolithic {}",
            hi.embodied(),
            mono.embodied()
        );
        // The saving is in the 10-70% band the paper reports.
        let saving = 1.0 - hi.embodied().kg() / mono.embodied().kg();
        assert!(
            (0.05..=0.75).contains(&saving),
            "embodied saving {saving} outside the paper's band"
        );
    }

    #[test]
    fn act_baseline_underestimates_embodied() {
        // Fig. 7(c): ACT reports a lower embodied CFP because it ignores
        // design CFP, real packaging and wafer wastage.
        let est = EcoChip::default();
        let system =
            gpu_like_3chiplet(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()));
        let eco = est.estimate(&system).unwrap();
        let act = est.act_embodied(&system).unwrap();
        assert!(act.total().kg() < eco.embodied().kg());
        // ACT's packaging term is the fixed 150 g.
        assert!((act.packaging.grams() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn active_interposer_adds_interposer_comm_carbon() {
        let est = EcoChip::default();
        let active = est
            .estimate(&gpu_like_3chiplet(PackagingArchitecture::ActiveInterposer(
                InterposerConfig::default(),
            )))
            .unwrap();
        let passive = est
            .estimate(&gpu_like_3chiplet(
                PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            ))
            .unwrap();
        assert!(active.hi.interposer_comm.kg() > 0.0);
        assert_eq!(passive.hi.interposer_comm.kg(), 0.0);
        // Passive interposers put routers in the chiplets instead.
        let passive_comm_area: f64 = passive.chiplets.iter().map(|c| c.comm_area.mm2()).sum();
        let active_comm_area: f64 = active.chiplets.iter().map(|c| c.comm_area.mm2()).sum();
        assert!(passive_comm_area > active_comm_area);
        // Interposer-based packages cost more than RDL fanout.
        let rdl = est
            .estimate(&gpu_like_3chiplet(PackagingArchitecture::RdlFanout(
                RdlFanoutConfig::default(),
            )))
            .unwrap();
        assert!(active.hi_overhead().kg() > rdl.hi_overhead().kg());
    }

    #[test]
    fn emib_reports_bridges_and_small_comm_power() {
        let est = EcoChip::default();
        let emib = est
            .estimate(&gpu_like_3chiplet(PackagingArchitecture::SiliconBridge(
                SiliconBridgeConfig::default(),
            )))
            .unwrap();
        assert!(emib.hi.package.kg() > 0.0);
        assert!(emib.hi.comm_power.watts() > 0.0);
        assert!(emib.hi.whitespace_area.mm2() > 0.0);
    }

    #[test]
    fn comm_power_raises_operational_cfp() {
        let est = EcoChip::default();
        let mono = est.estimate(&gpu_like_monolith()).unwrap();
        let hi = est
            .estimate(&gpu_like_3chiplet(
                PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            ))
            .unwrap();
        assert!(hi.operational_per_year.kg() > mono.operational_per_year.kg());
    }

    #[test]
    fn wastage_toggle_changes_manufacturing() {
        let system = gpu_like_monolith();
        let with = EcoChip::new(EstimatorConfig::default());
        let without = EcoChip::new(
            EstimatorConfig::builder()
                .include_wafer_wastage(false)
                .build(),
        );
        let a = with.estimate(&system).unwrap();
        let b = without.estimate(&system).unwrap();
        assert!(a.manufacturing().kg() > b.manufacturing().kg());
    }

    #[test]
    fn report_lifetime_matches_system() {
        let est = EcoChip::default();
        let sys = gpu_like_monolith().with_lifetime(TimeSpan::from_years(5.0));
        let report = est.estimate(&sys).unwrap();
        assert!((report.lifetime.years() - 5.0).abs() < 1e-9);
        assert!((report.operational().kg() - 5.0 * report.operational_per_year.kg()).abs() < 1e-9);
    }

    #[test]
    fn floorplan_is_exposed() {
        let est = EcoChip::default();
        let plan = est
            .floorplan(&gpu_like_3chiplet(PackagingArchitecture::RdlFanout(
                RdlFanoutConfig::default(),
            )))
            .unwrap();
        assert_eq!(plan.placements().len(), 3);
        assert!(plan.package_area().mm2() > 0.0);
    }

    #[test]
    fn config_accessor() {
        let est = EcoChip::default();
        assert!(est.config().include_wafer_wastage);
    }

    #[test]
    fn memo_fingerprint_tracks_stage_relevant_config() {
        use ecochip_techdb::EnergySource;

        let base = EcoChip::default();
        assert_eq!(
            base.memo_fingerprint(),
            EcoChip::default().memo_fingerprint()
        );
        let wind_fab = EcoChip::new(
            EstimatorConfig::builder()
                .fab_source(EnergySource::Wind)
                .build(),
        );
        assert_ne!(base.memo_fingerprint(), wind_fab.memo_fingerprint());
        let no_wastage = EcoChip::new(
            EstimatorConfig::builder()
                .include_wafer_wastage(false)
                .build(),
        );
        assert_ne!(base.memo_fingerprint(), no_wastage.memo_fingerprint());
        // The operational source never feeds a memoized stage.
        let wind_use = EcoChip::new(
            EstimatorConfig::builder()
                .operational_source(EnergySource::Wind)
                .build(),
        );
        assert_eq!(base.memo_fingerprint(), wind_use.memo_fingerprint());
    }
}
