//! # ecochip-core
//!
//! The ECO-CHIP framework: architecture-level estimation of the total carbon
//! footprint (embodied + operational) of heterogeneously integrated
//! (chiplet-based) systems, reproducing the model of
//! *"ECO-CHIP: Estimation of Carbon Footprint of Chiplet-based Architectures
//! for Sustainable VLSI"* (HPCA 2024).
//!
//! The crate ties the substrates together:
//!
//! * [`System`] / [`Chiplet`] — the architectural description (transistor or
//!   area budgets per block, design types, technology nodes, packaging
//!   architecture, usage profile, volumes and lifetime).
//! * [`EcoChip`] — the estimator. [`EcoChip::estimate`] produces a
//!   [`CarbonReport`] with the full breakdown: per-chiplet manufacturing CFP
//!   (with wafer-wastage and yield effects), HI packaging and inter-die
//!   communication overheads, amortised design CFP, operational CFP and the
//!   total (Eqs. 1–3 of the paper).
//! * [`disaggregation`] — helpers to derive monolithic, N-chiplet and
//!   logic-split variants of an SoC, the transformations the paper's
//!   evaluation sweeps.
//! * [`sweep`] — the design-space-sweep subsystem: declarative
//!   [`SweepAxis`](sweep::SweepAxis) / [`SweepSpec`](sweep::SweepSpec)
//!   cartesian products with index-addressable lazy cases, a memoizing,
//!   persistable [`SweepContext`](sweep::SweepContext), deterministic
//!   [`Shard`](sweep::Shard) partitioning for cross-process distribution,
//!   and a parallel, streaming [`SweepEngine`](sweep::SweepEngine) with
//!   deterministic ordering.
//! * [`EcoChipService`] — the batch API: one warm sweep memo amortised over
//!   many `estimate` / `run` requests, with fingerprint-checked memo
//!   persistence across processes.
//! * [`dse`] — design-space-exploration sweeps (technology tuples, packaging
//!   architectures, reuse ratios, lifetimes, chiplet counts and fab energy
//!   sources, all built on [`sweep`]) and the carbon-delay / carbon-power /
//!   carbon-area product curves of Section VI.
//! * [`costing`] — integration with the dollar-cost model for
//!   carbon-vs-cost tradeoff studies (Fig. 15).
//!
//! # Quickstart
//!
//! ```
//! use ecochip_core::{Chiplet, ChipletSize, EcoChip, EstimatorConfig, System};
//! use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig};
//! use ecochip_power::UsageProfile;
//! use ecochip_techdb::{DesignType, Energy, TechNode, TimeSpan};
//!
//! // A small 2-chiplet system: 7 nm logic + 14 nm analog/IO.
//! let system = System::builder("demo")
//!     .chiplet(Chiplet::new(
//!         "compute",
//!         DesignType::Logic,
//!         TechNode::N7,
//!         ChipletSize::Transistors(8.0e9),
//!     ))
//!     .chiplet(Chiplet::new(
//!         "io",
//!         DesignType::Analog,
//!         TechNode::N14,
//!         ChipletSize::Transistors(0.5e9),
//!     ))
//!     .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
//!     .usage(UsageProfile::Measured { energy_per_year: Energy::from_kwh(50.0) })
//!     .lifetime(TimeSpan::from_years(3.0))
//!     .build()?;
//!
//! let estimator = EcoChip::new(EstimatorConfig::default());
//! let report = estimator.estimate(&system)?;
//! assert!(report.embodied().kg() > 0.0);
//! assert!(report.total().kg() > report.embodied().kg());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod costing;
pub mod disaggregation;
pub mod dse;
mod error;
mod estimator;
mod manufacturing;
pub mod opt;
mod report;
mod service;
pub mod sweep;
mod system;

pub use config::{EstimatorConfig, EstimatorConfigBuilder};
pub use error::EcoChipError;
pub use estimator::EcoChip;
pub use manufacturing::{ChipletManufacturing, ManufacturingModel};
pub use report::{CarbonReport, ChipletReport, HiBreakdown};
pub use service::{EcoChipService, MemoImport, ServiceStats};
pub use system::{Chiplet, ChipletSize, System, SystemBuilder};
