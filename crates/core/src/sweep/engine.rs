//! The parallel, memoizing sweep evaluator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ecochip_techdb::EnergySource;

use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::sweep::{SweepCase, SweepContext, SweepPoint, SweepSpec};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV_VAR: &str = "ECOCHIP_JOBS";

/// Evaluates the points of a [`SweepSpec`] across worker threads, sharing one
/// [`SweepContext`] memo so stage results common to several points are
/// computed once.
///
/// Results are returned in the spec's deterministic case order regardless of
/// the worker count, and every report is bit-for-bit identical to what the
/// serial path ([`SweepEngine::serial`]) produces.
///
/// ```
/// use ecochip_core::sweep::{SweepAxis, SweepEngine, SweepSpec};
/// use ecochip_core::{Chiplet, ChipletSize, EcoChip, System};
/// use ecochip_techdb::{DesignType, TechNode};
///
/// let base = System::builder("demo")
///     .chiplet(Chiplet::new(
///         "soc",
///         DesignType::Logic,
///         TechNode::N7,
///         ChipletSize::Transistors(5.0e9),
///     ))
///     .build()?;
/// let spec = SweepSpec::new(base).axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 4.0]));
/// let points = SweepEngine::new().run(&EcoChip::default(), &spec)?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].report.total().kg() > points[0].report.total().kg());
/// # Ok::<(), ecochip_core::EcoChipError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    jobs: usize,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using the default worker count: the `ECOCHIP_JOBS`
    /// environment variable when set, otherwise the machine's available
    /// parallelism.
    pub fn new() -> Self {
        Self::with_jobs(default_jobs())
    }

    /// A single-worker engine — the reference serial path.
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate every point of `spec`, in its deterministic case order.
    ///
    /// # Errors
    ///
    /// Returns the spec's case-generation error, or the estimator error of
    /// the lowest-index failing point.
    pub fn run(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_cases(estimator, spec.cases()?)
    }

    /// Evaluate explicit cases (e.g. pre-processed for custom labels) with a
    /// fresh memo context.
    ///
    /// # Errors
    ///
    /// Returns the estimator error of the lowest-index failing case.
    pub fn run_cases(
        &self,
        estimator: &EcoChip,
        cases: Vec<SweepCase>,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_cases_with(estimator, cases, &SweepContext::new())
    }

    /// Evaluate explicit cases against a caller-provided [`SweepContext`],
    /// so several sweeps can share one memo (or inspect its
    /// [`stats`](SweepContext::stats) afterwards).
    ///
    /// # Errors
    ///
    /// Returns the estimator error of the lowest-index failing case.
    pub fn run_cases_with(
        &self,
        estimator: &EcoChip,
        cases: Vec<SweepCase>,
        context: &SweepContext,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        if cases.is_empty() {
            return Ok(Vec::new());
        }
        // One estimator per distinct fab-source override, built up front so
        // worker threads never clone the (techdb-carrying) configuration.
        let variants = EstimatorVariants::resolve(estimator, &cases);

        let evaluate = |index: usize, case: &SweepCase| -> Result<SweepPoint, EcoChipError> {
            let est = variants.for_case(estimator, index);
            let report = est.estimate_with(&case.system, context)?;
            Ok(SweepPoint {
                label: case.label(),
                system: case.system.clone(),
                report,
            })
        };

        let jobs = self.jobs.min(cases.len());
        if jobs == 1 {
            return cases
                .iter()
                .enumerate()
                .map(|(i, case)| evaluate(i, case))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SweepPoint, EcoChipError>>>> =
            (0..cases.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(case) = cases.get(index) else {
                        break;
                    };
                    let result = evaluate(index, case);
                    *slots[index].lock().expect("sweep result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep result slot")
                    .expect("every claimed index is evaluated")
            })
            .collect()
    }
}

/// Estimator clones for the distinct fab-source overrides of a case list.
struct EstimatorVariants {
    /// `(intensity bits, estimator)` per distinct override.
    variants: Vec<(u64, EcoChip)>,
    /// Per-case index into `variants` (`None` = the base estimator).
    picks: Vec<Option<usize>>,
}

impl EstimatorVariants {
    fn resolve(base: &EcoChip, cases: &[SweepCase]) -> Self {
        let mut variants: Vec<(u64, EcoChip)> = Vec::new();
        let picks = cases
            .iter()
            .map(|case| {
                let source = case.fab_source?;
                let bits = source_bits(source);
                let position = variants.iter().position(|(b, _)| *b == bits);
                Some(position.unwrap_or_else(|| {
                    let mut config = base.config().clone();
                    config.fab_source = source;
                    variants.push((bits, EcoChip::new(config)));
                    variants.len() - 1
                }))
            })
            .collect();
        Self { variants, picks }
    }

    fn for_case<'a>(&'a self, base: &'a EcoChip, index: usize) -> &'a EcoChip {
        match self.picks[index] {
            Some(variant) => &self.variants[variant].1,
            None => base,
        }
    }
}

fn source_bits(source: EnergySource) -> u64 {
    source.carbon_intensity().kg_per_kwh().to_bits()
}

fn default_jobs() -> usize {
    if let Ok(value) = std::env::var(JOBS_ENV_VAR) {
        if let Ok(jobs) = value.trim().parse::<usize>() {
            return jobs.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepAxis;
    use crate::system::{Chiplet, ChipletSize, System};
    use ecochip_packaging::{
        InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig,
    };
    use ecochip_techdb::{DesignType, TechNode};

    fn base() -> System {
        System::builder("engine-test")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(base())
            .axis(SweepAxis::Packaging(vec![
                PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
                PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
                PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0, 4.0]))
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let estimator = EcoChip::default();
        let serial = SweepEngine::serial().run(&estimator, &spec()).unwrap();
        let parallel = SweepEngine::with_jobs(4).run(&estimator, &spec()).unwrap();
        assert_eq!(serial.len(), 12);
        assert_eq!(serial, parallel);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.report.total().kg().to_bits(),
                p.report.total().kg().to_bits()
            );
        }
    }

    #[test]
    fn memoization_skips_repeated_floorplans_and_manufacturing() {
        let estimator = EcoChip::default();
        let context = SweepContext::new();
        let cases = spec().cases().unwrap();
        let total = cases.len();
        SweepEngine::serial()
            .run_cases_with(&estimator, cases, &context)
            .unwrap();
        let stats = context.stats();
        // Lifetime points share the packaging point's outlines; only the
        // packaging variants differ in comm area.
        assert!(stats.floorplan_misses <= 3, "{stats:?}");
        assert!(stats.floorplan_hits >= total - 3, "{stats:?}");
        assert!(stats.manufacturing_hits > 0, "{stats:?}");
    }

    #[test]
    fn fab_energy_axis_builds_one_estimator_per_source() {
        let estimator = EcoChip::default();
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::FabEnergySources(vec![
                ecochip_techdb::EnergySource::Coal,
                ecochip_techdb::EnergySource::Wind,
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0]));
        let points = SweepEngine::with_jobs(2).run(&estimator, &spec).unwrap();
        assert_eq!(points.len(), 4);
        // Wind-powered fabs lower manufacturing CFP; lifetime does not.
        assert!(
            points[2].report.manufacturing().kg() < points[0].report.manufacturing().kg(),
            "wind should beat coal"
        );
        assert_eq!(
            points[0].report.manufacturing().kg().to_bits(),
            points[1].report.manufacturing().kg().to_bits()
        );
    }

    #[test]
    fn errors_surface_from_the_lowest_index_point() {
        let estimator = EcoChip::default();
        // Retargeting chiplet 5 of a 2-chiplet system fails at case
        // generation already.
        let spec = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 5,
            nodes: vec![TechNode::N10],
        });
        assert!(SweepEngine::new().run(&estimator, &spec).is_err());
    }

    #[test]
    fn empty_case_list_yields_no_points() {
        let estimator = EcoChip::default();
        let points = SweepEngine::new()
            .run_cases(&estimator, Vec::new())
            .unwrap();
        assert!(points.is_empty());
        assert!(SweepEngine::with_jobs(0).jobs() == 1);
        assert!(SweepEngine::default().jobs() >= 1);
    }
}
