//! The parallel, memoizing, streaming sweep evaluator.
//!
//! The engine is built around a bounded work queue: workers claim case
//! *indices* (never a materialized case list), decode each case lazily from
//! its [`CaseSource`], evaluate it against the shared [`SweepContext`], and
//! hand the resulting [`SweepPoint`]s to a caller-supplied [`SweepSink`] in
//! deterministic row-major order. A reorder window of `O(workers)` points
//! provides backpressure, so streaming a million-point space holds only a
//! handful of points in memory at any time. [`SweepEngine::run`] is the
//! collect-to-`Vec` special case of the same machinery.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ecochip_techdb::EnergySource;
use ecochip_trace::{Stage, StageTimings};

use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::sweep::{Shard, SweepCase, SweepContext, SweepPoint, SweepSpec};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV_VAR: &str = "ECOCHIP_JOBS";

/// Environment variable overriding the default claim-chunk size.
pub const CHUNK_ENV_VAR: &str = "ECOCHIP_CHUNK";

/// Default number of contiguous case indices a worker claims per queue
/// round-trip. Large enough to amortize the Mutex+Condvar traffic to
/// O(points/K), small enough that the reorder window (O(jobs × chunk)
/// points) stays tiny and load stays balanced across workers.
pub const DEFAULT_CHUNK: usize = 32;

/// Receives evaluated sweep points, in the spec's deterministic case order.
///
/// Any `FnMut(SweepPoint) -> Result<(), EcoChipError>` closure is a sink, so
/// collecting, folding or incremental writing all work without a named type:
///
/// ```
/// use ecochip_core::sweep::{SweepAxis, SweepEngine, SweepSpec};
/// use ecochip_core::{Chiplet, ChipletSize, EcoChip, System};
/// use ecochip_techdb::{DesignType, TechNode};
///
/// let base = System::builder("demo")
///     .chiplet(Chiplet::new(
///         "soc",
///         DesignType::Logic,
///         TechNode::N7,
///         ChipletSize::Transistors(5.0e9),
///     ))
///     .build()?;
/// let spec = SweepSpec::new(base).axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 4.0]));
/// // Stream: keep a running maximum instead of materializing all points.
/// use ecochip_core::sweep::SweepPoint;
/// let mut worst = f64::MIN;
/// let mut sink = |point: SweepPoint| {
///     worst = worst.max(point.report.total().kg());
///     Ok(())
/// };
/// let emitted = SweepEngine::new().run_streaming(&EcoChip::default(), &spec, &mut sink)?;
/// assert_eq!(emitted, 3);
/// assert!(worst > 0.0);
/// # Ok::<(), ecochip_core::EcoChipError>(())
/// ```
pub trait SweepSink {
    /// Accept the next point. Returning an error aborts the sweep; the error
    /// is propagated to the caller of the streaming entry point.
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError>;

    /// Accept a contiguous batch of points (one claim chunk), in case
    /// order. The default forwards point-by-point to
    /// [`SweepSink::emit`], so closure sinks work unchanged; sinks with a
    /// cheaper bulk path (one write per batch, one lock per batch)
    /// override it. The batch boundary is an engine implementation detail
    /// — concatenating all batches always reproduces the per-point stream
    /// exactly.
    fn accept_batch(&mut self, points: Vec<SweepPoint>) -> Result<(), EcoChipError> {
        for point in points {
            self.emit(point)?;
        }
        Ok(())
    }
}

impl<F: FnMut(SweepPoint) -> Result<(), EcoChipError>> SweepSink for F {
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
        self(point)
    }
}

/// An index-addressable source of sweep cases: the engine's workers pull
/// case indices and decode each case on demand, so the full cartesian
/// product is never materialized.
pub(crate) trait CaseSource: Sync {
    /// Checked number of cases.
    fn total(&self) -> Result<usize, EcoChipError>;
    /// Produce case `index` (must be below [`CaseSource::total`]).
    fn case(&self, index: usize) -> Result<SweepCase, EcoChipError>;
}

impl CaseSource for SweepSpec {
    fn total(&self) -> Result<usize, EcoChipError> {
        self.try_len()
    }

    fn case(&self, index: usize) -> Result<SweepCase, EcoChipError> {
        self.case_at(index)
    }
}

impl CaseSource for [SweepCase] {
    fn total(&self) -> Result<usize, EcoChipError> {
        Ok(self.len())
    }

    fn case(&self, index: usize) -> Result<SweepCase, EcoChipError> {
        Ok(self[index].clone())
    }
}

/// A spec whose decoded cases are rewritten on the fly (used by the node
/// assignment optimizer to relabel points without materializing them).
pub(crate) struct MappedSpec<'a, F> {
    pub(crate) spec: &'a SweepSpec,
    pub(crate) map: F,
}

impl<F: Fn(SweepCase) -> SweepCase + Sync> CaseSource for MappedSpec<'_, F> {
    fn total(&self) -> Result<usize, EcoChipError> {
        self.spec.try_len()
    }

    fn case(&self, index: usize) -> Result<SweepCase, EcoChipError> {
        self.spec.case_at(index).map(&self.map)
    }
}

/// Evaluates the points of a [`SweepSpec`] across worker threads, sharing one
/// [`SweepContext`] memo so stage results common to several points are
/// computed once.
///
/// Results are produced in the spec's deterministic case order regardless of
/// the worker count, and every report is bit-for-bit identical to what the
/// serial path ([`SweepEngine::serial`]) produces. The streaming entry
/// points ([`SweepEngine::run_streaming`] and friends) hold only an
/// `O(workers)` reorder window in memory; [`SweepEngine::run`] is the same
/// pipeline with a collect-to-`Vec` sink.
///
/// ```
/// use ecochip_core::sweep::{SweepAxis, SweepEngine, SweepSpec};
/// use ecochip_core::{Chiplet, ChipletSize, EcoChip, System};
/// use ecochip_techdb::{DesignType, TechNode};
///
/// let base = System::builder("demo")
///     .chiplet(Chiplet::new(
///         "soc",
///         DesignType::Logic,
///         TechNode::N7,
///         ChipletSize::Transistors(5.0e9),
///     ))
///     .build()?;
/// let spec = SweepSpec::new(base).axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 4.0]));
/// let points = SweepEngine::new().run(&EcoChip::default(), &spec)?;
/// assert_eq!(points.len(), 3);
/// assert!(points[2].report.total().kg() > points[0].report.total().kg());
/// # Ok::<(), ecochip_core::EcoChipError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    jobs: usize,
    chunk: usize,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using the default worker count: the `ECOCHIP_JOBS`
    /// environment variable when set, otherwise the machine's available
    /// parallelism.
    pub fn new() -> Self {
        Self::with_jobs(default_jobs())
    }

    /// A single-worker engine — the reference serial path.
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// An engine with an explicit worker count (clamped to at least 1) and
    /// the default claim-chunk size (`ECOCHIP_CHUNK` when set, otherwise
    /// [`DEFAULT_CHUNK`]).
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            chunk: default_chunk(),
        }
    }

    /// An engine from an optional worker count: pinned when `Some` (a
    /// `--jobs` flag, a config field), the [`SweepEngine::new`] default
    /// otherwise. The one place the "flag set or not" decision lives, so
    /// every front end resolves it identically.
    pub fn with_optional_jobs(jobs: Option<usize>) -> Self {
        match jobs {
            Some(jobs) => Self::with_jobs(jobs),
            None => Self::new(),
        }
    }

    /// Pin the number of contiguous case indices a worker claims per queue
    /// round-trip (clamped to at least 1). Chunking only changes lock and
    /// wakeup traffic — emission order and every emitted byte stay
    /// identical for any chunk size.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Chunk size from an optional override: pinned when `Some` (a
    /// `--chunk` flag, a config field), the `ECOCHIP_CHUNK` /
    /// [`DEFAULT_CHUNK`] default otherwise — the same "flag set or not"
    /// contract as [`SweepEngine::with_optional_jobs`].
    pub fn with_optional_chunk(self, chunk: Option<usize>) -> Self {
        match chunk {
            Some(chunk) => self.with_chunk(chunk),
            None => self,
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured claim-chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Evaluate every point of `spec`, in its deterministic case order.
    ///
    /// # Errors
    ///
    /// Returns the spec's case-generation error, or the estimator error of
    /// the lowest-index failing point.
    pub fn run(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_sharded(estimator, spec, Shard::FULL)
    }

    /// Evaluate the slice of `spec` a [`Shard`] owns, in case order.
    /// Concatenating the results of shards `0/N..N-1/N` reproduces
    /// [`SweepEngine::run`] exactly.
    ///
    /// # Errors
    ///
    /// Returns the spec's case-generation error, or the estimator error of
    /// the lowest-index failing point of the shard.
    pub fn run_sharded(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        shard: Shard,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        let context = SweepContext::new();
        let mut points = Vec::new();
        self.stream(estimator, spec, shard, &context, None, &mut |point| {
            points.push(point);
            Ok(())
        })?;
        Ok(points)
    }

    /// Evaluate every point of `spec`, emitting each [`SweepPoint`] to
    /// `sink` in deterministic case order as soon as it (and all its
    /// predecessors) are ready. Returns the number of points emitted.
    ///
    /// At most `O(workers)` points are in flight at any time — the reorder
    /// window applies backpressure to the workers — so the full product is
    /// never held in memory.
    ///
    /// # Errors
    ///
    /// Returns the spec's case-generation error, the estimator error of the
    /// lowest-index failing point, or the first error returned by `sink`.
    pub fn run_streaming<S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.run_streaming_with(estimator, spec, Shard::FULL, &SweepContext::new(), sink)
    }

    /// Full-control streaming: evaluate the slice of `spec` that `shard`
    /// owns against a caller-provided [`SweepContext`] (e.g. one restored
    /// from a memo file), emitting points to `sink` in case order. Returns
    /// the number of points emitted.
    ///
    /// # Errors
    ///
    /// Returns the spec's case-generation error, the estimator error of the
    /// lowest-index failing point, or the first error returned by `sink`.
    pub fn run_streaming_with<S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        shard: Shard,
        context: &SweepContext,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.stream(estimator, spec, shard, context, None, sink)
    }

    /// [`SweepEngine::run_streaming_with`] with an optional per-stage
    /// duration collector: when `timings` is `Some`, each point's
    /// estimator call is measured into [`StageTimings`] (serving's
    /// per-request stage histograms and trace spans). The `None` path
    /// costs one branch per point.
    ///
    /// # Errors
    ///
    /// As [`SweepEngine::run_streaming_with`].
    pub fn run_streaming_timed<S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        shard: Shard,
        context: &SweepContext,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.stream(estimator, spec, shard, context, timings, sink)
    }

    /// Stream an explicit, contiguous index range `[range.start,
    /// range.end)` of `spec`'s case space into `sink`, in case order.
    /// Returns the number of points emitted.
    ///
    /// This is the resume primitive behind orchestrator failover: a shard
    /// is a contiguous slice of the index space, so when a worker dies
    /// after emitting `k` points of shard range `[s, e)`, re-dispatching
    /// `[s + k, e)` to another worker reproduces exactly the missing
    /// suffix — the merged stream stays bit-for-bit identical to the
    /// unsharded run.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::InvalidSystem`] when the range is inverted
    /// or extends past the spec's case count, plus the usual streaming
    /// errors ([`SweepEngine::run_streaming_with`]).
    pub fn run_range_with<S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        range: std::ops::Range<usize>,
        context: &SweepContext,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let total = spec.try_len()?;
        validate_case_range(total, &range)?;
        self.stream_range(estimator, spec, range, context, None, sink)
    }

    /// [`SweepEngine::run_range_with`] with an optional per-stage
    /// duration collector (see [`SweepEngine::run_streaming_timed`]).
    ///
    /// # Errors
    ///
    /// As [`SweepEngine::run_range_with`].
    pub fn run_range_timed<S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        spec: &SweepSpec,
        range: std::ops::Range<usize>,
        context: &SweepContext,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let total = spec.try_len()?;
        validate_case_range(total, &range)?;
        self.stream_range(estimator, spec, range, context, timings, sink)
    }

    /// Evaluate explicit cases (e.g. pre-processed for custom labels) with a
    /// fresh memo context.
    ///
    /// # Errors
    ///
    /// Returns the estimator error of the lowest-index failing case.
    pub fn run_cases(
        &self,
        estimator: &EcoChip,
        cases: Vec<SweepCase>,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_cases_with(estimator, cases, &SweepContext::new())
    }

    /// Evaluate explicit cases against a caller-provided [`SweepContext`],
    /// so several sweeps can share one memo (or inspect its
    /// [`stats`](SweepContext::stats) afterwards).
    ///
    /// # Errors
    ///
    /// Returns the estimator error of the lowest-index failing case.
    pub fn run_cases_with(
        &self,
        estimator: &EcoChip,
        cases: Vec<SweepCase>,
        context: &SweepContext,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        let mut points = Vec::with_capacity(cases.len());
        self.stream(
            estimator,
            cases.as_slice(),
            Shard::FULL,
            context,
            None,
            &mut |point| {
                points.push(point);
                Ok(())
            },
        )?;
        Ok(points)
    }

    /// The shared work-queue pipeline behind every entry point: workers pull
    /// case indices, decode + evaluate, and park results in a bounded
    /// reorder window the calling thread drains in order into `sink`.
    pub(crate) fn stream<C: CaseSource + ?Sized, S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        source: &C,
        shard: Shard,
        context: &SweepContext,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let total = source.total()?;
        self.stream_range(
            estimator,
            source,
            shard.range(total),
            context,
            timings,
            sink,
        )
    }

    /// The work-queue pipeline over an explicit (already validated) index
    /// range of the case space.
    fn stream_range<C: CaseSource + ?Sized, S: SweepSink + ?Sized>(
        &self,
        estimator: &EcoChip,
        source: &C,
        range: std::ops::Range<usize>,
        context: &SweepContext,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let count = range.len();
        if count == 0 {
            return Ok(0);
        }

        let variants = VariantCache::new(estimator);
        let evaluate = |index: usize| -> Result<SweepPoint, EcoChipError> {
            let case = source.case(index)?;
            let estimator = variants.estimator_for(case.fab_source);
            // Near-zero-cost disabled path: untimed requests pay one
            // branch per point, never a clock read.
            let report = match timings {
                None => estimator.estimate_with(&case.system, context)?,
                Some(timings) => {
                    let started = Instant::now();
                    let report = estimator.estimate_with(&case.system, context);
                    timings.record(Stage::Estimate, started.elapsed());
                    report?
                }
            };
            Ok(SweepPoint {
                label: case.label(),
                system: case.system,
                report,
            })
        };

        let jobs = self.jobs.min(count);
        let chunk = self.chunk.max(1);
        if jobs == 1 {
            // Reference serial path: evaluate and emit in chunk-sized
            // batches so batch-optimized sinks (one write per batch) get
            // the same bulk entry point the parallel path uses.
            let mut emitted = 0usize;
            let mut cursor = range.start;
            while cursor < range.end {
                let stop = cursor.saturating_add(chunk).min(range.end);
                let mut batch = Vec::with_capacity(stop - cursor);
                for index in cursor..stop {
                    batch.push(evaluate(index)?);
                }
                emitted += batch.len();
                sink.accept_batch(batch)?;
                cursor = stop;
            }
            return Ok(emitted);
        }

        // Workers may run at most `window` points ahead of the emit cursor
        // (two chunks in flight per worker), which bounds the reorder
        // buffer to O(jobs × chunk) points.
        let window = jobs * chunk * 2;
        let queue = ReorderQueue {
            state: Mutex::new(ReorderState {
                next_claim: range.start,
                next_emit: range.start,
                buffer: HashMap::with_capacity(jobs * 2),
                aborted: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        };
        let end = range.end;

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let (start, stop) = {
                        let mut state = queue.state.lock().expect("sweep queue");
                        loop {
                            if state.aborted || state.next_claim >= end {
                                return;
                            }
                            if state.next_claim < state.next_emit + window {
                                break;
                            }
                            state = queue.space.wait(state).expect("sweep queue");
                        }
                        let start = state.next_claim;
                        // Chunks auto-clamp at the range end, so shard
                        // boundaries and short tails never over-claim.
                        let stop = start.saturating_add(chunk).min(end);
                        state.next_claim = stop;
                        (start, stop)
                    };
                    // Evaluate the whole chunk without touching the queue:
                    // one claim + one insert per K points instead of per
                    // point. On an error, stop at the failing index — the
                    // emitter drains chunks in order, so the lowest-index
                    // error still surfaces first.
                    let mut results = Vec::with_capacity(stop - start);
                    let mut failed = false;
                    for index in start..stop {
                        let result = evaluate(index);
                        failed = result.is_err();
                        results.push(result);
                        if failed {
                            break;
                        }
                    }
                    let mut state = queue.state.lock().expect("sweep queue");
                    if failed {
                        // Stop claiming new chunks; everything below `start`
                        // is already claimed, so the emitter still surfaces
                        // the lowest-index error.
                        state.aborted = true;
                        queue.space.notify_all();
                    }
                    let notify = start == state.next_emit;
                    state.buffer.insert(start, results);
                    drop(state);
                    if notify {
                        queue.ready.notify_one();
                    }
                });
            }

            // The calling thread is the emitter: drain chunks in start-index
            // order so the sink observes the deterministic case order.
            let outcome = (|| {
                let mut emitted = 0usize;
                let mut cursor = range.start;
                while cursor < end {
                    let results = {
                        let mut state = queue.state.lock().expect("sweep queue");
                        loop {
                            if let Some(results) = state.buffer.remove(&cursor) {
                                break results;
                            }
                            state = queue.ready.wait(state).expect("sweep queue");
                        }
                    };
                    let mut batch = Vec::with_capacity(results.len());
                    let mut failure = None;
                    for result in results {
                        match result {
                            Ok(point) => batch.push(point),
                            Err(error) => {
                                failure = Some(error);
                                break;
                            }
                        }
                    }
                    if !batch.is_empty() {
                        emitted += batch.len();
                        sink.accept_batch(batch)?;
                    }
                    if let Some(error) = failure {
                        return Err(error);
                    }
                    cursor = cursor.saturating_add(chunk).min(end);
                    let mut state = queue.state.lock().expect("sweep queue");
                    state.next_emit = cursor;
                    drop(state);
                    // Advancing the window admits exactly one new chunk
                    // claim, so wake one parked worker; stragglers parked
                    // after the last emit are released by the notify_all
                    // below.
                    queue.space.notify_one();
                }
                Ok(emitted)
            })();

            // On early exit (evaluation or sink error) wake every parked
            // worker so the scope can join them.
            let mut state = queue.state.lock().expect("sweep queue");
            state.aborted = true;
            drop(state);
            queue.space.notify_all();
            outcome
        })
    }
}

/// Bookkeeping shared between the workers and the emitting thread.
struct ReorderState {
    /// Next index to hand to a worker (chunk claims advance it by up to
    /// the chunk size at a time).
    next_claim: usize,
    /// Next index the emitter will pass to the sink.
    next_emit: usize,
    /// Out-of-order chunk results keyed by chunk start index, parked until
    /// their turn (bounded by the window).
    buffer: HashMap<usize, Vec<Result<SweepPoint, EcoChipError>>>,
    /// Set on evaluation/sink errors so workers stop claiming chunks.
    aborted: bool,
}

struct ReorderQueue {
    state: Mutex<ReorderState>,
    /// Signals the emitter that the next in-order chunk arrived.
    ready: Condvar,
    /// Signals workers that the reorder window advanced.
    space: Condvar,
}

/// Lazily-built estimator clones for the distinct fab-source overrides seen
/// while streaming, so workers never clone the (techdb-carrying)
/// configuration for cases without an override.
struct VariantCache<'a> {
    base: &'a EcoChip,
    /// `(intensity bits, estimator)` per distinct override.
    variants: Mutex<Vec<(u64, Arc<EcoChip>)>>,
}

enum CaseEstimator<'a> {
    Base(&'a EcoChip),
    Variant(Arc<EcoChip>),
}

impl std::ops::Deref for CaseEstimator<'_> {
    type Target = EcoChip;

    fn deref(&self) -> &EcoChip {
        match self {
            CaseEstimator::Base(estimator) => estimator,
            CaseEstimator::Variant(estimator) => estimator,
        }
    }
}

impl<'a> VariantCache<'a> {
    fn new(base: &'a EcoChip) -> Self {
        Self {
            base,
            variants: Mutex::new(Vec::new()),
        }
    }

    fn estimator_for(&self, source: Option<EnergySource>) -> CaseEstimator<'a> {
        let Some(source) = source else {
            return CaseEstimator::Base(self.base);
        };
        let bits = source_bits(source);
        let mut variants = self.variants.lock().expect("variant cache");
        if let Some((_, estimator)) = variants.iter().find(|(b, _)| *b == bits) {
            return CaseEstimator::Variant(Arc::clone(estimator));
        }
        let mut config = self.base.config().clone();
        config.fab_source = source;
        let estimator = Arc::new(EcoChip::new(config));
        variants.push((bits, Arc::clone(&estimator)));
        CaseEstimator::Variant(estimator)
    }
}

fn source_bits(source: EnergySource) -> u64 {
    source.carbon_intensity().kg_per_kwh().to_bits()
}

/// Validate that `range` is a slice of a `total`-case sweep — the single
/// definition of the bounds rule, shared by [`SweepEngine::run_range_with`]
/// and front ends that want to reject a bad resume range before they
/// commit to a response (e.g. the HTTP server's pre-stream 400).
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] when the range is inverted or
/// extends past `total`.
pub fn validate_case_range(
    total: usize,
    range: &std::ops::Range<usize>,
) -> Result<(), EcoChipError> {
    if range.start > range.end || range.end > total {
        return Err(EcoChipError::InvalidSystem(format!(
            "case range {}..{} is not a slice of the sweep's {total} cases",
            range.start, range.end
        )));
    }
    Ok(())
}

fn default_jobs() -> usize {
    if let Ok(value) = std::env::var(JOBS_ENV_VAR) {
        if let Ok(jobs) = value.trim().parse::<usize>() {
            return jobs.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn default_chunk() -> usize {
    if let Ok(value) = std::env::var(CHUNK_ENV_VAR) {
        if let Ok(chunk) = value.trim().parse::<usize>() {
            return chunk.max(1);
        }
    }
    DEFAULT_CHUNK
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepAxis;
    use crate::system::{Chiplet, ChipletSize, System};
    use ecochip_packaging::{
        InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig,
    };
    use ecochip_techdb::{DesignType, TechNode};

    fn base() -> System {
        System::builder("engine-test")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(base())
            .axis(SweepAxis::Packaging(vec![
                PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
                PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
                PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0, 4.0]))
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let estimator = EcoChip::default();
        let serial = SweepEngine::serial().run(&estimator, &spec()).unwrap();
        let parallel = SweepEngine::with_jobs(4).run(&estimator, &spec()).unwrap();
        assert_eq!(serial.len(), 12);
        assert_eq!(serial, parallel);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.report.total().kg().to_bits(),
                p.report.total().kg().to_bits()
            );
        }
    }

    #[test]
    fn streaming_emits_in_deterministic_order() {
        let estimator = EcoChip::default();
        let spec = spec();
        let collected = SweepEngine::new().run(&estimator, &spec).unwrap();
        for jobs in [1, 2, 5, 16] {
            let mut streamed = Vec::new();
            let emitted = SweepEngine::with_jobs(jobs)
                .run_streaming(&estimator, &spec, &mut |point| {
                    streamed.push(point);
                    Ok(())
                })
                .unwrap();
            assert_eq!(emitted, collected.len(), "jobs={jobs}");
            assert_eq!(streamed, collected, "jobs={jobs}");
        }
    }

    #[test]
    fn sharded_runs_concatenate_to_the_full_run() {
        let estimator = EcoChip::default();
        let spec = spec();
        let full = SweepEngine::with_jobs(3).run(&estimator, &spec).unwrap();
        for of in [1usize, 2, 3, 5, 12, 17] {
            let mut merged = Vec::new();
            for index in 0..of {
                let shard = Shard::new(index, of).unwrap();
                merged.extend(
                    SweepEngine::with_jobs(2)
                        .run_sharded(&estimator, &spec, shard)
                        .unwrap(),
                );
            }
            assert_eq!(merged, full, "of={of}");
        }
    }

    #[test]
    fn explicit_ranges_reproduce_slices_of_the_full_run() {
        let estimator = EcoChip::default();
        let spec = spec();
        let full = SweepEngine::with_jobs(3).run(&estimator, &spec).unwrap();
        let total = full.len();
        // Any contiguous range reproduces exactly that slice, so a shard
        // interrupted after k points resumes bit-for-bit from index k.
        for (start, end) in [(0, total), (3, 9), (5, 5), (total - 1, total)] {
            let mut points = Vec::new();
            let emitted = SweepEngine::with_jobs(2)
                .run_range_with(
                    &estimator,
                    &spec,
                    start..end,
                    &SweepContext::new(),
                    &mut |point| {
                        points.push(point);
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(emitted, end - start);
            assert_eq!(points, full[start..end], "range {start}..{end}");
        }
        // Out-of-bounds and inverted ranges are rejected up front.
        #[allow(clippy::reversed_empty_ranges)]
        for bad in [0..total + 1, 7..3] {
            let result = SweepEngine::new().run_range_with(
                &estimator,
                &spec,
                bad.clone(),
                &SweepContext::new(),
                &mut |_point| Ok(()),
            );
            assert!(
                matches!(result, Err(EcoChipError::InvalidSystem(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn sink_errors_abort_the_sweep() {
        let estimator = EcoChip::default();
        let spec = spec();
        let mut emitted = 0usize;
        let result = SweepEngine::with_jobs(4).run_streaming(&estimator, &spec, &mut |_point| {
            emitted += 1;
            if emitted == 3 {
                Err(EcoChipError::InvalidSystem("sink full".into()))
            } else {
                Ok(())
            }
        });
        assert!(matches!(result, Err(EcoChipError::InvalidSystem(_))));
        assert_eq!(emitted, 3);
    }

    #[test]
    fn memoization_skips_repeated_floorplans_and_manufacturing() {
        let estimator = EcoChip::default();
        let context = SweepContext::new();
        let cases = spec().cases().unwrap();
        let total = cases.len();
        SweepEngine::serial()
            .run_cases_with(&estimator, cases, &context)
            .unwrap();
        let stats = context.stats();
        // Lifetime points share the packaging point's outlines; only the
        // packaging variants differ in comm area.
        assert!(stats.floorplan_misses <= 3, "{stats:?}");
        assert!(stats.floorplan_hits >= total - 3, "{stats:?}");
        assert!(stats.manufacturing_hits > 0, "{stats:?}");
    }

    #[test]
    fn fab_energy_axis_builds_one_estimator_per_source() {
        let estimator = EcoChip::default();
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::FabEnergySources(vec![
                ecochip_techdb::EnergySource::Coal,
                ecochip_techdb::EnergySource::Wind,
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0]));
        let points = SweepEngine::with_jobs(2).run(&estimator, &spec).unwrap();
        assert_eq!(points.len(), 4);
        // Wind-powered fabs lower manufacturing CFP; lifetime does not.
        assert!(
            points[2].report.manufacturing().kg() < points[0].report.manufacturing().kg(),
            "wind should beat coal"
        );
        assert_eq!(
            points[0].report.manufacturing().kg().to_bits(),
            points[1].report.manufacturing().kg().to_bits()
        );
    }

    #[test]
    fn errors_surface_from_the_lowest_index_point() {
        let estimator = EcoChip::default();
        // Retargeting chiplet 5 of a 2-chiplet system fails at case
        // generation already.
        let spec = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 5,
            nodes: vec![TechNode::N10],
        });
        assert!(SweepEngine::new().run(&estimator, &spec).is_err());
        assert!(SweepEngine::with_jobs(4).run(&estimator, &spec).is_err());
    }

    #[test]
    fn chunked_runs_match_unchunked_for_every_chunk_size() {
        let estimator = EcoChip::default();
        let spec = spec();
        let reference = SweepEngine::serial()
            .with_chunk(1)
            .run(&estimator, &spec)
            .unwrap();
        let total = reference.len();
        for jobs in [1usize, 2, 4] {
            for chunk in [1usize, 3, 7, total, total + 5] {
                let mut streamed = Vec::new();
                let emitted = SweepEngine::with_jobs(jobs)
                    .with_chunk(chunk)
                    .run_streaming(&estimator, &spec, &mut |point| {
                        streamed.push(point);
                        Ok(())
                    })
                    .unwrap();
                assert_eq!(emitted, total, "jobs={jobs} chunk={chunk}");
                assert_eq!(streamed, reference, "jobs={jobs} chunk={chunk}");
            }
        }
    }

    #[test]
    fn batch_sinks_see_the_same_points_in_order() {
        struct Batches {
            points: Vec<SweepPoint>,
            batches: usize,
        }
        impl SweepSink for Batches {
            fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
                self.points.push(point);
                Ok(())
            }
            fn accept_batch(&mut self, points: Vec<SweepPoint>) -> Result<(), EcoChipError> {
                self.batches += 1;
                self.points.extend(points);
                Ok(())
            }
        }
        let estimator = EcoChip::default();
        let spec = spec();
        let reference = SweepEngine::serial().run(&estimator, &spec).unwrap();
        let mut sink = Batches {
            points: Vec::new(),
            batches: 0,
        };
        let emitted = SweepEngine::with_jobs(4)
            .with_chunk(5)
            .run_streaming(&estimator, &spec, &mut sink)
            .unwrap();
        assert_eq!(emitted, reference.len());
        assert_eq!(sink.points, reference);
        // 12 points in chunks of 5 → batches of 5, 5, 2.
        assert_eq!(sink.batches, 3);
    }

    #[test]
    fn chunk_configuration_resolves_like_jobs() {
        assert_eq!(SweepEngine::new().with_chunk(0).chunk(), 1);
        assert_eq!(SweepEngine::new().with_chunk(9).chunk(), 9);
        assert_eq!(SweepEngine::new().with_optional_chunk(Some(17)).chunk(), 17);
        assert_eq!(
            SweepEngine::new().with_optional_chunk(None).chunk(),
            SweepEngine::new().chunk()
        );
    }

    #[test]
    fn empty_case_list_yields_no_points() {
        let estimator = EcoChip::default();
        let points = SweepEngine::new()
            .run_cases(&estimator, Vec::new())
            .unwrap();
        assert!(points.is_empty());
        assert!(SweepEngine::with_jobs(0).jobs() == 1);
        assert!(SweepEngine::default().jobs() >= 1);
    }
}
