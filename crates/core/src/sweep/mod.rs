//! The design-space-sweep subsystem: declarative sweep axes, a cartesian
//! [`SweepSpec`], a memoizing [`SweepContext`] and a parallel [`SweepEngine`].
//!
//! ECO-CHIP's headline results are all sweeps — technology-node tuples,
//! packaging architectures, volumes, lifetimes, chiplet counts, fab energy
//! sources. Instead of hand-rolling a serial loop per study, describe the
//! space once and let the engine evaluate it:
//!
//! ```
//! use ecochip_core::disaggregation::{NodeTuple, SocBlocks};
//! use ecochip_core::sweep::{SweepAxis, SweepEngine, SweepSpec};
//! use ecochip_core::{Chiplet, ChipletSize, EcoChip, System};
//! use ecochip_techdb::{DesignType, TechNode};
//!
//! let blocks = SocBlocks::new("soc", 10.0e9, 4.0e9, 1.0e9);
//! let base = System::builder("soc")
//!     .chiplet(Chiplet::new(
//!         "die",
//!         DesignType::Logic,
//!         TechNode::N7,
//!         ChipletSize::Transistors(15.0e9),
//!     ))
//!     .build()?;
//! // 2 tuples × 2 lifetimes = 4 points, evaluated in parallel with shared
//! // floorplan / manufacturing memoization.
//! let spec = SweepSpec::new(base)
//!     .axis(SweepAxis::NodeTuples {
//!         blocks,
//!         tuples: vec![
//!             NodeTuple::uniform(TechNode::N7),
//!             NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
//!         ],
//!     })
//!     .axis(SweepAxis::lifetimes_years(&[2.0, 4.0]));
//! let points = SweepEngine::new().run(&EcoChip::default(), &spec)?;
//! assert_eq!(points.len(), 4);
//! assert_eq!(points[0].label, "(7, 7, 7) / 2y");
//! # Ok::<(), ecochip_core::EcoChipError>(())
//! ```
//!
//! The engine guarantees deterministic output: points come back in the
//! spec's row-major case order, and each report is bit-for-bit identical to
//! what a serial, memo-free evaluation produces. Worker count comes from
//! [`SweepEngine::with_jobs`], the `ECOCHIP_JOBS` environment variable, or
//! the machine's available parallelism.
//!
//! # Streaming, sharding and memo persistence
//!
//! The spec is *index-addressable* — [`SweepSpec::case_at`] decodes any flat
//! index in `O(axes)` without materializing the product — which unlocks
//! three scale features:
//!
//! * **Streaming.** [`SweepEngine::run_streaming`] pushes points to a
//!   [`SweepSink`] in deterministic order while holding only an
//!   `O(workers)` reorder window, so million-point spaces are not
//!   memory-bound. [`SweepEngine::run`] is the collect-to-`Vec` sink over
//!   the same pipeline.
//! * **Sharding.** A [`Shard`]`{ index, of }` selector deterministically
//!   partitions the index space into contiguous, balanced slices for
//!   cross-process distribution; concatenating all shards' outputs equals
//!   the unsharded run bit-for-bit.
//! * **Memo persistence.** [`SweepContext::save_to`] /
//!   [`SweepContext::load_from`] persist the floorplan and manufacturing
//!   memos as versioned JSON keyed by
//!   [`EcoChip::memo_fingerprint`](crate::EcoChip::memo_fingerprint), so a
//!   later process (or another shard) starts warm — and a memo from a
//!   different model configuration is rejected, never silently reused.

mod axis;
mod context;
mod engine;

pub use axis::{Shard, SweepAxis, SweepCase, SweepCaseIter, SweepSpec};
pub use context::{SweepContext, SweepStats, MEMO_FORMAT_VERSION};
pub use engine::{
    validate_case_range, SweepEngine, SweepSink, CHUNK_ENV_VAR, DEFAULT_CHUNK, JOBS_ENV_VAR,
};

pub(crate) use engine::MappedSpec;

use serde::{Deserialize, Serialize};

use crate::report::CarbonReport;
use crate::system::System;

/// One evaluated point of a sweep: the label, the evaluated system and its
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable label (node tuple, packaging name, ratio, …).
    pub label: String,
    /// The evaluated system.
    pub system: System,
    /// The carbon report.
    pub report: CarbonReport,
}
