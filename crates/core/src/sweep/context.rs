//! Cross-point memoization for design-space sweeps.
//!
//! Most sweep axes leave whole stages of the estimation pipeline untouched:
//! a packaging sweep never changes the chiplet outlines, a volume or lifetime
//! sweep never changes manufacturing, a node sweep only perturbs the chiplets
//! it retargets. [`SweepContext`] caches the two expensive stage results —
//! floorplans (keyed by the full outline set) and per-die manufacturing CFP
//! (keyed by `(node, area)` plus the model parameters) — so points that share
//! a stage input share its result. The caches are guarded by mutexes, which
//! lets the [`SweepEngine`](crate::sweep::SweepEngine) share one context
//! across its worker threads.
//!
//! Because the cache stores the *exact* value the stage computed, memoized
//! runs are bit-for-bit identical to cold runs. The same exactness carries
//! across processes: [`SweepContext::save_to`] / [`SweepContext::load_from`]
//! persist the memo as versioned JSON keyed by a model fingerprint, and JSON
//! floats round-trip bit-for-bit (shortest-representation formatting), so a
//! restored memo serves the exact values the original run computed. A memo
//! whose format version or fingerprint does not match is *rejected* with a
//! typed error, never silently reused.
//!
//! # Bounded memos for service deployments
//!
//! A long-running service's key space grows without limit (every new outline
//! set and `(node, area)` pair adds an entry), so
//! [`SweepContext::with_capacity`] bounds each cache to a maximum entry
//! count with least-recently-used eviction: every hit refreshes an entry's
//! age stamp, and an insert into a full cache evicts the stalest entry
//! first. Eviction only discards work — results stay bit-for-bit identical,
//! evicted entries are simply recomputed on their next use — and the
//! [`SweepStats`] eviction counters make the churn observable.
//!
//! For incremental persistence, the context tracks how many entries were
//! inserted since the last save ([`SweepContext::dirty_entries`]);
//! [`SweepContext::save_to`] writes atomically (temp file + rename) so a
//! crash mid-save never corrupts the previous memo.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ecochip_floorplan::{ChipletOutline, Floorplan, FloorplanConfig};
use ecochip_techdb::{Area, TechNode};

use crate::error::EcoChipError;
use crate::manufacturing::{ChipletManufacturing, ManufacturingModel};

/// Format version of the persisted memo JSON; bumped on breaking layout
/// changes so old files are rejected with [`EcoChipError::MemoFormat`].
pub const MEMO_FORMAT_VERSION: u32 = 1;

/// FNV-1a offset basis (the standard 64-bit parameters).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime (the standard 64-bit parameters).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hasher for the memo caches.
///
/// Memo keys are a small fixed shape — a handful of packed `u64` bit
/// patterns plus short chiplet names — hashed on *every* estimator point,
/// so the default SipHash (keyed, HashDoS-resistant) pays for a robustness
/// the closed key space never needs. FNV-1a folds each input in one
/// xor-multiply instead. Word-sized writes fold the whole word at once
/// rather than byte-at-a-time: the hash never leaves the process (persisted
/// memos are sorted by [`Ord`], not hash order), so it only has to be fast
/// and well mixed, not match any external FNV digest.
#[derive(Debug, Clone, Copy)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut acc = self.0;
        for &byte in bytes {
            acc = (acc ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self.0 = acc;
    }

    fn write_u8(&mut self, value: u8) {
        self.0 = (self.0 ^ u64::from(value)).wrapping_mul(FNV_PRIME);
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(FNV_PRIME);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// A memo cache: a [`HashMap`] of [`Cached`] values under the packed-key
/// [`FnvHasher`] instead of the default SipHash.
type MemoMap<K, V> = HashMap<K, Cached<V>, BuildHasherDefault<FnvHasher>>;

/// Cache key for a floorplan: the floorplanner configuration plus the ordered
/// outline set (names, exact area bits, exact aspect-ratio bits).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct FloorplanKey {
    spacing_bits: u64,
    margin_bits: u64,
    outlines: Vec<(String, u64, u64)>,
}

impl FloorplanKey {
    fn new(config: &FloorplanConfig, outlines: &[ChipletOutline]) -> Self {
        Self {
            spacing_bits: config.chiplet_spacing.mm().to_bits(),
            margin_bits: config.edge_margin.mm().to_bits(),
            outlines: outlines
                .iter()
                .map(|o| {
                    (
                        o.name.clone(),
                        o.area.mm2().to_bits(),
                        o.aspect_ratio.to_bits(),
                    )
                })
                .collect(),
        }
    }
}

/// Cache key for a per-die manufacturing result: `(node, area)` plus the
/// model fingerprint of [`ManufacturingModel::memo_bits`] (node parameters,
/// wafer, fab energy source, wastage accounting).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct ManufacturingKey {
    node: TechNode,
    area_bits: u64,
    model_bits: u64,
}

/// On-disk layout of a persisted memo: format version, model fingerprint and
/// the two caches as flat entry lists (JSON objects cannot key on structs).
#[derive(Debug, Serialize, Deserialize)]
struct MemoFile {
    version: u32,
    fingerprint: u64,
    floorplans: Vec<(FloorplanKey, Floorplan)>,
    manufacturing: Vec<(ManufacturingKey, ChipletManufacturing)>,
}

/// A cached stage result plus the last-use age stamp LRU eviction keys on.
#[derive(Debug)]
struct Cached<V> {
    value: V,
    stamp: u64,
}

/// Hit/miss/eviction counters of a [`SweepContext`], for tests, benches,
/// service dashboards and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Floorplans served from the cache.
    pub floorplan_hits: usize,
    /// Floorplans computed by the floorplanner.
    pub floorplan_misses: usize,
    /// Floorplans evicted to respect the capacity bound.
    pub floorplan_evictions: usize,
    /// Per-die manufacturing results served from the cache.
    pub manufacturing_hits: usize,
    /// Per-die manufacturing results computed by the model.
    pub manufacturing_misses: usize,
    /// Per-die manufacturing results evicted to respect the capacity bound.
    pub manufacturing_evictions: usize,
}

/// Shared memo for the cacheable estimator stages.
///
/// Create one per sweep with [`SweepContext::new`] (unbounded) or
/// [`SweepContext::with_capacity`] (bounded, LRU eviction) and pass it to
/// [`EcoChip::estimate_with`](crate::EcoChip::estimate_with); the plain
/// [`EcoChip::estimate`](crate::EcoChip::estimate) entry point uses a
/// [`SweepContext::disabled`] context and caches nothing.
#[derive(Debug, Default)]
pub struct SweepContext {
    enabled: bool,
    /// Maximum entries *per cache* (`None` = unbounded).
    capacity: Option<usize>,
    floorplans: Mutex<MemoMap<FloorplanKey, Floorplan>>,
    manufacturing: Mutex<MemoMap<ManufacturingKey, ChipletManufacturing>>,
    /// Monotonic age counter; every hit or insert stamps the entry touched.
    tick: AtomicU64,
    /// Entries inserted since the last successful [`SweepContext::save_to`].
    dirty: AtomicUsize,
    /// Serializes concurrent saves: two threads writing the same temp
    /// sibling would interleave bytes and rename a corrupt snapshot over
    /// the good memo.
    save_lock: Mutex<()>,
    floorplan_hits: AtomicUsize,
    floorplan_misses: AtomicUsize,
    floorplan_evictions: AtomicUsize,
    manufacturing_hits: AtomicUsize,
    manufacturing_misses: AtomicUsize,
    manufacturing_evictions: AtomicUsize,
}

impl SweepContext {
    /// A context that memoizes floorplan and manufacturing stage results,
    /// without any size bound.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A memoizing context holding at most `max_entries` results *per
    /// cache* (floorplans and manufacturing results are bounded
    /// independently). When a cache is full, inserting a new entry evicts
    /// the least-recently-used one — results stay bit-for-bit identical,
    /// eviction only trades recomputation for memory. A capacity of zero
    /// caches nothing (every insert is dropped immediately).
    ///
    /// Eviction scans the full cache for the stalest stamp, an
    /// `O(max_entries)` walk under the cache mutex — but it only runs on a
    /// *miss* at capacity, which already paid for a floorplan or
    /// manufacturing computation that dwarfs the scan by orders of
    /// magnitude. Revisit with a stamp index if capacities ever reach the
    /// many-millions range.
    pub fn with_capacity(max_entries: usize) -> Self {
        Self {
            enabled: true,
            capacity: Some(max_entries),
            ..Self::default()
        }
    }

    /// A context that caches nothing (every stage recomputes).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this context memoizes anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The per-cache entry bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Change the per-cache entry bound (`None` = unbounded), evicting the
    /// least-recently-used entries of any cache already above the new bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        let Some(cap) = capacity else { return };
        Self::shrink_to(
            &mut self.floorplans.lock().expect("floorplan cache"),
            cap,
            &self.floorplan_evictions,
        );
        Self::shrink_to(
            &mut self.manufacturing.lock().expect("manufacturing cache"),
            cap,
            &self.manufacturing_evictions,
        );
    }

    /// Evict least-recently-used entries until `map` holds at most `cap`.
    fn shrink_to<K: Eq + Hash + Clone, V>(
        map: &mut MemoMap<K, V>,
        cap: usize,
        evictions: &AtomicUsize,
    ) {
        while map.len() > cap {
            let Some(stalest) = map
                .iter()
                .min_by_key(|(_, cached)| cached.stamp)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            map.remove(&stalest);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert under the capacity bound: evict the least-recently-used entry
    /// first when the cache is full, and count the insert as dirty.
    fn insert_bounded<K: Eq + Hash + Clone, V>(
        &self,
        map: &mut MemoMap<K, V>,
        key: K,
        value: V,
        evictions: &AtomicUsize,
    ) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                // A zero-capacity cache stores nothing.
                evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if map.len() >= cap && !map.contains_key(&key) {
                Self::shrink_to(map, cap - 1, evictions);
            }
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Cached { value, stamp });
        self.dirty.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge another context's entries into this one, keeping existing
    /// entries (and their recency stamps) untouched. Returns how many
    /// `(floorplan, manufacturing)` imported entries are *retained* after
    /// the merge — on a capacity-bounded cache an import larger than the
    /// bound churns through eviction, so the count reflects what the cache
    /// actually holds, not how many inserts were attempted.
    ///
    /// This is the cross-server memo-sharing primitive: a warm peer's
    /// exported memo is absorbed into a cold worker without discarding
    /// whatever the worker already computed. Inserts respect the capacity
    /// bound (LRU eviction) and count as dirty, so autosave persists them.
    /// Absorbing entries never changes results — both sides computed them
    /// under the same model fingerprint, so the values are identical.
    pub fn absorb(&self, other: SweepContext) -> (usize, usize) {
        if !self.enabled {
            return (0, 0);
        }
        /// Merge `imported` into `map` under the capacity bound, returning
        /// how many imported keys survived the merge (later inserts may
        /// evict earlier ones on a bounded cache).
        fn merge<K: Eq + Hash + Clone, V>(
            context: &SweepContext,
            map: &mut MemoMap<K, V>,
            imported: MemoMap<K, V>,
            evictions: &AtomicUsize,
        ) -> usize {
            let mut inserted = Vec::new();
            for (key, cached) in imported {
                if map.contains_key(&key) {
                    continue;
                }
                context.insert_bounded(map, key.clone(), cached.value, evictions);
                inserted.push(key);
            }
            inserted.iter().filter(|key| map.contains_key(*key)).count()
        }
        let absorbed_floorplans = merge(
            self,
            &mut self.floorplans.lock().expect("floorplan cache"),
            other
                .floorplans
                .into_inner()
                .expect("absorbed floorplan cache"),
            &self.floorplan_evictions,
        );
        let absorbed_manufacturing = merge(
            self,
            &mut self.manufacturing.lock().expect("manufacturing cache"),
            other
                .manufacturing
                .into_inner()
                .expect("absorbed manufacturing cache"),
            &self.manufacturing_evictions,
        );
        (absorbed_floorplans, absorbed_manufacturing)
    }

    /// Number of floorplans currently memoized.
    pub fn floorplan_entries(&self) -> usize {
        self.floorplans.lock().expect("floorplan cache").len()
    }

    /// Number of per-die manufacturing results currently memoized.
    pub fn manufacturing_entries(&self) -> usize {
        self.manufacturing
            .lock()
            .expect("manufacturing cache")
            .len()
    }

    /// Number of entries inserted since the last successful
    /// [`SweepContext::save_to`] (or since creation). Incremental savers
    /// ([`EcoChipService::save_memo_every`](crate::EcoChipService::save_memo_every))
    /// persist the memo whenever this crosses their threshold.
    pub fn dirty_entries(&self) -> usize {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Serialize the memo to versioned JSON, stamped with `fingerprint`
    /// (use [`EcoChip::memo_fingerprint`](crate::EcoChip::memo_fingerprint)
    /// for the estimator the memo was filled by).
    ///
    /// Entries are written in a deterministic (sorted-key) order so the same
    /// memo always produces the same bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::MemoFormat`] if a cached value cannot be
    /// serialized (e.g. a non-finite float).
    pub fn to_json(&self, fingerprint: u64) -> Result<String, EcoChipError> {
        let mut floorplans: Vec<(FloorplanKey, Floorplan)> = self
            .floorplans
            .lock()
            .expect("floorplan cache")
            .iter()
            .map(|(k, cached)| (k.clone(), cached.value.clone()))
            .collect();
        floorplans.sort_by(|a, b| a.0.cmp(&b.0));
        let mut manufacturing: Vec<(ManufacturingKey, ChipletManufacturing)> = self
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .iter()
            .map(|(k, cached)| (k.clone(), cached.value))
            .collect();
        manufacturing.sort_by(|a, b| a.0.cmp(&b.0));
        let file = MemoFile {
            version: MEMO_FORMAT_VERSION,
            fingerprint,
            floorplans,
            manufacturing,
        };
        serde_json::to_string(&file).map_err(|e| EcoChipError::MemoFormat(e.to_string()))
    }

    /// Reconstruct a memoizing context from [`SweepContext::to_json`]
    /// output, verifying the format version and the model fingerprint.
    ///
    /// The restored context is unbounded; apply a bound afterwards with
    /// [`SweepContext::set_capacity`].
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::MemoFormat`] for malformed JSON or an
    /// incompatible format version, and [`EcoChipError::StaleMemo`] when the
    /// stored fingerprint differs from `fingerprint` — a memo produced under
    /// different model parameters must never be reused.
    pub fn from_json(json: &str, fingerprint: u64) -> Result<Self, EcoChipError> {
        let file: MemoFile =
            serde_json::from_str(json).map_err(|e| EcoChipError::MemoFormat(e.to_string()))?;
        if file.version != MEMO_FORMAT_VERSION {
            return Err(EcoChipError::MemoFormat(format!(
                "memo format version {} is not the supported version {MEMO_FORMAT_VERSION}",
                file.version
            )));
        }
        if file.fingerprint != fingerprint {
            return Err(EcoChipError::StaleMemo(format!(
                "memo fingerprint {:#018x} does not match the estimator's {:#018x}",
                file.fingerprint, fingerprint
            )));
        }
        let context = Self::new();
        {
            let mut floorplans = context.floorplans.lock().expect("floorplan cache");
            for (key, value) in file.floorplans {
                let stamp = context.tick.fetch_add(1, Ordering::Relaxed);
                floorplans.insert(key, Cached { value, stamp });
            }
        }
        {
            let mut manufacturing = context.manufacturing.lock().expect("manufacturing cache");
            for (key, value) in file.manufacturing {
                let stamp = context.tick.fetch_add(1, Ordering::Relaxed);
                manufacturing.insert(key, Cached { value, stamp });
            }
        }
        Ok(context)
    }

    /// Persist the memo to `path` as versioned, fingerprinted JSON.
    ///
    /// The write is atomic — the JSON goes to a temporary sibling file
    /// which is then renamed over `path`, and concurrent saves are
    /// serialized behind an internal lock — so a crash mid-save (or a
    /// racing saver) leaves the previous memo intact instead of a
    /// truncated or interleaved file. A successful save subtracts the
    /// snapshot's share from [`SweepContext::dirty_entries`]; entries
    /// inserted by other threads *during* the save stay counted as dirty.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::Io`] when the file cannot be written and
    /// [`EcoChipError::MemoFormat`] when serialization fails.
    pub fn save_to(&self, path: &Path, fingerprint: u64) -> Result<(), EcoChipError> {
        let _guard = self.save_lock.lock().expect("memo save lock");
        // Snapshot the dirty share this save covers *before* serializing:
        // inserts racing with the save may or may not make the snapshot,
        // and keeping them dirty at worst re-saves them (safe), while
        // clearing them could lose them until the next threshold (unsafe).
        let covered = self.dirty.load(Ordering::Relaxed);
        let json = self.to_json(fingerprint)?;
        let tmp = Self::temp_sibling(path)?;
        std::fs::write(&tmp, &json)
            .map_err(|e| EcoChipError::Io(format!("writing memo {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            // Clean up the orphaned temp file; the rename error is what matters.
            let _ = std::fs::remove_file(&tmp);
            EcoChipError::Io(format!("renaming memo into {}: {e}", path.display()))
        })?;
        self.dirty.fetch_sub(covered, Ordering::Relaxed);
        Ok(())
    }

    /// The temporary sibling `save_to` stages its atomic write in. The name
    /// is unique per writer (pid + counter): the internal lock serializes
    /// saves within one process, but separate *processes* sharing a memo
    /// file (the documented multi-shard workflow) must never stage into the
    /// same temp path, or interleaved writes could publish a corrupt
    /// snapshot.
    fn temp_sibling(path: &Path) -> Result<PathBuf, EcoChipError> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let Some(name) = path.file_name() else {
            return Err(EcoChipError::Io(format!(
                "memo path {} has no file name",
                path.display()
            )));
        };
        let mut tmp_name = name.to_os_string();
        tmp_name.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Ok(path.with_file_name(tmp_name))
    }

    /// Load a memo persisted by [`SweepContext::save_to`], verifying the
    /// format version and the model fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::Io`] when the file cannot be read,
    /// [`EcoChipError::MemoFormat`] for malformed or incompatible files and
    /// [`EcoChipError::StaleMemo`] for fingerprint mismatches.
    pub fn load_from(path: &Path, fingerprint: u64) -> Result<Self, EcoChipError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| EcoChipError::Io(format!("reading memo {}: {e}", path.display())))?;
        Self::from_json(&json, fingerprint)
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            floorplan_hits: self.floorplan_hits.load(Ordering::Relaxed),
            floorplan_misses: self.floorplan_misses.load(Ordering::Relaxed),
            floorplan_evictions: self.floorplan_evictions.load(Ordering::Relaxed),
            manufacturing_hits: self.manufacturing_hits.load(Ordering::Relaxed),
            manufacturing_misses: self.manufacturing_misses.load(Ordering::Relaxed),
            manufacturing_evictions: self.manufacturing_evictions.load(Ordering::Relaxed),
        }
    }

    /// Floorplan `outlines` under `config`, reusing a cached result when the
    /// same outline set was already planned.
    pub(crate) fn floorplan<F>(
        &self,
        config: &FloorplanConfig,
        outlines: &[ChipletOutline],
        compute: F,
    ) -> Result<Floorplan, EcoChipError>
    where
        F: FnOnce() -> Result<Floorplan, EcoChipError>,
    {
        if !self.enabled {
            return compute();
        }
        let key = FloorplanKey::new(config, outlines);
        if let Some(cached) = self
            .floorplans
            .lock()
            .expect("floorplan cache")
            .get_mut(&key)
        {
            cached.stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            self.floorplan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.value.clone());
        }
        // Computed outside the lock so other workers make progress; a rare
        // duplicate computation of the same key is benign (same value).
        let plan = compute()?;
        self.floorplan_misses.fetch_add(1, Ordering::Relaxed);
        self.insert_bounded(
            &mut self.floorplans.lock().expect("floorplan cache"),
            key,
            plan.clone(),
            &self.floorplan_evictions,
        );
        Ok(plan)
    }

    /// Manufacturing CFP of one die, reusing a cached result when the same
    /// `(node, area)` was already evaluated under an identical model.
    pub(crate) fn manufacturing(
        &self,
        model: &ManufacturingModel<'_>,
        area: Area,
        node: TechNode,
    ) -> Result<ChipletManufacturing, EcoChipError> {
        if !self.enabled {
            return model.chiplet_cfp(area, node);
        }
        let key = ManufacturingKey {
            node,
            area_bits: area.mm2().to_bits(),
            model_bits: model.memo_bits(node)?,
        };
        if let Some(cached) = self
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .get_mut(&key)
        {
            cached.stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            self.manufacturing_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.value);
        }
        let result = model.chiplet_cfp(area, node)?;
        self.manufacturing_misses.fetch_add(1, Ordering::Relaxed);
        self.insert_bounded(
            &mut self.manufacturing.lock().expect("manufacturing cache"),
            key,
            result,
            &self.manufacturing_evictions,
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::{EnergySource, TechDb};
    use ecochip_yield::Wafer;

    #[test]
    fn fnv_hasher_matches_the_reference_byte_vectors() {
        // Byte-stream writes follow the published 64-bit FNV-1a vectors;
        // word writes fold whole words and intentionally diverge.
        let digest = |bytes: &[u8]| {
            let mut hasher = FnvHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(digest(b""), 0xcbf29ce484222325);
        assert_eq!(digest(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(digest(b"foobar"), 0x85944171f73967e8);
        // A packed u64 write mixes the whole word in one fold.
        let mut packed = FnvHasher::default();
        packed.write_u64(0xdead_beef_0bad_f00d);
        assert_eq!(
            packed.finish(),
            (FNV_OFFSET ^ 0xdead_beef_0bad_f00d).wrapping_mul(FNV_PRIME)
        );
        // Different keys disperse; equal keys agree (HashMap's contract).
        let mut other = FnvHasher::default();
        other.write_u64(0xdead_beef_0bad_f00e);
        assert_ne!(packed.finish(), other.finish());
    }

    #[test]
    fn disabled_context_never_caches() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::disabled();
        assert!(!ctx.is_enabled());
        for _ in 0..3 {
            ctx.manufacturing(&model, Area::from_mm2(100.0), TechNode::N7)
                .unwrap();
        }
        assert_eq!(ctx.stats(), SweepStats::default());
    }

    #[test]
    fn manufacturing_cache_hits_on_repeated_inputs() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(123.0);
        let first = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        let second = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        assert_eq!(first, second);
        let stats = ctx.stats();
        assert_eq!(stats.manufacturing_misses, 1);
        assert_eq!(stats.manufacturing_hits, 1);
        // A different node misses again.
        ctx.manufacturing(&model, area, TechNode::N14).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
    }

    #[test]
    fn manufacturing_cache_distinguishes_model_parameters() {
        let db = TechDb::default();
        let coal = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let wind = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Wind);
        let no_wastage = coal.without_wastage();
        let ctx = SweepContext::new();
        let area = Area::from_mm2(100.0);
        let a = ctx.manufacturing(&coal, area, TechNode::N7).unwrap();
        let b = ctx.manufacturing(&wind, area, TechNode::N7).unwrap();
        let c = ctx.manufacturing(&no_wastage, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 3);
        assert!(b.total().kg() < a.total().kg());
        assert_eq!(c.wastage_cfp.kg(), 0.0);
    }

    #[test]
    fn manufacturing_cache_distinguishes_techdbs() {
        // A context shared across estimators with different technology
        // databases must never serve one database's result for the other.
        let default_db = TechDb::default();
        let tweaked = default_db
            .node(TechNode::N7)
            .unwrap()
            .to_builder()
            .defect_density(0.29)
            .build()
            .unwrap();
        let dirty = default_db.to_builder().insert(tweaked).build();
        let a = ManufacturingModel::new(&default_db, Wafer::standard_450mm(), EnergySource::Coal);
        let b = ManufacturingModel::new(&dirty, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(300.0);
        let from_a = ctx.manufacturing(&a, area, TechNode::N7).unwrap();
        let from_b = ctx.manufacturing(&b, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
        assert_eq!(ctx.stats().manufacturing_hits, 0);
        assert!(from_b.total().kg() > from_a.total().kg());
        assert_eq!(from_a, a.chiplet_cfp(area, TechNode::N7).unwrap());
        assert_eq!(from_b, b.chiplet_cfp(area, TechNode::N7).unwrap());
    }

    fn filled_context() -> SweepContext {
        use ecochip_floorplan::SlicingFloorplanner;
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        ctx.manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        ctx.manufacturing(&model, Area::from_mm2(45.0), TechNode::N14)
            .unwrap();
        let config = FloorplanConfig::default();
        let outlines = vec![
            ChipletOutline::new("a", Area::from_mm2(100.0)),
            ChipletOutline::new("b", Area::from_mm2(50.0)),
        ];
        ctx.floorplan(&config, &outlines, || {
            SlicingFloorplanner::new(config)
                .floorplan(&outlines)
                .map_err(EcoChipError::from)
        })
        .unwrap();
        ctx
    }

    #[test]
    fn memo_json_roundtrip_restores_every_entry() {
        let ctx = filled_context();
        assert_eq!(ctx.manufacturing_entries(), 2);
        assert_eq!(ctx.floorplan_entries(), 1);
        let json = ctx.to_json(0xfeed).unwrap();
        let restored = SweepContext::from_json(&json, 0xfeed).unwrap();
        assert!(restored.is_enabled());
        assert_eq!(restored.manufacturing_entries(), 2);
        assert_eq!(restored.floorplan_entries(), 1);
        // Restored entries hit, and serve the exact cached values.
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let original = ctx
            .manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        let served = restored
            .manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        assert_eq!(restored.stats().manufacturing_hits, 1);
        assert_eq!(restored.stats().manufacturing_misses, 0);
        assert_eq!(
            original.total().kg().to_bits(),
            served.total().kg().to_bits()
        );
        // Saving the restored context reproduces the same bytes.
        assert_eq!(restored.to_json(0xfeed).unwrap(), json);
    }

    #[test]
    fn memo_with_wrong_fingerprint_or_version_is_rejected() {
        let ctx = filled_context();
        let json = ctx.to_json(1).unwrap();
        assert!(matches!(
            SweepContext::from_json(&json, 2),
            Err(EcoChipError::StaleMemo(_))
        ));
        let future = json.replacen(
            &format!("\"version\":{MEMO_FORMAT_VERSION}"),
            "\"version\":99",
            1,
        );
        assert_ne!(future, json, "version field not found in memo JSON");
        assert!(matches!(
            SweepContext::from_json(&future, 1),
            Err(EcoChipError::MemoFormat(_))
        ));
        assert!(matches!(
            SweepContext::from_json("not json", 1),
            Err(EcoChipError::MemoFormat(_))
        ));
    }

    #[test]
    fn memo_file_save_and_load() {
        let ctx = filled_context();
        let path =
            std::env::temp_dir().join(format!("ecochip-memo-unit-{}.json", std::process::id()));
        ctx.save_to(&path, 7).unwrap();
        let restored = SweepContext::load_from(&path, 7).unwrap();
        assert_eq!(restored.floorplan_entries(), ctx.floorplan_entries());
        assert!(matches!(
            SweepContext::load_from(&path, 8),
            Err(EcoChipError::StaleMemo(_))
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            SweepContext::load_from(&path, 7),
            Err(EcoChipError::Io(_))
        ));
    }

    #[test]
    fn save_is_atomic_and_resets_the_dirty_counter() {
        let ctx = filled_context();
        assert_eq!(ctx.dirty_entries(), 3);
        let path =
            std::env::temp_dir().join(format!("ecochip-memo-atomic-{}.json", std::process::id()));
        ctx.save_to(&path, 7).unwrap();
        assert_eq!(ctx.dirty_entries(), 0);
        // No temp sibling (`<name>.<pid>.<n>.tmp`) is left behind.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .filter(|file| file.starts_with(&name) && file.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        // New inserts dirty the context again.
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        ctx.manufacturing(&model, Area::from_mm2(999.0), TechNode::N7)
            .unwrap();
        assert_eq!(ctx.dirty_entries(), 1);
        // A save into a directory that does not exist fails with Io and
        // leaves no temp file where the memo should go.
        let bad = std::env::temp_dir().join("ecochip-definitely-missing-dir/memo.json");
        assert!(matches!(ctx.save_to(&bad, 7), Err(EcoChipError::Io(_))));
        std::fs::remove_file(&path).unwrap();
        // A path with no file name is rejected.
        assert!(matches!(
            ctx.save_to(Path::new("/"), 7),
            Err(EcoChipError::Io(_))
        ));
    }

    #[test]
    fn concurrent_saves_never_corrupt_the_memo() {
        let ctx = filled_context();
        let path = std::env::temp_dir().join(format!(
            "ecochip-memo-concurrent-{}.json",
            std::process::id()
        ));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        ctx.save_to(&path, 7).unwrap();
                    }
                });
            }
        });
        // Whatever interleaving happened, the final file is a valid,
        // complete snapshot.
        let restored = SweepContext::load_from(&path, 7).unwrap();
        assert_eq!(restored.floorplan_entries(), ctx.floorplan_entries());
        assert_eq!(
            restored.manufacturing_entries(),
            ctx.manufacturing_entries()
        );
        assert_eq!(ctx.dirty_entries(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::with_capacity(2);
        assert_eq!(ctx.capacity(), Some(2));
        let a = Area::from_mm2(10.0);
        let b = Area::from_mm2(20.0);
        let c = Area::from_mm2(30.0);
        ctx.manufacturing(&model, a, TechNode::N7).unwrap();
        ctx.manufacturing(&model, b, TechNode::N7).unwrap();
        // Touch `a` so `b` is the least recently used.
        ctx.manufacturing(&model, a, TechNode::N7).unwrap();
        // Inserting `c` into the full cache evicts `b`.
        ctx.manufacturing(&model, c, TechNode::N7).unwrap();
        assert_eq!(ctx.manufacturing_entries(), 2);
        assert_eq!(ctx.stats().manufacturing_evictions, 1);
        // `a` and `c` still hit; `b` was evicted and misses again.
        let hits_before = ctx.stats().manufacturing_hits;
        ctx.manufacturing(&model, a, TechNode::N7).unwrap();
        ctx.manufacturing(&model, c, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_hits, hits_before + 2);
        let misses_before = ctx.stats().manufacturing_misses;
        ctx.manufacturing(&model, b, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, misses_before + 1);
        // Eviction never changes values, only recomputes them.
        let bounded = ctx.manufacturing(&model, b, TechNode::N7).unwrap();
        let unbounded = SweepContext::new()
            .manufacturing(&model, b, TechNode::N7)
            .unwrap();
        assert_eq!(
            bounded.total().kg().to_bits(),
            unbounded.total().kg().to_bits()
        );
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::with_capacity(0);
        for _ in 0..3 {
            ctx.manufacturing(&model, Area::from_mm2(50.0), TechNode::N7)
                .unwrap();
        }
        assert_eq!(ctx.manufacturing_entries(), 0);
        assert_eq!(ctx.stats().manufacturing_hits, 0);
        assert_eq!(ctx.stats().manufacturing_misses, 3);
        assert_eq!(ctx.stats().manufacturing_evictions, 3);
    }

    #[test]
    fn set_capacity_shrinks_existing_caches() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let mut ctx = SweepContext::new();
        for mm2 in [10.0, 20.0, 30.0, 40.0] {
            ctx.manufacturing(&model, Area::from_mm2(mm2), TechNode::N7)
                .unwrap();
        }
        assert_eq!(ctx.manufacturing_entries(), 4);
        ctx.set_capacity(Some(2));
        assert_eq!(ctx.manufacturing_entries(), 2);
        assert_eq!(ctx.stats().manufacturing_evictions, 2);
        // The survivors are the two most recently inserted areas.
        let hits_before = ctx.stats().manufacturing_hits;
        ctx.manufacturing(&model, Area::from_mm2(30.0), TechNode::N7)
            .unwrap();
        ctx.manufacturing(&model, Area::from_mm2(40.0), TechNode::N7)
            .unwrap();
        assert_eq!(ctx.stats().manufacturing_hits, hits_before + 2);
        // Lifting the bound keeps everything.
        ctx.set_capacity(None);
        assert_eq!(ctx.capacity(), None);
    }

    #[test]
    fn absorb_merges_only_missing_entries() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let warm = filled_context();
        let warm_entries = warm.manufacturing_entries();

        // A cold context absorbs everything, and the absorbed entries hit.
        let cold = SweepContext::new();
        let (floorplans, manufacturing) =
            cold.absorb(SweepContext::from_json(&warm.to_json(1).unwrap(), 1).unwrap());
        assert_eq!(floorplans, 1);
        assert_eq!(manufacturing, warm_entries);
        cold.manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        assert_eq!(cold.stats().manufacturing_hits, 1);
        assert_eq!(cold.stats().manufacturing_misses, 0);
        // Absorbed entries count as dirty so autosave persists them.
        assert_eq!(cold.dirty_entries(), 1 + warm_entries);

        // A context that already holds an entry keeps it and absorbs only
        // the rest.
        let partial = SweepContext::new();
        partial
            .manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        let (_, absorbed) = partial.absorb(filled_context());
        assert_eq!(absorbed, warm_entries - 1);
        assert_eq!(partial.manufacturing_entries(), warm_entries);

        // Absorbing into a bounded cache respects the bound, and the count
        // reports only the entries *retained* (an import larger than the
        // bound churns through eviction; claiming more would overstate
        // what the cache holds).
        let bounded = SweepContext::with_capacity(1);
        let (_, absorbed) = bounded.absorb(filled_context());
        assert_eq!(absorbed, 1, "two imports into a 1-bounded cache retain 1");
        assert_eq!(bounded.manufacturing_entries(), 1);
        let none = SweepContext::with_capacity(0);
        assert_eq!(none.absorb(filled_context()), (0, 0));
        let disabled = SweepContext::disabled();
        assert_eq!(disabled.absorb(filled_context()), (0, 0));
    }

    #[test]
    fn floorplan_cache_keys_on_outline_set() {
        use ecochip_floorplan::SlicingFloorplanner;
        let config = FloorplanConfig::default();
        let outlines = vec![
            ChipletOutline::new("a", Area::from_mm2(100.0)),
            ChipletOutline::new("b", Area::from_mm2(50.0)),
        ];
        let ctx = SweepContext::new();
        let compute = || {
            SlicingFloorplanner::new(config)
                .floorplan(&outlines)
                .map_err(EcoChipError::from)
        };
        let first = ctx.floorplan(&config, &outlines, compute).unwrap();
        let second = ctx.floorplan(&config, &outlines, compute).unwrap();
        assert_eq!(first, second);
        assert_eq!(ctx.stats().floorplan_hits, 1);
        assert_eq!(ctx.stats().floorplan_misses, 1);
        // A different outline set misses.
        let other = vec![ChipletOutline::new("a", Area::from_mm2(101.0))];
        ctx.floorplan(&config, &other, || {
            SlicingFloorplanner::new(config)
                .floorplan(&other)
                .map_err(EcoChipError::from)
        })
        .unwrap();
        assert_eq!(ctx.stats().floorplan_misses, 2);
    }
}
