//! Cross-point memoization for design-space sweeps.
//!
//! Most sweep axes leave whole stages of the estimation pipeline untouched:
//! a packaging sweep never changes the chiplet outlines, a volume or lifetime
//! sweep never changes manufacturing, a node sweep only perturbs the chiplets
//! it retargets. [`SweepContext`] caches the two expensive stage results —
//! floorplans (keyed by the full outline set) and per-die manufacturing CFP
//! (keyed by `(node, area)` plus the model parameters) — so points that share
//! a stage input share its result. The caches are guarded by mutexes, which
//! lets the [`SweepEngine`](crate::sweep::SweepEngine) share one context
//! across its worker threads.
//!
//! Because the cache stores the *exact* value the stage computed, memoized
//! runs are bit-for-bit identical to cold runs. The same exactness carries
//! across processes: [`SweepContext::save_to`] / [`SweepContext::load_from`]
//! persist the memo as versioned JSON keyed by a model fingerprint, and JSON
//! floats round-trip bit-for-bit (shortest-representation formatting), so a
//! restored memo serves the exact values the original run computed. A memo
//! whose format version or fingerprint does not match is *rejected* with a
//! typed error, never silently reused.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ecochip_floorplan::{ChipletOutline, Floorplan, FloorplanConfig};
use ecochip_techdb::{Area, TechNode};

use crate::error::EcoChipError;
use crate::manufacturing::{ChipletManufacturing, ManufacturingModel};

/// Format version of the persisted memo JSON; bumped on breaking layout
/// changes so old files are rejected with [`EcoChipError::MemoFormat`].
pub const MEMO_FORMAT_VERSION: u32 = 1;

/// Cache key for a floorplan: the floorplanner configuration plus the ordered
/// outline set (names, exact area bits, exact aspect-ratio bits).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct FloorplanKey {
    spacing_bits: u64,
    margin_bits: u64,
    outlines: Vec<(String, u64, u64)>,
}

impl FloorplanKey {
    fn new(config: &FloorplanConfig, outlines: &[ChipletOutline]) -> Self {
        Self {
            spacing_bits: config.chiplet_spacing.mm().to_bits(),
            margin_bits: config.edge_margin.mm().to_bits(),
            outlines: outlines
                .iter()
                .map(|o| {
                    (
                        o.name.clone(),
                        o.area.mm2().to_bits(),
                        o.aspect_ratio.to_bits(),
                    )
                })
                .collect(),
        }
    }
}

/// Cache key for a per-die manufacturing result: `(node, area)` plus the
/// model fingerprint of [`ManufacturingModel::memo_bits`] (node parameters,
/// wafer, fab energy source, wastage accounting).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct ManufacturingKey {
    node: TechNode,
    area_bits: u64,
    model_bits: u64,
}

/// On-disk layout of a persisted memo: format version, model fingerprint and
/// the two caches as flat entry lists (JSON objects cannot key on structs).
#[derive(Debug, Serialize, Deserialize)]
struct MemoFile {
    version: u32,
    fingerprint: u64,
    floorplans: Vec<(FloorplanKey, Floorplan)>,
    manufacturing: Vec<(ManufacturingKey, ChipletManufacturing)>,
}

/// Hit/miss counters of a [`SweepContext`], for tests, benches and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Floorplans served from the cache.
    pub floorplan_hits: usize,
    /// Floorplans computed by the floorplanner.
    pub floorplan_misses: usize,
    /// Per-die manufacturing results served from the cache.
    pub manufacturing_hits: usize,
    /// Per-die manufacturing results computed by the model.
    pub manufacturing_misses: usize,
}

/// Shared memo for the cacheable estimator stages.
///
/// Create one per sweep with [`SweepContext::new`] and pass it to
/// [`EcoChip::estimate_with`](crate::EcoChip::estimate_with); the plain
/// [`EcoChip::estimate`](crate::EcoChip::estimate) entry point uses a
/// [`SweepContext::disabled`] context and caches nothing.
#[derive(Debug, Default)]
pub struct SweepContext {
    enabled: bool,
    floorplans: Mutex<HashMap<FloorplanKey, Floorplan>>,
    manufacturing: Mutex<HashMap<ManufacturingKey, ChipletManufacturing>>,
    floorplan_hits: AtomicUsize,
    floorplan_misses: AtomicUsize,
    manufacturing_hits: AtomicUsize,
    manufacturing_misses: AtomicUsize,
}

impl SweepContext {
    /// A context that memoizes floorplan and manufacturing stage results.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A context that caches nothing (every stage recomputes).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this context memoizes anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of floorplans currently memoized.
    pub fn floorplan_entries(&self) -> usize {
        self.floorplans.lock().expect("floorplan cache").len()
    }

    /// Number of per-die manufacturing results currently memoized.
    pub fn manufacturing_entries(&self) -> usize {
        self.manufacturing
            .lock()
            .expect("manufacturing cache")
            .len()
    }

    /// Serialize the memo to versioned JSON, stamped with `fingerprint`
    /// (use [`EcoChip::memo_fingerprint`](crate::EcoChip::memo_fingerprint)
    /// for the estimator the memo was filled by).
    ///
    /// Entries are written in a deterministic (sorted-key) order so the same
    /// memo always produces the same bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::MemoFormat`] if a cached value cannot be
    /// serialized (e.g. a non-finite float).
    pub fn to_json(&self, fingerprint: u64) -> Result<String, EcoChipError> {
        let mut floorplans: Vec<(FloorplanKey, Floorplan)> = self
            .floorplans
            .lock()
            .expect("floorplan cache")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        floorplans.sort_by(|a, b| a.0.cmp(&b.0));
        let mut manufacturing: Vec<(ManufacturingKey, ChipletManufacturing)> = self
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        manufacturing.sort_by(|a, b| a.0.cmp(&b.0));
        let file = MemoFile {
            version: MEMO_FORMAT_VERSION,
            fingerprint,
            floorplans,
            manufacturing,
        };
        serde_json::to_string(&file).map_err(|e| EcoChipError::MemoFormat(e.to_string()))
    }

    /// Reconstruct a memoizing context from [`SweepContext::to_json`]
    /// output, verifying the format version and the model fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::MemoFormat`] for malformed JSON or an
    /// incompatible format version, and [`EcoChipError::StaleMemo`] when the
    /// stored fingerprint differs from `fingerprint` — a memo produced under
    /// different model parameters must never be reused.
    pub fn from_json(json: &str, fingerprint: u64) -> Result<Self, EcoChipError> {
        let file: MemoFile =
            serde_json::from_str(json).map_err(|e| EcoChipError::MemoFormat(e.to_string()))?;
        if file.version != MEMO_FORMAT_VERSION {
            return Err(EcoChipError::MemoFormat(format!(
                "memo format version {} is not the supported version {MEMO_FORMAT_VERSION}",
                file.version
            )));
        }
        if file.fingerprint != fingerprint {
            return Err(EcoChipError::StaleMemo(format!(
                "memo fingerprint {:#018x} does not match the estimator's {:#018x}",
                file.fingerprint, fingerprint
            )));
        }
        let context = Self::new();
        context
            .floorplans
            .lock()
            .expect("floorplan cache")
            .extend(file.floorplans);
        context
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .extend(file.manufacturing);
        Ok(context)
    }

    /// Persist the memo to `path` as versioned, fingerprinted JSON.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::Io`] when the file cannot be written and
    /// [`EcoChipError::MemoFormat`] when serialization fails.
    pub fn save_to(&self, path: &Path, fingerprint: u64) -> Result<(), EcoChipError> {
        let json = self.to_json(fingerprint)?;
        std::fs::write(path, json)
            .map_err(|e| EcoChipError::Io(format!("writing memo {}: {e}", path.display())))
    }

    /// Load a memo persisted by [`SweepContext::save_to`], verifying the
    /// format version and the model fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::Io`] when the file cannot be read,
    /// [`EcoChipError::MemoFormat`] for malformed or incompatible files and
    /// [`EcoChipError::StaleMemo`] for fingerprint mismatches.
    pub fn load_from(path: &Path, fingerprint: u64) -> Result<Self, EcoChipError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| EcoChipError::Io(format!("reading memo {}: {e}", path.display())))?;
        Self::from_json(&json, fingerprint)
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            floorplan_hits: self.floorplan_hits.load(Ordering::Relaxed),
            floorplan_misses: self.floorplan_misses.load(Ordering::Relaxed),
            manufacturing_hits: self.manufacturing_hits.load(Ordering::Relaxed),
            manufacturing_misses: self.manufacturing_misses.load(Ordering::Relaxed),
        }
    }

    /// Floorplan `outlines` under `config`, reusing a cached result when the
    /// same outline set was already planned.
    pub(crate) fn floorplan<F>(
        &self,
        config: &FloorplanConfig,
        outlines: &[ChipletOutline],
        compute: F,
    ) -> Result<Floorplan, EcoChipError>
    where
        F: FnOnce() -> Result<Floorplan, EcoChipError>,
    {
        if !self.enabled {
            return compute();
        }
        let key = FloorplanKey::new(config, outlines);
        if let Some(plan) = self.floorplans.lock().expect("floorplan cache").get(&key) {
            self.floorplan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        // Computed outside the lock so other workers make progress; a rare
        // duplicate computation of the same key is benign (same value).
        let plan = compute()?;
        self.floorplan_misses.fetch_add(1, Ordering::Relaxed);
        self.floorplans
            .lock()
            .expect("floorplan cache")
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// Manufacturing CFP of one die, reusing a cached result when the same
    /// `(node, area)` was already evaluated under an identical model.
    pub(crate) fn manufacturing(
        &self,
        model: &ManufacturingModel<'_>,
        area: Area,
        node: TechNode,
    ) -> Result<ChipletManufacturing, EcoChipError> {
        if !self.enabled {
            return model.chiplet_cfp(area, node);
        }
        let key = ManufacturingKey {
            node,
            area_bits: area.mm2().to_bits(),
            model_bits: model.memo_bits(node)?,
        };
        if let Some(result) = self
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .get(&key)
        {
            self.manufacturing_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*result);
        }
        let result = model.chiplet_cfp(area, node)?;
        self.manufacturing_misses.fetch_add(1, Ordering::Relaxed);
        self.manufacturing
            .lock()
            .expect("manufacturing cache")
            .insert(key, result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::{EnergySource, TechDb};
    use ecochip_yield::Wafer;

    #[test]
    fn disabled_context_never_caches() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::disabled();
        assert!(!ctx.is_enabled());
        for _ in 0..3 {
            ctx.manufacturing(&model, Area::from_mm2(100.0), TechNode::N7)
                .unwrap();
        }
        assert_eq!(ctx.stats(), SweepStats::default());
    }

    #[test]
    fn manufacturing_cache_hits_on_repeated_inputs() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(123.0);
        let first = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        let second = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        assert_eq!(first, second);
        let stats = ctx.stats();
        assert_eq!(stats.manufacturing_misses, 1);
        assert_eq!(stats.manufacturing_hits, 1);
        // A different node misses again.
        ctx.manufacturing(&model, area, TechNode::N14).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
    }

    #[test]
    fn manufacturing_cache_distinguishes_model_parameters() {
        let db = TechDb::default();
        let coal = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let wind = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Wind);
        let no_wastage = coal.without_wastage();
        let ctx = SweepContext::new();
        let area = Area::from_mm2(100.0);
        let a = ctx.manufacturing(&coal, area, TechNode::N7).unwrap();
        let b = ctx.manufacturing(&wind, area, TechNode::N7).unwrap();
        let c = ctx.manufacturing(&no_wastage, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 3);
        assert!(b.total().kg() < a.total().kg());
        assert_eq!(c.wastage_cfp.kg(), 0.0);
    }

    #[test]
    fn manufacturing_cache_distinguishes_techdbs() {
        // A context shared across estimators with different technology
        // databases must never serve one database's result for the other.
        let default_db = TechDb::default();
        let tweaked = default_db
            .node(TechNode::N7)
            .unwrap()
            .to_builder()
            .defect_density(0.29)
            .build()
            .unwrap();
        let dirty = default_db.to_builder().insert(tweaked).build();
        let a = ManufacturingModel::new(&default_db, Wafer::standard_450mm(), EnergySource::Coal);
        let b = ManufacturingModel::new(&dirty, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(300.0);
        let from_a = ctx.manufacturing(&a, area, TechNode::N7).unwrap();
        let from_b = ctx.manufacturing(&b, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
        assert_eq!(ctx.stats().manufacturing_hits, 0);
        assert!(from_b.total().kg() > from_a.total().kg());
        assert_eq!(from_a, a.chiplet_cfp(area, TechNode::N7).unwrap());
        assert_eq!(from_b, b.chiplet_cfp(area, TechNode::N7).unwrap());
    }

    fn filled_context() -> SweepContext {
        use ecochip_floorplan::SlicingFloorplanner;
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        ctx.manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        ctx.manufacturing(&model, Area::from_mm2(45.0), TechNode::N14)
            .unwrap();
        let config = FloorplanConfig::default();
        let outlines = vec![
            ChipletOutline::new("a", Area::from_mm2(100.0)),
            ChipletOutline::new("b", Area::from_mm2(50.0)),
        ];
        ctx.floorplan(&config, &outlines, || {
            SlicingFloorplanner::new(config)
                .floorplan(&outlines)
                .map_err(EcoChipError::from)
        })
        .unwrap();
        ctx
    }

    #[test]
    fn memo_json_roundtrip_restores_every_entry() {
        let ctx = filled_context();
        assert_eq!(ctx.manufacturing_entries(), 2);
        assert_eq!(ctx.floorplan_entries(), 1);
        let json = ctx.to_json(0xfeed).unwrap();
        let restored = SweepContext::from_json(&json, 0xfeed).unwrap();
        assert!(restored.is_enabled());
        assert_eq!(restored.manufacturing_entries(), 2);
        assert_eq!(restored.floorplan_entries(), 1);
        // Restored entries hit, and serve the exact cached values.
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let original = ctx
            .manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        let served = restored
            .manufacturing(&model, Area::from_mm2(123.0), TechNode::N7)
            .unwrap();
        assert_eq!(restored.stats().manufacturing_hits, 1);
        assert_eq!(restored.stats().manufacturing_misses, 0);
        assert_eq!(
            original.total().kg().to_bits(),
            served.total().kg().to_bits()
        );
        // Saving the restored context reproduces the same bytes.
        assert_eq!(restored.to_json(0xfeed).unwrap(), json);
    }

    #[test]
    fn memo_with_wrong_fingerprint_or_version_is_rejected() {
        let ctx = filled_context();
        let json = ctx.to_json(1).unwrap();
        assert!(matches!(
            SweepContext::from_json(&json, 2),
            Err(EcoChipError::StaleMemo(_))
        ));
        let future = json.replacen(
            &format!("\"version\":{MEMO_FORMAT_VERSION}"),
            "\"version\":99",
            1,
        );
        assert_ne!(future, json, "version field not found in memo JSON");
        assert!(matches!(
            SweepContext::from_json(&future, 1),
            Err(EcoChipError::MemoFormat(_))
        ));
        assert!(matches!(
            SweepContext::from_json("not json", 1),
            Err(EcoChipError::MemoFormat(_))
        ));
    }

    #[test]
    fn memo_file_save_and_load() {
        let ctx = filled_context();
        let path =
            std::env::temp_dir().join(format!("ecochip-memo-unit-{}.json", std::process::id()));
        ctx.save_to(&path, 7).unwrap();
        let restored = SweepContext::load_from(&path, 7).unwrap();
        assert_eq!(restored.floorplan_entries(), ctx.floorplan_entries());
        assert!(matches!(
            SweepContext::load_from(&path, 8),
            Err(EcoChipError::StaleMemo(_))
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            SweepContext::load_from(&path, 7),
            Err(EcoChipError::Io(_))
        ));
    }

    #[test]
    fn floorplan_cache_keys_on_outline_set() {
        use ecochip_floorplan::SlicingFloorplanner;
        let config = FloorplanConfig::default();
        let outlines = vec![
            ChipletOutline::new("a", Area::from_mm2(100.0)),
            ChipletOutline::new("b", Area::from_mm2(50.0)),
        ];
        let ctx = SweepContext::new();
        let compute = || {
            SlicingFloorplanner::new(config)
                .floorplan(&outlines)
                .map_err(EcoChipError::from)
        };
        let first = ctx.floorplan(&config, &outlines, compute).unwrap();
        let second = ctx.floorplan(&config, &outlines, compute).unwrap();
        assert_eq!(first, second);
        assert_eq!(ctx.stats().floorplan_hits, 1);
        assert_eq!(ctx.stats().floorplan_misses, 1);
        // A different outline set misses.
        let other = vec![ChipletOutline::new("a", Area::from_mm2(101.0))];
        ctx.floorplan(&config, &other, || {
            SlicingFloorplanner::new(config)
                .floorplan(&other)
                .map_err(EcoChipError::from)
        })
        .unwrap();
        assert_eq!(ctx.stats().floorplan_misses, 2);
    }
}
