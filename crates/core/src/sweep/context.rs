//! Cross-point memoization for design-space sweeps.
//!
//! Most sweep axes leave whole stages of the estimation pipeline untouched:
//! a packaging sweep never changes the chiplet outlines, a volume or lifetime
//! sweep never changes manufacturing, a node sweep only perturbs the chiplets
//! it retargets. [`SweepContext`] caches the two expensive stage results —
//! floorplans (keyed by the full outline set) and per-die manufacturing CFP
//! (keyed by `(node, area)` plus the model parameters) — so points that share
//! a stage input share its result. The caches are guarded by mutexes, which
//! lets the [`SweepEngine`](crate::sweep::SweepEngine) share one context
//! across its worker threads.
//!
//! Because the cache stores the *exact* value the stage computed, memoized
//! runs are bit-for-bit identical to cold runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ecochip_floorplan::{ChipletOutline, Floorplan, FloorplanConfig};
use ecochip_techdb::{Area, TechNode};

use crate::error::EcoChipError;
use crate::manufacturing::{ChipletManufacturing, ManufacturingModel};

/// Cache key for a floorplan: the floorplanner configuration plus the ordered
/// outline set (names, exact area bits, exact aspect-ratio bits).
#[derive(Debug, PartialEq, Eq, Hash)]
struct FloorplanKey {
    spacing_bits: u64,
    margin_bits: u64,
    outlines: Vec<(String, u64, u64)>,
}

impl FloorplanKey {
    fn new(config: &FloorplanConfig, outlines: &[ChipletOutline]) -> Self {
        Self {
            spacing_bits: config.chiplet_spacing.mm().to_bits(),
            margin_bits: config.edge_margin.mm().to_bits(),
            outlines: outlines
                .iter()
                .map(|o| {
                    (
                        o.name.clone(),
                        o.area.mm2().to_bits(),
                        o.aspect_ratio.to_bits(),
                    )
                })
                .collect(),
        }
    }
}

/// Cache key for a per-die manufacturing result: `(node, area)` plus the
/// model fingerprint of [`ManufacturingModel::memo_bits`] (node parameters,
/// wafer, fab energy source, wastage accounting).
#[derive(Debug, PartialEq, Eq, Hash)]
struct ManufacturingKey {
    node: TechNode,
    area_bits: u64,
    model_bits: u64,
}

/// Hit/miss counters of a [`SweepContext`], for tests, benches and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Floorplans served from the cache.
    pub floorplan_hits: usize,
    /// Floorplans computed by the floorplanner.
    pub floorplan_misses: usize,
    /// Per-die manufacturing results served from the cache.
    pub manufacturing_hits: usize,
    /// Per-die manufacturing results computed by the model.
    pub manufacturing_misses: usize,
}

/// Shared memo for the cacheable estimator stages.
///
/// Create one per sweep with [`SweepContext::new`] and pass it to
/// [`EcoChip::estimate_with`](crate::EcoChip::estimate_with); the plain
/// [`EcoChip::estimate`](crate::EcoChip::estimate) entry point uses a
/// [`SweepContext::disabled`] context and caches nothing.
#[derive(Debug, Default)]
pub struct SweepContext {
    enabled: bool,
    floorplans: Mutex<HashMap<FloorplanKey, Floorplan>>,
    manufacturing: Mutex<HashMap<ManufacturingKey, ChipletManufacturing>>,
    floorplan_hits: AtomicUsize,
    floorplan_misses: AtomicUsize,
    manufacturing_hits: AtomicUsize,
    manufacturing_misses: AtomicUsize,
}

impl SweepContext {
    /// A context that memoizes floorplan and manufacturing stage results.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A context that caches nothing (every stage recomputes).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this context memoizes anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            floorplan_hits: self.floorplan_hits.load(Ordering::Relaxed),
            floorplan_misses: self.floorplan_misses.load(Ordering::Relaxed),
            manufacturing_hits: self.manufacturing_hits.load(Ordering::Relaxed),
            manufacturing_misses: self.manufacturing_misses.load(Ordering::Relaxed),
        }
    }

    /// Floorplan `outlines` under `config`, reusing a cached result when the
    /// same outline set was already planned.
    pub(crate) fn floorplan<F>(
        &self,
        config: &FloorplanConfig,
        outlines: &[ChipletOutline],
        compute: F,
    ) -> Result<Floorplan, EcoChipError>
    where
        F: FnOnce() -> Result<Floorplan, EcoChipError>,
    {
        if !self.enabled {
            return compute();
        }
        let key = FloorplanKey::new(config, outlines);
        if let Some(plan) = self.floorplans.lock().expect("floorplan cache").get(&key) {
            self.floorplan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        // Computed outside the lock so other workers make progress; a rare
        // duplicate computation of the same key is benign (same value).
        let plan = compute()?;
        self.floorplan_misses.fetch_add(1, Ordering::Relaxed);
        self.floorplans
            .lock()
            .expect("floorplan cache")
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// Manufacturing CFP of one die, reusing a cached result when the same
    /// `(node, area)` was already evaluated under an identical model.
    pub(crate) fn manufacturing(
        &self,
        model: &ManufacturingModel<'_>,
        area: Area,
        node: TechNode,
    ) -> Result<ChipletManufacturing, EcoChipError> {
        if !self.enabled {
            return model.chiplet_cfp(area, node);
        }
        let key = ManufacturingKey {
            node,
            area_bits: area.mm2().to_bits(),
            model_bits: model.memo_bits(node)?,
        };
        if let Some(result) = self
            .manufacturing
            .lock()
            .expect("manufacturing cache")
            .get(&key)
        {
            self.manufacturing_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*result);
        }
        let result = model.chiplet_cfp(area, node)?;
        self.manufacturing_misses.fetch_add(1, Ordering::Relaxed);
        self.manufacturing
            .lock()
            .expect("manufacturing cache")
            .insert(key, result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::{EnergySource, TechDb};
    use ecochip_yield::Wafer;

    #[test]
    fn disabled_context_never_caches() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::disabled();
        assert!(!ctx.is_enabled());
        for _ in 0..3 {
            ctx.manufacturing(&model, Area::from_mm2(100.0), TechNode::N7)
                .unwrap();
        }
        assert_eq!(ctx.stats(), SweepStats::default());
    }

    #[test]
    fn manufacturing_cache_hits_on_repeated_inputs() {
        let db = TechDb::default();
        let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(123.0);
        let first = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        let second = ctx.manufacturing(&model, area, TechNode::N7).unwrap();
        assert_eq!(first, second);
        let stats = ctx.stats();
        assert_eq!(stats.manufacturing_misses, 1);
        assert_eq!(stats.manufacturing_hits, 1);
        // A different node misses again.
        ctx.manufacturing(&model, area, TechNode::N14).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
    }

    #[test]
    fn manufacturing_cache_distinguishes_model_parameters() {
        let db = TechDb::default();
        let coal = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);
        let wind = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Wind);
        let no_wastage = coal.without_wastage();
        let ctx = SweepContext::new();
        let area = Area::from_mm2(100.0);
        let a = ctx.manufacturing(&coal, area, TechNode::N7).unwrap();
        let b = ctx.manufacturing(&wind, area, TechNode::N7).unwrap();
        let c = ctx.manufacturing(&no_wastage, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 3);
        assert!(b.total().kg() < a.total().kg());
        assert_eq!(c.wastage_cfp.kg(), 0.0);
    }

    #[test]
    fn manufacturing_cache_distinguishes_techdbs() {
        // A context shared across estimators with different technology
        // databases must never serve one database's result for the other.
        let default_db = TechDb::default();
        let tweaked = default_db
            .node(TechNode::N7)
            .unwrap()
            .to_builder()
            .defect_density(0.29)
            .build()
            .unwrap();
        let dirty = default_db.to_builder().insert(tweaked).build();
        let a = ManufacturingModel::new(&default_db, Wafer::standard_450mm(), EnergySource::Coal);
        let b = ManufacturingModel::new(&dirty, Wafer::standard_450mm(), EnergySource::Coal);
        let ctx = SweepContext::new();
        let area = Area::from_mm2(300.0);
        let from_a = ctx.manufacturing(&a, area, TechNode::N7).unwrap();
        let from_b = ctx.manufacturing(&b, area, TechNode::N7).unwrap();
        assert_eq!(ctx.stats().manufacturing_misses, 2);
        assert_eq!(ctx.stats().manufacturing_hits, 0);
        assert!(from_b.total().kg() > from_a.total().kg());
        assert_eq!(from_a, a.chiplet_cfp(area, TechNode::N7).unwrap());
        assert_eq!(from_b, b.chiplet_cfp(area, TechNode::N7).unwrap());
    }

    #[test]
    fn floorplan_cache_keys_on_outline_set() {
        use ecochip_floorplan::SlicingFloorplanner;
        let config = FloorplanConfig::default();
        let outlines = vec![
            ChipletOutline::new("a", Area::from_mm2(100.0)),
            ChipletOutline::new("b", Area::from_mm2(50.0)),
        ];
        let ctx = SweepContext::new();
        let compute = || {
            SlicingFloorplanner::new(config)
                .floorplan(&outlines)
                .map_err(EcoChipError::from)
        };
        let first = ctx.floorplan(&config, &outlines, compute).unwrap();
        let second = ctx.floorplan(&config, &outlines, compute).unwrap();
        assert_eq!(first, second);
        assert_eq!(ctx.stats().floorplan_hits, 1);
        assert_eq!(ctx.stats().floorplan_misses, 1);
        // A different outline set misses.
        let other = vec![ChipletOutline::new("a", Area::from_mm2(101.0))];
        ctx.floorplan(&config, &other, || {
            SlicingFloorplanner::new(config)
                .floorplan(&other)
                .map_err(EcoChipError::from)
        })
        .unwrap();
        assert_eq!(ctx.stats().floorplan_misses, 2);
    }
}
