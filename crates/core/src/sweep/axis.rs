//! Sweep axes, cartesian sweep specifications and shard selectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_design::VolumeScenario;
use ecochip_packaging::PackagingArchitecture;
use ecochip_techdb::{EnergySource, TechNode, TimeSpan};

use crate::disaggregation::{split_logic, three_chiplets, NodeTuple, SocBlocks};
use crate::error::EcoChipError;
use crate::system::System;

/// One axis of a design-space sweep: a list of variations applied to a base
/// [`System`] (or, for [`SweepAxis::FabEnergySources`], to the estimator).
///
/// Axes compose: a [`SweepSpec`] takes the cartesian product of all its axes,
/// applying them in order. [`SweepAxis::Systems`] replaces the entire system,
/// so it must come first when combined with other axes.
///
/// Axes serialize to JSON (externally tagged, e.g.
/// `{"Lifetimes": [26280.0]}`), so a whole [`SweepSpec`] can travel over a
/// wire — the `ecochip-serve` HTTP front end accepts structured axes in its
/// sweep requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Re-derive the paper's canonical 3-chiplet split of `blocks` for each
    /// `(digital, memory, analog)` technology tuple (the x-axis of Fig. 7).
    NodeTuples {
        /// Block-level transistor budget the split is derived from.
        blocks: SocBlocks,
        /// The technology tuples to sweep.
        tuples: Vec<NodeTuple>,
    },
    /// Swap the packaging architecture (Fig. 9).
    Packaging(Vec<PackagingArchitecture>),
    /// Swap the manufacturing / shipping volumes (the reuse axis of Fig. 12).
    Volumes(Vec<VolumeScenario>),
    /// Swap the deployment lifetime (the lifetime axis of Fig. 12).
    Lifetimes(Vec<TimeSpan>),
    /// Split the digital block of `blocks` into 1, 2, … chiplets while the
    /// memory and analog chiplets stay fixed (Figs. 9, 10, 15(b)).
    ChipletCounts {
        /// Block-level transistor budget the splits are derived from.
        blocks: SocBlocks,
        /// Node assignment of the digital / memory / analog chiplets.
        nodes: NodeTuple,
        /// Number of digital chiplets per point.
        counts: Vec<usize>,
    },
    /// Retarget the chiplet at `index` to each candidate node (one axis per
    /// chiplet yields the exhaustive node-assignment search of Section VI).
    ChipletNode {
        /// Index of the chiplet to retarget.
        index: usize,
        /// Candidate nodes for that chiplet.
        nodes: Vec<TechNode>,
    },
    /// Swap the energy source powering the chip-manufacturing fab
    /// (`Cmfg,src`); applied to the estimator configuration, not the system.
    FabEnergySources(Vec<EnergySource>),
    /// Replace the entire base system with each labeled variant. Must be the
    /// first axis when combined with others, since it overwrites every field
    /// the preceding axes may have set.
    Systems(Vec<(String, System)>),
}

impl SweepAxis {
    /// Convenience constructor for the reuse-ratio axis of Fig. 12:
    /// `NMi = ratio × NS` with `NS = system_volume`.
    pub fn reuse_ratios(system_volume: u64, ratios: &[f64]) -> Self {
        SweepAxis::Volumes(
            ratios
                .iter()
                .map(|&r| VolumeScenario::with_reuse(system_volume, r))
                .collect(),
        )
    }

    /// Convenience constructor for a lifetime axis given years.
    pub fn lifetimes_years(years: &[f64]) -> Self {
        SweepAxis::Lifetimes(years.iter().map(|&y| TimeSpan::from_years(y)).collect())
    }

    /// Number of points along this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::NodeTuples { tuples, .. } => tuples.len(),
            SweepAxis::Packaging(archs) => archs.len(),
            SweepAxis::Volumes(volumes) => volumes.len(),
            SweepAxis::Lifetimes(lifetimes) => lifetimes.len(),
            SweepAxis::ChipletCounts { counts, .. } => counts.len(),
            SweepAxis::ChipletNode { nodes, .. } => nodes.len(),
            SweepAxis::FabEnergySources(sources) => sources.len(),
            SweepAxis::Systems(systems) => systems.len(),
        }
    }

    /// Whether the axis has no points (its spec generates no cases).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply point `index` of this axis to `case`, appending its label.
    fn apply(&self, case: &mut SweepCase, index: usize) -> Result<(), EcoChipError> {
        match self {
            SweepAxis::NodeTuples { blocks, tuples } => {
                let tuple = tuples[index];
                case.system.chiplets = three_chiplets(blocks, tuple);
                case.system.name = format!("{} {}", blocks.name, tuple.label());
                case.labels.push(tuple.label());
            }
            SweepAxis::Packaging(archs) => {
                case.system.packaging = archs[index];
                case.labels.push(archs[index].short_name().to_owned());
            }
            SweepAxis::Volumes(volumes) => {
                case.system.volumes = volumes[index];
                case.labels
                    .push(format!("NMi/NS={}", volumes[index].reuse_ratio()));
            }
            SweepAxis::Lifetimes(lifetimes) => {
                case.system.lifetime = lifetimes[index];
                case.labels.push(format!("{}y", lifetimes[index].years()));
            }
            SweepAxis::ChipletCounts {
                blocks,
                nodes,
                counts,
            } => {
                let count = counts[index];
                case.system.chiplets = split_logic(blocks, count, *nodes)?;
                case.system.name = format!("{} ({count} digital chiplets)", blocks.name);
                case.labels.push(format!("Nc={count}"));
            }
            SweepAxis::ChipletNode {
                index: chiplet,
                nodes,
            } => {
                let node = nodes[index];
                let Some(slot) = case.system.chiplets.get_mut(*chiplet) else {
                    return Err(EcoChipError::InvalidSystem(format!(
                        "sweep axis retargets chiplet {chiplet} but the system has only {}",
                        case.system.chiplets.len()
                    )));
                };
                *slot = slot.retargeted(node);
                case.labels.push(node.nm().to_string());
            }
            SweepAxis::FabEnergySources(sources) => {
                case.fab_source = Some(sources[index]);
                case.labels.push(sources[index].to_string());
            }
            SweepAxis::Systems(systems) => {
                let (label, system) = &systems[index];
                case.system = system.clone();
                case.labels.push(label.clone());
            }
        }
        Ok(())
    }
}

/// One generated point of a sweep, before evaluation: the labeled system
/// variant plus any estimator-level overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCase {
    /// One label component per axis, in axis order.
    pub labels: Vec<String>,
    /// The system variant to evaluate.
    pub system: System,
    /// Fab energy source overriding the estimator's, when a
    /// [`SweepAxis::FabEnergySources`] axis is present.
    pub fab_source: Option<EnergySource>,
}

impl SweepCase {
    /// The joined point label (axis labels separated by `" / "`).
    pub fn label(&self) -> String {
        self.labels.join(" / ")
    }
}

/// A deterministic partition selector for distributing a sweep's index space
/// across processes or machines: shard `index` of `of` owns a contiguous,
/// balanced slice of the row-major case order.
///
/// Shards are contiguous (not strided), so concatenating the outputs of
/// shards `0/N, 1/N, …, (N-1)/N` reproduces the unsharded sweep exactly —
/// same points, same order, bit for bit.
///
/// ```
/// use ecochip_core::sweep::Shard;
///
/// let shards: Vec<Shard> = (0..3).map(|i| Shard::new(i, 3).unwrap()).collect();
/// // 10 cases split 4 + 3 + 3, covering every index exactly once.
/// assert_eq!(shards[0].range(10), 0..4);
/// assert_eq!(shards[1].range(10), 4..7);
/// assert_eq!(shards[2].range(10), 7..10);
/// // "1/3" parses to the same selector.
/// assert_eq!("1/3".parse::<Shard>().unwrap(), shards[1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    of: usize,
}

impl Shard {
    /// The trivial shard covering the whole index space.
    pub const FULL: Shard = Shard { index: 0, of: 1 };

    /// Shard `index` of `of` total shards.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::InvalidSystem`] when `of` is zero or `index`
    /// is not below `of`.
    pub fn new(index: usize, of: usize) -> Result<Self, EcoChipError> {
        if of == 0 || index >= of {
            return Err(EcoChipError::InvalidSystem(format!(
                "shard index must satisfy index < of, got {index}/{of}"
            )));
        }
        Ok(Self { index, of })
    }

    /// This shard's position within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards in the partition.
    pub fn of(&self) -> usize {
        self.of
    }

    /// Whether this is the trivial whole-space shard.
    pub fn is_full(&self) -> bool {
        self.of == 1
    }

    /// The contiguous index range this shard owns out of `total` cases.
    ///
    /// The partition is balanced: every shard gets `total / of` indices, and
    /// the first `total % of` shards get one extra. The union of all shard
    /// ranges is exactly `0..total` with no overlap.
    pub fn range(&self, total: usize) -> std::ops::Range<usize> {
        let quotient = total / self.of;
        let remainder = total % self.of;
        let start = self.index * quotient + self.index.min(remainder);
        let len = quotient + usize::from(self.index < remainder);
        start..(start + len)
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

impl std::str::FromStr for Shard {
    type Err = EcoChipError;

    /// Parse an `"I/N"` selector (as passed to the CLI's `--shard`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = || {
            EcoChipError::InvalidSystem(format!(
                "invalid shard selector {s:?} (expected I/N with I < N, e.g. 0/4)"
            ))
        };
        let (index, of) = s.split_once('/').ok_or_else(invalid)?;
        let index: usize = index.trim().parse().map_err(|_| invalid())?;
        let of: usize = of.trim().parse().map_err(|_| invalid())?;
        Shard::new(index, of).map_err(|_| invalid())
    }
}

/// A cartesian sweep specification: a base system plus any number of axes.
///
/// Cases are *index-addressable*: the spec never materializes its cartesian
/// product. [`SweepSpec::case_at`] decodes any flat index into its case in
/// `O(axes)` time, [`SweepSpec::iter`] streams cases lazily, and
/// [`SweepSpec::cases`] collects the full product when a `Vec` is wanted.
/// All three use the same deterministic row-major order — the first axis
/// varies slowest, the last axis fastest — exactly the order nested `for`
/// loops over the axes would produce.
///
/// Specs serialize to JSON (`{"base": …, "axes": […]}`), so a sweep
/// description can be shipped to a remote evaluation service and decoded
/// back into the *same* spec — same case order, same bit-for-bit results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    base: System,
    axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// Start a spec from a base system; axes are added with [`SweepSpec::axis`].
    pub fn new(base: System) -> Self {
        Self {
            base,
            axes: Vec::new(),
        }
    }

    /// Add an axis (builder style).
    #[must_use]
    pub fn axis(mut self, axis: SweepAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The base system variants are derived from.
    pub fn base(&self) -> &System {
        &self.base
    }

    /// The axes of the sweep.
    pub fn axes(&self) -> &[SweepAxis] {
        &self.axes
    }

    /// Total number of points (the product of the axis lengths; 1 when the
    /// spec has no axes — the base system itself), saturating at
    /// `usize::MAX` when the product overflows. Index-addressed entry points
    /// ([`SweepSpec::case_at`], [`SweepSpec::iter`], [`SweepSpec::cases`] and
    /// the engine) use the checked [`SweepSpec::try_len`] instead and reject
    /// overflowing products with a typed error.
    pub fn len(&self) -> usize {
        self.axes
            .iter()
            .map(SweepAxis::len)
            .fold(1usize, usize::saturating_mul)
    }

    /// Checked total number of points.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::SweepTooLarge`] when the cartesian product of
    /// the axis lengths overflows `usize`.
    pub fn try_len(&self) -> Result<usize, EcoChipError> {
        self.axes
            .iter()
            .map(SweepAxis::len)
            .try_fold(1usize, |product, len| {
                product.checked_mul(len).ok_or_else(|| {
                    EcoChipError::SweepTooLarge(format!(
                        "cartesian product of {} axes overflows the {}-bit index space",
                        self.axes.len(),
                        usize::BITS
                    ))
                })
            })
    }

    /// Whether the sweep generates no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode flat `index` of the row-major cartesian product into its case,
    /// in `O(axes)` time and without materializing any other point.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::SweepTooLarge`] when the product overflows,
    /// [`EcoChipError::InvalidSystem`] when `index` is out of range or an
    /// axis does not apply to the base system (e.g. a
    /// [`SweepAxis::ChipletNode`] index out of range).
    pub fn case_at(&self, index: usize) -> Result<SweepCase, EcoChipError> {
        let total = self.try_len()?;
        if index >= total {
            return Err(EcoChipError::InvalidSystem(format!(
                "sweep case index {index} out of range for a {total}-point sweep"
            )));
        }
        let mut case = SweepCase {
            labels: Vec::with_capacity(self.axes.len()),
            system: self.base.clone(),
            fab_source: None,
        };
        // Row-major decode: the last axis varies fastest, so its digit is the
        // final remainder. Peeling digits back-to-front keeps labels in axis
        // order without a second pass.
        let mut digits = vec![0usize; self.axes.len()];
        let mut remainder = index;
        for (slot, axis) in digits.iter_mut().zip(&self.axes).rev() {
            *slot = remainder % axis.len();
            remainder /= axis.len();
        }
        for (axis, &digit) in self.axes.iter().zip(&digits) {
            axis.apply(&mut case, digit)?;
        }
        Ok(case)
    }

    /// Lazily iterate every case in deterministic row-major order.
    pub fn iter(&self) -> SweepCaseIter<'_> {
        self.iter_shard(Shard::FULL)
    }

    /// Lazily iterate the cases a [`Shard`] owns, in row-major order.
    ///
    /// If the cartesian product overflows the index space, the iterator
    /// yields the [`EcoChipError::SweepTooLarge`] error as its only item.
    pub fn iter_shard(&self, shard: Shard) -> SweepCaseIter<'_> {
        match self.try_len() {
            Ok(total) => SweepCaseIter {
                spec: self,
                range: shard.range(total),
                overflow: None,
            },
            Err(error) => SweepCaseIter {
                spec: self,
                range: 0..0,
                overflow: Some(error),
            },
        }
    }

    /// Generate every case of the cartesian product, in deterministic
    /// row-major order (last axis fastest).
    ///
    /// This materializes the full product; for large spaces prefer
    /// [`SweepSpec::iter`] / [`SweepSpec::case_at`] or the engine's
    /// streaming entry points.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::SweepTooLarge`] for overflowing products and
    /// [`EcoChipError::InvalidSystem`] when an axis does not apply to the
    /// base system (e.g. a [`SweepAxis::ChipletNode`] index out of range).
    pub fn cases(&self) -> Result<Vec<SweepCase>, EcoChipError> {
        self.iter().collect()
    }
}

/// Lazy iterator over (a shard of) a [`SweepSpec`]'s cartesian product, in
/// row-major order. Created by [`SweepSpec::iter`] and
/// [`SweepSpec::iter_shard`]; holds `O(1)` state.
#[derive(Debug)]
pub struct SweepCaseIter<'a> {
    spec: &'a SweepSpec,
    range: std::ops::Range<usize>,
    overflow: Option<EcoChipError>,
}

impl Iterator for SweepCaseIter<'_> {
    type Item = Result<SweepCase, EcoChipError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(error) = self.overflow.take() {
            return Some(Err(error));
        }
        let index = self.range.next()?;
        Some(self.spec.case_at(index))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = self.range.len() + usize::from(self.overflow.is_some());
        (len, Some(len))
    }
}

impl ExactSizeIterator for SweepCaseIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{RdlFanoutConfig, SiliconBridgeConfig};
    use ecochip_techdb::DesignType;

    fn base() -> System {
        System::builder("base")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    fn packaging_axis() -> SweepAxis {
        SweepAxis::Packaging(vec![
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
        ])
    }

    #[test]
    fn cartesian_order_is_row_major() {
        let spec = SweepSpec::new(base())
            .axis(packaging_axis())
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]));
        assert_eq!(spec.len(), 6);
        let cases = spec.cases().unwrap();
        let labels: Vec<String> = cases.iter().map(SweepCase::label).collect();
        assert_eq!(
            labels,
            [
                "RDL / 1y",
                "RDL / 2y",
                "RDL / 3y",
                "EMIB / 1y",
                "EMIB / 2y",
                "EMIB / 3y"
            ]
        );
        assert!((cases[1].system.lifetime.years() - 2.0).abs() < 1e-12);
        assert_eq!(cases[4].system.packaging.short_name(), "EMIB");
    }

    #[test]
    fn empty_axis_empties_the_spec() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::Packaging(Vec::new()));
        assert!(spec.is_empty());
        assert!(spec.cases().unwrap().is_empty());
        let no_axes = SweepSpec::new(base());
        assert_eq!(no_axes.len(), 1);
        assert_eq!(no_axes.cases().unwrap().len(), 1);
        assert_eq!(no_axes.cases().unwrap()[0].label(), "");
    }

    #[test]
    fn chiplet_node_axis_retargets_and_validates() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 1,
            nodes: vec![TechNode::N10, TechNode::N14],
        });
        let cases = spec.cases().unwrap();
        assert_eq!(cases[0].system.chiplets[1].node, TechNode::N10);
        assert_eq!(cases[0].system.chiplets[0].node, TechNode::N7);
        assert_eq!(cases[0].labels, ["10"]);

        let bad = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 7,
            nodes: vec![TechNode::N10],
        });
        assert!(bad.cases().is_err());
    }

    #[test]
    fn node_tuple_axis_rebuilds_the_three_chiplet_split() {
        let blocks = SocBlocks::new("soc", 10.0e9, 4.0e9, 1.0e9);
        let tuple = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        let spec = SweepSpec::new(base()).axis(SweepAxis::NodeTuples {
            blocks,
            tuples: vec![tuple],
        });
        let cases = spec.cases().unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].system.chiplets.len(), 3);
        assert_eq!(cases[0].system.name, "soc (7, 14, 10)");
        assert_eq!(cases[0].labels, ["(7, 14, 10)"]);
    }

    #[test]
    fn energy_axis_sets_the_override_not_the_system() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::FabEnergySources(vec![
            EnergySource::Coal,
            EnergySource::Wind,
        ]));
        let cases = spec.cases().unwrap();
        assert_eq!(cases[0].fab_source, Some(EnergySource::Coal));
        assert_eq!(cases[1].fab_source, Some(EnergySource::Wind));
        assert_eq!(cases[0].system, cases[1].system);
    }

    #[test]
    fn systems_axis_replaces_the_base() {
        let other = base().with_lifetime(TimeSpan::from_years(9.0));
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Systems(vec![
                ("a".to_owned(), base()),
                ("b".to_owned(), other),
            ]))
            .axis(packaging_axis());
        let cases = spec.cases().unwrap();
        assert_eq!(cases.len(), 4);
        assert!((cases[3].system.lifetime.years() - 9.0).abs() < 1e-12);
        assert_eq!(cases[3].label(), "b / EMIB");
    }

    #[test]
    fn case_at_matches_materialized_cases() {
        let spec = SweepSpec::new(base())
            .axis(packaging_axis())
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]))
            .axis(SweepAxis::FabEnergySources(vec![
                EnergySource::Coal,
                EnergySource::Wind,
            ]));
        let cases = spec.cases().unwrap();
        assert_eq!(cases.len(), 12);
        for (i, case) in cases.iter().enumerate() {
            assert_eq!(&spec.case_at(i).unwrap(), case, "index {i}");
        }
        assert!(spec.case_at(12).is_err());
        let collected: Vec<SweepCase> = spec.iter().map(Result::unwrap).collect();
        assert_eq!(collected, cases);
        assert_eq!(spec.iter().len(), 12);
    }

    #[test]
    fn shard_ranges_partition_the_index_space() {
        for total in [0usize, 1, 2, 5, 10, 17] {
            for of in 1usize..=5 {
                let mut covered = Vec::new();
                for index in 0..of {
                    let shard = Shard::new(index, of).unwrap();
                    covered.extend(shard.range(total));
                }
                let expected: Vec<usize> = (0..total).collect();
                assert_eq!(covered, expected, "total={total} of={of}");
            }
        }
        // Balanced: shard sizes differ by at most one.
        let sizes: Vec<usize> = (0..4)
            .map(|i| Shard::new(i, 4).unwrap().range(10).len())
            .collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
    }

    #[test]
    fn shard_validation_and_parsing() {
        assert!(Shard::new(0, 0).is_err());
        assert!(Shard::new(2, 2).is_err());
        let shard = Shard::new(1, 3).unwrap();
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.of(), 3);
        assert!(!shard.is_full());
        assert!(Shard::FULL.is_full());
        assert_eq!(shard.to_string(), "1/3");
        assert_eq!("1/3".parse::<Shard>().unwrap(), shard);
        for bad in ["", "1", "3/1", "1/0", "a/b", "1/3/5"] {
            assert!(bad.parse::<Shard>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn sharded_iteration_concatenates_to_the_full_sweep() {
        let spec = SweepSpec::new(base())
            .axis(packaging_axis())
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        let full: Vec<SweepCase> = spec.iter().map(Result::unwrap).collect();
        let mut merged = Vec::new();
        for index in 0..3 {
            let shard = Shard::new(index, 3).unwrap();
            merged.extend(spec.iter_shard(shard).map(Result::unwrap));
        }
        assert_eq!(merged, full);
    }

    #[test]
    fn overflowing_products_are_rejected_not_panicked() {
        let huge = SweepAxis::lifetimes_years(&vec![1.0; 1 << 16]);
        let mut spec = SweepSpec::new(base());
        for _ in 0..5 {
            spec = spec.axis(huge.clone());
        }
        // 2^80 points: the saturating length caps, the checked length errors.
        assert_eq!(spec.len(), usize::MAX);
        assert!(matches!(
            spec.try_len(),
            Err(EcoChipError::SweepTooLarge(_))
        ));
        assert!(matches!(
            spec.case_at(0),
            Err(EcoChipError::SweepTooLarge(_))
        ));
        let mut iter = spec.iter();
        assert!(matches!(
            iter.next(),
            Some(Err(EcoChipError::SweepTooLarge(_)))
        ));
        assert!(iter.next().is_none());
        assert!(matches!(spec.cases(), Err(EcoChipError::SweepTooLarge(_))));
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let blocks = SocBlocks::new("soc", 10.0e9, 4.0e9, 1.0e9);
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Systems(vec![
                ("a".to_owned(), base()),
                (
                    "b".to_owned(),
                    base().with_lifetime(TimeSpan::from_years(9.0)),
                ),
            ]))
            .axis(packaging_axis())
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.5]))
            .axis(SweepAxis::FabEnergySources(vec![EnergySource::Wind]));
        let json = serde_json::to_string(&spec).unwrap();
        let restored: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, spec);
        // Decoded specs generate identical cases, in identical order.
        assert_eq!(restored.cases().unwrap(), spec.cases().unwrap());

        // Struct variants (the disaggregation-deriving axes) round-trip too.
        let derived = SweepSpec::new(base())
            .axis(SweepAxis::NodeTuples {
                blocks: blocks.clone(),
                tuples: vec![NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10)],
            })
            .axis(SweepAxis::ChipletNode {
                index: 0,
                nodes: vec![TechNode::N5, TechNode::N7],
            });
        let json = serde_json::to_string(&derived).unwrap();
        let restored: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, derived);
        let counts = SweepSpec::new(base()).axis(SweepAxis::ChipletCounts {
            blocks,
            nodes: NodeTuple::uniform(TechNode::N7),
            counts: vec![1, 2, 3],
        });
        let json = serde_json::to_string(&counts).unwrap();
        let restored: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.cases().unwrap(), counts.cases().unwrap());
    }

    #[test]
    fn reuse_ratio_axis_scales_chiplet_volume() {
        let axis = SweepAxis::reuse_ratios(100_000, &[1.0, 4.0]);
        let spec = SweepSpec::new(base()).axis(axis);
        let cases = spec.cases().unwrap();
        assert_eq!(cases[1].system.volumes.chiplet_volume, 400_000);
        assert_eq!(cases[1].labels, ["NMi/NS=4"]);
    }
}
