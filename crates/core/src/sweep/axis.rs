//! Sweep axes and cartesian sweep specifications.

use ecochip_design::VolumeScenario;
use ecochip_packaging::PackagingArchitecture;
use ecochip_techdb::{EnergySource, TechNode, TimeSpan};

use crate::disaggregation::{split_logic, three_chiplets, NodeTuple, SocBlocks};
use crate::error::EcoChipError;
use crate::system::System;

/// One axis of a design-space sweep: a list of variations applied to a base
/// [`System`] (or, for [`SweepAxis::FabEnergySources`], to the estimator).
///
/// Axes compose: a [`SweepSpec`] takes the cartesian product of all its axes,
/// applying them in order. [`SweepAxis::Systems`] replaces the entire system,
/// so it must come first when combined with other axes.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Re-derive the paper's canonical 3-chiplet split of `blocks` for each
    /// `(digital, memory, analog)` technology tuple (the x-axis of Fig. 7).
    NodeTuples {
        /// Block-level transistor budget the split is derived from.
        blocks: SocBlocks,
        /// The technology tuples to sweep.
        tuples: Vec<NodeTuple>,
    },
    /// Swap the packaging architecture (Fig. 9).
    Packaging(Vec<PackagingArchitecture>),
    /// Swap the manufacturing / shipping volumes (the reuse axis of Fig. 12).
    Volumes(Vec<VolumeScenario>),
    /// Swap the deployment lifetime (the lifetime axis of Fig. 12).
    Lifetimes(Vec<TimeSpan>),
    /// Split the digital block of `blocks` into 1, 2, … chiplets while the
    /// memory and analog chiplets stay fixed (Figs. 9, 10, 15(b)).
    ChipletCounts {
        /// Block-level transistor budget the splits are derived from.
        blocks: SocBlocks,
        /// Node assignment of the digital / memory / analog chiplets.
        nodes: NodeTuple,
        /// Number of digital chiplets per point.
        counts: Vec<usize>,
    },
    /// Retarget the chiplet at `index` to each candidate node (one axis per
    /// chiplet yields the exhaustive node-assignment search of Section VI).
    ChipletNode {
        /// Index of the chiplet to retarget.
        index: usize,
        /// Candidate nodes for that chiplet.
        nodes: Vec<TechNode>,
    },
    /// Swap the energy source powering the chip-manufacturing fab
    /// (`Cmfg,src`); applied to the estimator configuration, not the system.
    FabEnergySources(Vec<EnergySource>),
    /// Replace the entire base system with each labeled variant. Must be the
    /// first axis when combined with others, since it overwrites every field
    /// the preceding axes may have set.
    Systems(Vec<(String, System)>),
}

impl SweepAxis {
    /// Convenience constructor for the reuse-ratio axis of Fig. 12:
    /// `NMi = ratio × NS` with `NS = system_volume`.
    pub fn reuse_ratios(system_volume: u64, ratios: &[f64]) -> Self {
        SweepAxis::Volumes(
            ratios
                .iter()
                .map(|&r| VolumeScenario::with_reuse(system_volume, r))
                .collect(),
        )
    }

    /// Convenience constructor for a lifetime axis given years.
    pub fn lifetimes_years(years: &[f64]) -> Self {
        SweepAxis::Lifetimes(years.iter().map(|&y| TimeSpan::from_years(y)).collect())
    }

    /// Number of points along this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::NodeTuples { tuples, .. } => tuples.len(),
            SweepAxis::Packaging(archs) => archs.len(),
            SweepAxis::Volumes(volumes) => volumes.len(),
            SweepAxis::Lifetimes(lifetimes) => lifetimes.len(),
            SweepAxis::ChipletCounts { counts, .. } => counts.len(),
            SweepAxis::ChipletNode { nodes, .. } => nodes.len(),
            SweepAxis::FabEnergySources(sources) => sources.len(),
            SweepAxis::Systems(systems) => systems.len(),
        }
    }

    /// Whether the axis has no points (its spec generates no cases).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply point `index` of this axis to `case`, appending its label.
    fn apply(&self, case: &mut SweepCase, index: usize) -> Result<(), EcoChipError> {
        match self {
            SweepAxis::NodeTuples { blocks, tuples } => {
                let tuple = tuples[index];
                case.system.chiplets = three_chiplets(blocks, tuple);
                case.system.name = format!("{} {}", blocks.name, tuple.label());
                case.labels.push(tuple.label());
            }
            SweepAxis::Packaging(archs) => {
                case.system.packaging = archs[index];
                case.labels.push(archs[index].short_name().to_owned());
            }
            SweepAxis::Volumes(volumes) => {
                case.system.volumes = volumes[index];
                case.labels
                    .push(format!("NMi/NS={}", volumes[index].reuse_ratio()));
            }
            SweepAxis::Lifetimes(lifetimes) => {
                case.system.lifetime = lifetimes[index];
                case.labels.push(format!("{}y", lifetimes[index].years()));
            }
            SweepAxis::ChipletCounts {
                blocks,
                nodes,
                counts,
            } => {
                let count = counts[index];
                case.system.chiplets = split_logic(blocks, count, *nodes)?;
                case.system.name = format!("{} ({count} digital chiplets)", blocks.name);
                case.labels.push(format!("Nc={count}"));
            }
            SweepAxis::ChipletNode {
                index: chiplet,
                nodes,
            } => {
                let node = nodes[index];
                let Some(slot) = case.system.chiplets.get_mut(*chiplet) else {
                    return Err(EcoChipError::InvalidSystem(format!(
                        "sweep axis retargets chiplet {chiplet} but the system has only {}",
                        case.system.chiplets.len()
                    )));
                };
                *slot = slot.retargeted(node);
                case.labels.push(node.nm().to_string());
            }
            SweepAxis::FabEnergySources(sources) => {
                case.fab_source = Some(sources[index]);
                case.labels.push(sources[index].to_string());
            }
            SweepAxis::Systems(systems) => {
                let (label, system) = &systems[index];
                case.system = system.clone();
                case.labels.push(label.clone());
            }
        }
        Ok(())
    }
}

/// One generated point of a sweep, before evaluation: the labeled system
/// variant plus any estimator-level overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCase {
    /// One label component per axis, in axis order.
    pub labels: Vec<String>,
    /// The system variant to evaluate.
    pub system: System,
    /// Fab energy source overriding the estimator's, when a
    /// [`SweepAxis::FabEnergySources`] axis is present.
    pub fab_source: Option<EnergySource>,
}

impl SweepCase {
    /// The joined point label (axis labels separated by `" / "`).
    pub fn label(&self) -> String {
        self.labels.join(" / ")
    }
}

/// A cartesian sweep specification: a base system plus any number of axes.
///
/// [`SweepSpec::cases`] generates the full cartesian product in a
/// deterministic row-major order — the first axis varies slowest, the last
/// axis fastest — exactly the order nested `for` loops over the axes would
/// produce.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    base: System,
    axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// Start a spec from a base system; axes are added with [`SweepSpec::axis`].
    pub fn new(base: System) -> Self {
        Self {
            base,
            axes: Vec::new(),
        }
    }

    /// Add an axis (builder style).
    #[must_use]
    pub fn axis(mut self, axis: SweepAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The base system variants are derived from.
    pub fn base(&self) -> &System {
        &self.base
    }

    /// The axes of the sweep.
    pub fn axes(&self) -> &[SweepAxis] {
        &self.axes
    }

    /// Total number of points (the product of the axis lengths; 1 when the
    /// spec has no axes — the base system itself).
    pub fn len(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Whether the sweep generates no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate every case of the cartesian product, in deterministic
    /// row-major order (last axis fastest).
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::InvalidSystem`] when an axis does not apply to
    /// the base system (e.g. a [`SweepAxis::ChipletNode`] index out of range).
    pub fn cases(&self) -> Result<Vec<SweepCase>, EcoChipError> {
        let total = self.len();
        let mut cases = Vec::with_capacity(total);
        let mut indices = vec![0usize; self.axes.len()];
        for flat in 0..total {
            let mut remainder = flat;
            for (slot, axis) in indices.iter_mut().zip(&self.axes).rev() {
                *slot = remainder % axis.len();
                remainder /= axis.len();
            }
            let mut case = SweepCase {
                labels: Vec::with_capacity(self.axes.len()),
                system: self.base.clone(),
                fab_source: None,
            };
            for (axis, &index) in self.axes.iter().zip(&indices) {
                axis.apply(&mut case, index)?;
            }
            cases.push(case);
        }
        Ok(cases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{RdlFanoutConfig, SiliconBridgeConfig};
    use ecochip_techdb::DesignType;

    fn base() -> System {
        System::builder("base")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    fn packaging_axis() -> SweepAxis {
        SweepAxis::Packaging(vec![
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
        ])
    }

    #[test]
    fn cartesian_order_is_row_major() {
        let spec = SweepSpec::new(base())
            .axis(packaging_axis())
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]));
        assert_eq!(spec.len(), 6);
        let cases = spec.cases().unwrap();
        let labels: Vec<String> = cases.iter().map(SweepCase::label).collect();
        assert_eq!(
            labels,
            [
                "RDL / 1y",
                "RDL / 2y",
                "RDL / 3y",
                "EMIB / 1y",
                "EMIB / 2y",
                "EMIB / 3y"
            ]
        );
        assert!((cases[1].system.lifetime.years() - 2.0).abs() < 1e-12);
        assert_eq!(cases[4].system.packaging.short_name(), "EMIB");
    }

    #[test]
    fn empty_axis_empties_the_spec() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::Packaging(Vec::new()));
        assert!(spec.is_empty());
        assert!(spec.cases().unwrap().is_empty());
        let no_axes = SweepSpec::new(base());
        assert_eq!(no_axes.len(), 1);
        assert_eq!(no_axes.cases().unwrap().len(), 1);
        assert_eq!(no_axes.cases().unwrap()[0].label(), "");
    }

    #[test]
    fn chiplet_node_axis_retargets_and_validates() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 1,
            nodes: vec![TechNode::N10, TechNode::N14],
        });
        let cases = spec.cases().unwrap();
        assert_eq!(cases[0].system.chiplets[1].node, TechNode::N10);
        assert_eq!(cases[0].system.chiplets[0].node, TechNode::N7);
        assert_eq!(cases[0].labels, ["10"]);

        let bad = SweepSpec::new(base()).axis(SweepAxis::ChipletNode {
            index: 7,
            nodes: vec![TechNode::N10],
        });
        assert!(bad.cases().is_err());
    }

    #[test]
    fn node_tuple_axis_rebuilds_the_three_chiplet_split() {
        let blocks = SocBlocks::new("soc", 10.0e9, 4.0e9, 1.0e9);
        let tuple = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        let spec = SweepSpec::new(base()).axis(SweepAxis::NodeTuples {
            blocks,
            tuples: vec![tuple],
        });
        let cases = spec.cases().unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].system.chiplets.len(), 3);
        assert_eq!(cases[0].system.name, "soc (7, 14, 10)");
        assert_eq!(cases[0].labels, ["(7, 14, 10)"]);
    }

    #[test]
    fn energy_axis_sets_the_override_not_the_system() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::FabEnergySources(vec![
            EnergySource::Coal,
            EnergySource::Wind,
        ]));
        let cases = spec.cases().unwrap();
        assert_eq!(cases[0].fab_source, Some(EnergySource::Coal));
        assert_eq!(cases[1].fab_source, Some(EnergySource::Wind));
        assert_eq!(cases[0].system, cases[1].system);
    }

    #[test]
    fn systems_axis_replaces_the_base() {
        let other = base().with_lifetime(TimeSpan::from_years(9.0));
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Systems(vec![
                ("a".to_owned(), base()),
                ("b".to_owned(), other),
            ]))
            .axis(packaging_axis());
        let cases = spec.cases().unwrap();
        assert_eq!(cases.len(), 4);
        assert!((cases[3].system.lifetime.years() - 9.0).abs() < 1e-12);
        assert_eq!(cases[3].label(), "b / EMIB");
    }

    #[test]
    fn reuse_ratio_axis_scales_chiplet_volume() {
        let axis = SweepAxis::reuse_ratios(100_000, &[1.0, 4.0]);
        let spec = SweepSpec::new(base()).axis(axis);
        let cases = spec.cases().unwrap();
        assert_eq!(cases[1].system.volumes.chiplet_volume, 400_000);
        assert_eq!(cases[1].labels, ["NMi/NS=4"]);
    }
}
