//! SoC-to-chiplet disaggregation helpers.
//!
//! The paper's evaluation repeatedly derives chiplet-based variants from a
//! monolithic SoC description: a 3-chiplet split by block type (digital /
//! memory / analog), further splits of the digital block into `Nc` chiplets
//! (Figs. 9, 10, 15(b)), and technology-node retargeting per chiplet. This
//! module provides those transformations on top of a compact
//! [`SocBlocks`] description.

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, DesignType, TechDb, TechDbError, TechNode};

use crate::error::EcoChipError;
use crate::system::{Chiplet, ChipletSize};

/// Block-level transistor budget of an SoC, the granularity at which the
/// paper describes its test cases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocBlocks {
    /// Name of the SoC.
    pub name: String,
    /// Digital-logic transistors.
    pub logic_transistors: f64,
    /// SRAM / memory transistors.
    pub memory_transistors: f64,
    /// Analog / IO transistors.
    pub analog_transistors: f64,
}

impl SocBlocks {
    /// Create a block description.
    pub fn new(
        name: impl Into<String>,
        logic_transistors: f64,
        memory_transistors: f64,
        analog_transistors: f64,
    ) -> Self {
        Self {
            name: name.into(),
            logic_transistors,
            memory_transistors,
            analog_transistors,
        }
    }

    /// Total transistor count.
    pub fn total_transistors(&self) -> f64 {
        self.logic_transistors + self.memory_transistors + self.analog_transistors
    }

    /// The die area of the monolithic SoC at `node` (all blocks on one die).
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn monolithic_area(&self, db: &TechDb, node: TechNode) -> Result<Area, TechDbError> {
        let logic = db.area_for_transistors(node, DesignType::Logic, self.logic_transistors)?;
        let memory = db.area_for_transistors(node, DesignType::Memory, self.memory_transistors)?;
        let analog = db.area_for_transistors(node, DesignType::Analog, self.analog_transistors)?;
        Ok(logic + memory + analog)
    }
}

/// The technology node assigned to each block type in a 3-chiplet split,
/// written `(digital, memory, analog)` like the paper's three-tuple notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeTuple {
    /// Node of the digital-logic chiplet.
    pub logic: TechNode,
    /// Node of the memory chiplet.
    pub memory: TechNode,
    /// Node of the analog / IO chiplet.
    pub analog: TechNode,
}

impl NodeTuple {
    /// Create a `(digital, memory, analog)` node tuple.
    pub fn new(logic: TechNode, memory: TechNode, analog: TechNode) -> Self {
        Self {
            logic,
            memory,
            analog,
        }
    }

    /// All three blocks in the same node.
    pub fn uniform(node: TechNode) -> Self {
        Self::new(node, node, node)
    }

    /// The paper's label, e.g. `(7, 14, 10)`.
    pub fn label(&self) -> String {
        format!(
            "({}, {}, {})",
            self.logic.nm(),
            self.memory.nm(),
            self.analog.nm()
        )
    }
}

/// The single-die (monolithic) representation of the SoC at `node`.
///
/// The result is one chiplet whose area is the sum of the logic, memory and
/// analog block areas at that node. Because a single chiplet carries a single
/// design type, the monolithic die is tagged [`DesignType::Logic`] and sized
/// by area; retarget it by rebuilding from the [`SocBlocks`] rather than with
/// [`Chiplet::retargeted`].
///
/// # Errors
///
/// Returns [`EcoChipError::TechDb`] for unknown nodes.
pub fn monolithic_chiplet(
    blocks: &SocBlocks,
    db: &TechDb,
    node: TechNode,
) -> Result<Chiplet, EcoChipError> {
    let area = blocks.monolithic_area(db, node)?;
    Ok(Chiplet::new(
        format!("{}-monolith", blocks.name),
        DesignType::Logic,
        node,
        ChipletSize::AreaAtNode { area, node },
    ))
}

/// The paper's canonical 3-chiplet split: one digital, one memory and one
/// analog chiplet, each in its own technology node.
pub fn three_chiplets(blocks: &SocBlocks, nodes: NodeTuple) -> Vec<Chiplet> {
    vec![
        Chiplet::new(
            format!("{}-digital", blocks.name),
            DesignType::Logic,
            nodes.logic,
            ChipletSize::Transistors(blocks.logic_transistors),
        ),
        Chiplet::new(
            format!("{}-memory", blocks.name),
            DesignType::Memory,
            nodes.memory,
            ChipletSize::Transistors(blocks.memory_transistors),
        ),
        Chiplet::new(
            format!("{}-analog", blocks.name),
            DesignType::Analog,
            nodes.analog,
            ChipletSize::Transistors(blocks.analog_transistors),
        ),
    ]
}

/// Split the digital block into `logic_chiplets` equal chiplets (plus the
/// memory and analog chiplets), the sweep of Figs. 9, 10 and 15(b).
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] when `logic_chiplets` is zero.
pub fn split_logic(
    blocks: &SocBlocks,
    logic_chiplets: usize,
    nodes: NodeTuple,
) -> Result<Vec<Chiplet>, EcoChipError> {
    if logic_chiplets == 0 {
        return Err(EcoChipError::InvalidSystem(
            "the digital block must be split into at least one chiplet".to_owned(),
        ));
    }
    let per_chiplet = blocks.logic_transistors / logic_chiplets as f64;
    let mut chiplets = Vec::with_capacity(logic_chiplets + 2);
    for i in 0..logic_chiplets {
        chiplets.push(Chiplet::new(
            format!("{}-digital{}", blocks.name, i),
            DesignType::Logic,
            nodes.logic,
            ChipletSize::Transistors(per_chiplet),
        ));
    }
    chiplets.push(Chiplet::new(
        format!("{}-memory", blocks.name),
        DesignType::Memory,
        nodes.memory,
        ChipletSize::Transistors(blocks.memory_transistors),
    ));
    chiplets.push(Chiplet::new(
        format!("{}-analog", blocks.name),
        DesignType::Analog,
        nodes.analog,
        ChipletSize::Transistors(blocks.analog_transistors),
    ));
    Ok(chiplets)
}

/// Split a single block of `total_transistors` into `n` equal chiplets of the
/// given design type and node (used for the digital-block packaging sweep of
/// Fig. 9, which has no memory / analog chiplets).
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] when `n` is zero.
pub fn split_block(
    name: &str,
    design_type: DesignType,
    node: TechNode,
    total_transistors: f64,
    n: usize,
) -> Result<Vec<Chiplet>, EcoChipError> {
    if n == 0 {
        return Err(EcoChipError::InvalidSystem(
            "cannot split a block into zero chiplets".to_owned(),
        ));
    }
    let per_chiplet = total_transistors / n as f64;
    Ok((0..n)
        .map(|i| {
            Chiplet::new(
                format!("{name}{i}"),
                design_type,
                node,
                ChipletSize::Transistors(per_chiplet),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> SocBlocks {
        // Roughly GA102-shaped: 28.3 B transistors total.
        SocBlocks::new("ga102", 20.0e9, 6.0e9, 2.3e9)
    }

    #[test]
    fn total_and_monolithic_area() {
        let db = TechDb::default();
        let b = blocks();
        assert!((b.total_transistors() - 28.3e9).abs() < 1.0);
        let area = b.monolithic_area(&db, TechNode::N8).unwrap();
        // Of the order of several hundred mm² — the GA102 is 628 mm².
        assert!(area.mm2() > 300.0 && area.mm2() < 900.0, "{area}");
    }

    #[test]
    fn monolithic_chiplet_preserves_area() {
        let db = TechDb::default();
        let b = blocks();
        let mono = monolithic_chiplet(&b, &db, TechNode::N8).unwrap();
        assert!(
            (mono.area(&db).unwrap().mm2() - b.monolithic_area(&db, TechNode::N8).unwrap().mm2())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn three_chiplet_split_preserves_transistors() {
        let b = blocks();
        let nodes = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        let chiplets = three_chiplets(&b, nodes);
        assert_eq!(chiplets.len(), 3);
        let total: f64 = chiplets
            .iter()
            .map(|c| match c.size {
                ChipletSize::Transistors(n) => n,
                _ => 0.0,
            })
            .sum();
        assert!((total - b.total_transistors()).abs() < 1.0);
        assert_eq!(chiplets[0].design_type, DesignType::Logic);
        assert_eq!(chiplets[1].design_type, DesignType::Memory);
        assert_eq!(chiplets[2].design_type, DesignType::Analog);
        assert_eq!(chiplets[0].node, TechNode::N7);
        assert_eq!(chiplets[1].node, TechNode::N14);
        assert_eq!(chiplets[2].node, TechNode::N10);
    }

    #[test]
    fn node_tuple_labels() {
        let t = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        assert_eq!(t.label(), "(7, 14, 10)");
        assert_eq!(NodeTuple::uniform(TechNode::N7).label(), "(7, 7, 7)");
    }

    #[test]
    fn split_logic_conserves_transistors() {
        let b = blocks();
        let nodes = NodeTuple::new(TechNode::N7, TechNode::N10, TechNode::N14);
        for nc in 1..6 {
            let chiplets = split_logic(&b, nc, nodes).unwrap();
            assert_eq!(chiplets.len(), nc + 2);
            let total: f64 = chiplets
                .iter()
                .map(|c| match c.size {
                    ChipletSize::Transistors(n) => n,
                    _ => 0.0,
                })
                .sum();
            assert!((total - b.total_transistors()).abs() < 1.0);
        }
        assert!(split_logic(&b, 0, nodes).is_err());
    }

    #[test]
    fn split_block_is_uniform() {
        let chiplets = split_block("digital", DesignType::Logic, TechNode::N7, 45.0e9, 4).unwrap();
        assert_eq!(chiplets.len(), 4);
        for c in &chiplets {
            match c.size {
                ChipletSize::Transistors(n) => assert!((n - 45.0e9 / 4.0).abs() < 1.0),
                _ => panic!("expected transistor sizing"),
            }
        }
        assert!(split_block("x", DesignType::Logic, TechNode::N7, 1.0e9, 0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let b = blocks();
        let json = serde_json::to_string(&b).unwrap();
        let back: SocBlocks = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        let t = NodeTuple::uniform(TechNode::N7);
        let json = serde_json::to_string(&t).unwrap();
        let back: NodeTuple = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
