//! Error type for the core estimator.

use std::error::Error;
use std::fmt;

use ecochip_cost::CostError;
use ecochip_floorplan::FloorplanError;
use ecochip_packaging::PackagingError;
use ecochip_techdb::TechDbError;
use ecochip_yield::YieldError;

/// Errors produced by the ECO-CHIP estimator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcoChipError {
    /// The system description was empty or inconsistent.
    InvalidSystem(String),
    /// Technology-database lookup failed.
    TechDb(TechDbError),
    /// Yield / wafer computation failed.
    Yield(YieldError),
    /// Floorplanning failed.
    Floorplan(FloorplanError),
    /// Packaging CFP estimation failed.
    Packaging(PackagingError),
    /// Dollar-cost estimation failed.
    Cost(CostError),
    /// A sweep's cartesian product overflows the addressable index space.
    SweepTooLarge(String),
    /// A memo file could not be read or written.
    Io(String),
    /// A memo file was malformed or has an incompatible format version.
    MemoFormat(String),
    /// A memo file was produced by a different estimator configuration and
    /// must not be reused.
    StaleMemo(String),
}

impl fmt::Display for EcoChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoChipError::InvalidSystem(msg) => write!(f, "invalid system description: {msg}"),
            EcoChipError::TechDb(e) => write!(f, "technology database error: {e}"),
            EcoChipError::Yield(e) => write!(f, "yield model error: {e}"),
            EcoChipError::Floorplan(e) => write!(f, "floorplan error: {e}"),
            EcoChipError::Packaging(e) => write!(f, "packaging model error: {e}"),
            EcoChipError::Cost(e) => write!(f, "cost model error: {e}"),
            EcoChipError::SweepTooLarge(msg) => write!(f, "sweep too large: {msg}"),
            EcoChipError::Io(msg) => write!(f, "i/o error: {msg}"),
            EcoChipError::MemoFormat(msg) => write!(f, "memo format error: {msg}"),
            EcoChipError::StaleMemo(msg) => write!(f, "stale memo rejected: {msg}"),
        }
    }
}

impl Error for EcoChipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcoChipError::TechDb(e) => Some(e),
            EcoChipError::Yield(e) => Some(e),
            EcoChipError::Floorplan(e) => Some(e),
            EcoChipError::Packaging(e) => Some(e),
            EcoChipError::Cost(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechDbError> for EcoChipError {
    fn from(value: TechDbError) -> Self {
        EcoChipError::TechDb(value)
    }
}

impl From<YieldError> for EcoChipError {
    fn from(value: YieldError) -> Self {
        EcoChipError::Yield(value)
    }
}

impl From<FloorplanError> for EcoChipError {
    fn from(value: FloorplanError) -> Self {
        EcoChipError::Floorplan(value)
    }
}

impl From<PackagingError> for EcoChipError {
    fn from(value: PackagingError) -> Self {
        EcoChipError::Packaging(value)
    }
}

impl From<CostError> for EcoChipError {
    fn from(value: CostError) -> Self {
        EcoChipError::Cost(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_display_and_sources() {
        let cases: Vec<EcoChipError> = vec![
            EcoChipError::InvalidSystem("no chiplets".into()),
            TechDbError::MissingNode(7).into(),
            YieldError::InvalidParameter {
                name: "alpha",
                value: 0.0,
                expected: "> 0",
            }
            .into(),
            FloorplanError::NoChiplets.into(),
            PackagingError::InvalidStack("too small".into()).into(),
            CostError::InvalidInput {
                name: "volume",
                value: 0.0,
            }
            .into(),
            EcoChipError::SweepTooLarge("overflow".into()),
            EcoChipError::Io("missing file".into()),
            EcoChipError::MemoFormat("bad version".into()),
            EcoChipError::StaleMemo("fingerprint mismatch".into()),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(Error::source(&cases[0]).is_none());
        assert!(Error::source(&cases[1]).is_some());
        assert!(Error::source(&cases[2]).is_some());
        assert!(Error::source(&cases[3]).is_some());
        assert!(Error::source(&cases[4]).is_some());
        assert!(Error::source(&cases[5]).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcoChipError>();
    }
}
