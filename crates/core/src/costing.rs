//! Integration with the dollar-cost model (Section VI(2), Fig. 15).
//!
//! ECO-CHIP shares the same architectural description, areas and yield
//! assumptions with the cost model, so a [`System`] can be priced directly.

use ecochip_cost::{CostBreakdown, CostModel, PackageCostClass};
use ecochip_packaging::{PackageEstimator, PackagingArchitecture};
use ecochip_yield::Wafer;

use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::system::System;

/// Estimate the per-unit dollar cost of a system using the same technology
/// database, areas and packaging description as the carbon estimator.
///
/// # Errors
///
/// Returns [`EcoChipError`] when areas cannot be derived, the dies do not fit
/// on a production wafer, or the packaging configuration is invalid.
pub fn system_cost(estimator: &EcoChip, system: &System) -> Result<CostBreakdown, EcoChipError> {
    let db = &estimator.config().techdb;
    let cost_model = CostModel::new(db).with_wafer(Wafer::standard_300mm());

    let mut dies = Vec::with_capacity(system.chiplets.len());
    for chiplet in &system.chiplets {
        dies.push((chiplet.area(db)?, chiplet.node));
    }

    let package_class = if system.is_monolithic() {
        PackageCostClass::Monolithic
    } else {
        let floorplan = estimator.floorplan(system)?;
        let package = PackageEstimator::new(db, estimator.config().packaging_source)
            .package_cfp(&system.packaging, &floorplan)?;
        match system.packaging {
            PackagingArchitecture::RdlFanout(cfg) => PackageCostClass::RdlFanout {
                layers: cfg.layers,
                area: package.package_area,
            },
            PackagingArchitecture::SiliconBridge(_) => PackageCostClass::SiliconBridge {
                bridges: package.bridge_count,
                area: package.package_area,
            },
            PackagingArchitecture::PassiveInterposer(cfg) => PackageCostClass::PassiveInterposer {
                area: package.package_area,
                node: cfg.tech,
            },
            PackagingArchitecture::ActiveInterposer(cfg) => PackageCostClass::ActiveInterposer {
                area: package.package_area,
                node: cfg.tech,
            },
            PackagingArchitecture::ThreeD(_) => PackageCostClass::ThreeD {
                bonds: package.bond_count,
            },
        }
    };

    cost_model
        .system_cost(&dies, &package_class, system.volumes.system_volume)
        .map_err(EcoChipError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disaggregation::{three_chiplets, NodeTuple, SocBlocks};
    use crate::system::{Chiplet, ChipletSize, System};
    use ecochip_packaging::{InterposerConfig, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig};
    use ecochip_techdb::{DesignType, TechNode};

    fn blocks() -> SocBlocks {
        SocBlocks::new("ga102", 20.0e9, 6.0e9, 2.3e9)
    }

    fn chiplet_system(packaging: PackagingArchitecture, tuple: NodeTuple) -> System {
        System::builder("cost-test")
            .chiplets(three_chiplets(&blocks(), tuple))
            .packaging(packaging)
            .build()
            .unwrap()
    }

    #[test]
    fn monolithic_versus_chiplet_cost() {
        let estimator = EcoChip::default();
        let mono = System::builder("mono")
            .chiplet(Chiplet::new(
                "die",
                DesignType::Logic,
                TechNode::N7,
                ChipletSize::Transistors(28.3e9),
            ))
            .build()
            .unwrap();
        let split = chiplet_system(
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
        );
        let mono_cost = system_cost(&estimator, &mono).unwrap();
        let split_cost = system_cost(&estimator, &split).unwrap();
        // Disaggregation lowers die cost (yield) but adds package / assembly.
        assert!(split_cost.dies_total().dollars() < mono_cost.dies_total().dollars());
        assert!(split_cost.assembly_cost.dollars() > mono_cost.assembly_cost.dollars());
        assert!(split_cost.total().dollars() > 0.0);
    }

    #[test]
    fn older_node_configs_cost_less() {
        // Fig. 15(a): older-node chiplets are cheaper.
        let estimator = EcoChip::default();
        let advanced = chiplet_system(
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            NodeTuple::uniform(TechNode::N7),
        );
        let mixed = chiplet_system(
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
        );
        let a = system_cost(&estimator, &advanced).unwrap();
        let m = system_cost(&estimator, &mixed).unwrap();
        assert!(m.total().dollars() < a.total().dollars());
    }

    #[test]
    fn every_packaging_class_is_priceable() {
        let estimator = EcoChip::default();
        let tuple = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        for packaging in [
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ] {
            let system = chiplet_system(packaging, tuple);
            let cost = system_cost(&estimator, &system).unwrap();
            assert!(
                cost.total().dollars() > 0.0 && cost.total().dollars().is_finite(),
                "{packaging:?}"
            );
        }
    }
}
