//! Architectural description of a (possibly heterogeneous) system.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_design::VolumeScenario;
use ecochip_packaging::PackagingArchitecture;
use ecochip_power::UsageProfile;
use ecochip_techdb::{Area, DesignType, TechDb, TechDbError, TechNode, TimeSpan};

use crate::error::EcoChipError;

/// How a chiplet's size is specified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "value", rename_all = "snake_case")]
pub enum ChipletSize {
    /// A transistor budget; the area follows from the implementation node's
    /// transistor density (the paper's primary input).
    Transistors(f64),
    /// A known silicon area at a reference node (e.g. from a die-shot
    /// analysis); the area is rescaled when the chiplet moves to another node.
    AreaAtNode {
        /// The measured area.
        area: Area,
        /// The node at which the area was measured.
        node: TechNode,
    },
}

/// One chiplet (or the single die of a monolithic SoC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chiplet {
    /// Name of the chiplet (used in reports).
    pub name: String,
    /// Functional class — controls the area-scaling model.
    pub design_type: DesignType,
    /// Technology node the chiplet is implemented in.
    pub node: TechNode,
    /// Size specification.
    pub size: ChipletSize,
}

impl Chiplet {
    /// Create a chiplet.
    pub fn new(
        name: impl Into<String>,
        design_type: DesignType,
        node: TechNode,
        size: ChipletSize,
    ) -> Self {
        Self {
            name: name.into(),
            design_type,
            node,
            size,
        }
    }

    /// The chiplet's silicon area in its implementation node.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] when a required node is missing
    /// from the database.
    pub fn area(&self, db: &TechDb) -> Result<Area, TechDbError> {
        match self.size {
            ChipletSize::Transistors(n) => db.area_for_transistors(self.node, self.design_type, n),
            ChipletSize::AreaAtNode { area, node } => {
                db.scale_area(self.design_type, area, node, self.node)
            }
        }
    }

    /// The chiplet's transistor count.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] when a required node is missing
    /// from the database.
    pub fn transistors(&self, db: &TechDb) -> Result<f64, TechDbError> {
        match self.size {
            ChipletSize::Transistors(n) => Ok(n),
            ChipletSize::AreaAtNode { area, node } => {
                Ok(db.node(node)?.transistors_for_area(self.design_type, area))
            }
        }
    }

    /// The same chiplet re-targeted to a different technology node (its size
    /// specification is preserved, so the area rescales automatically).
    pub fn retargeted(&self, node: TechNode) -> Chiplet {
        Chiplet {
            node,
            ..self.clone()
        }
    }
}

impl fmt::Display for Chiplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} @ {})", self.name, self.design_type, self.node)
    }
}

/// A complete system description: the input to [`crate::EcoChip::estimate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    /// Name of the system (used in reports).
    pub name: String,
    /// The chiplets composing the system (a single entry models a monolithic
    /// SoC).
    pub chiplets: Vec<Chiplet>,
    /// Packaging architecture integrating the chiplets.
    pub packaging: PackagingArchitecture,
    /// Usage profile for operational CFP.
    pub usage: UsageProfile,
    /// Deployment lifetime.
    pub lifetime: TimeSpan,
    /// Manufacturing / shipping volumes for design-CFP amortisation.
    pub volumes: VolumeScenario,
}

impl System {
    /// Start building a system.
    pub fn builder(name: impl Into<String>) -> SystemBuilder {
        SystemBuilder::new(name)
    }

    /// Whether the system is a single monolithic die.
    pub fn is_monolithic(&self) -> bool {
        self.chiplets.len() == 1
    }

    /// Number of chiplets.
    pub fn chiplet_count(&self) -> usize {
        self.chiplets.len()
    }

    /// Total silicon area of all chiplets (without communication overheads).
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] when a required node is missing.
    pub fn silicon_area(&self, db: &TechDb) -> Result<Area, TechDbError> {
        let mut total = Area::ZERO;
        for c in &self.chiplets {
            total += c.area(db)?;
        }
        Ok(total)
    }

    /// Total transistor count across all chiplets.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] when a required node is missing.
    pub fn total_transistors(&self, db: &TechDb) -> Result<f64, TechDbError> {
        let mut total = 0.0;
        for c in &self.chiplets {
            total += c.transistors(db)?;
        }
        Ok(total)
    }

    /// The implementation node of each chiplet, in order.
    pub fn chiplet_nodes(&self) -> Vec<TechNode> {
        self.chiplets.iter().map(|c| c.node).collect()
    }

    /// A copy of the system with the chiplet at `index` re-targeted to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::InvalidSystem`] when `index` is out of range.
    pub fn with_chiplet_node(&self, index: usize, node: TechNode) -> Result<System, EcoChipError> {
        if index >= self.chiplets.len() {
            return Err(EcoChipError::InvalidSystem(format!(
                "chiplet index {index} out of range (system has {} chiplets)",
                self.chiplets.len()
            )));
        }
        let mut copy = self.clone();
        copy.chiplets[index] = copy.chiplets[index].retargeted(node);
        Ok(copy)
    }

    /// A copy of the system with a different packaging architecture.
    pub fn with_packaging(&self, packaging: PackagingArchitecture) -> System {
        System {
            packaging,
            ..self.clone()
        }
    }

    /// A copy of the system with different volumes.
    pub fn with_volumes(&self, volumes: VolumeScenario) -> System {
        System {
            volumes,
            ..self.clone()
        }
    }

    /// A copy of the system with a different lifetime.
    pub fn with_lifetime(&self, lifetime: TimeSpan) -> System {
        System {
            lifetime,
            ..self.clone()
        }
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} chiplet{}, {})",
            self.name,
            self.chiplets.len(),
            if self.chiplets.len() == 1 { "" } else { "s" },
            self.packaging
        )
    }
}

/// Builder for [`System`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    name: String,
    chiplets: Vec<Chiplet>,
    packaging: Option<PackagingArchitecture>,
    usage: UsageProfile,
    lifetime: TimeSpan,
    volumes: VolumeScenario,
}

impl SystemBuilder {
    /// Create a builder for a system with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            chiplets: Vec::new(),
            packaging: None,
            usage: UsageProfile::default(),
            lifetime: TimeSpan::from_years(2.0),
            volumes: VolumeScenario::default(),
        }
    }

    /// Add a chiplet.
    pub fn chiplet(mut self, chiplet: Chiplet) -> Self {
        self.chiplets.push(chiplet);
        self
    }

    /// Add several chiplets.
    pub fn chiplets<I: IntoIterator<Item = Chiplet>>(mut self, chiplets: I) -> Self {
        self.chiplets.extend(chiplets);
        self
    }

    /// Set the packaging architecture (required for multi-chiplet systems;
    /// defaults to RDL fanout when omitted).
    pub fn packaging(mut self, packaging: PackagingArchitecture) -> Self {
        self.packaging = Some(packaging);
        self
    }

    /// Set the usage profile (defaults to a mid-range dynamic profile).
    pub fn usage(mut self, usage: UsageProfile) -> Self {
        self.usage = usage;
        self
    }

    /// Set the deployment lifetime (defaults to 2 years).
    pub fn lifetime(mut self, lifetime: TimeSpan) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Set the manufacturing / shipping volumes (default `NMi = NS = 100 000`).
    pub fn volumes(mut self, volumes: VolumeScenario) -> Self {
        self.volumes = volumes;
        self
    }

    /// Build the system.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::InvalidSystem`] when no chiplets were added,
    /// the lifetime is non-positive, or the packaging configuration fails
    /// validation.
    pub fn build(self) -> Result<System, EcoChipError> {
        if self.chiplets.is_empty() {
            return Err(EcoChipError::InvalidSystem(
                "a system needs at least one chiplet".to_owned(),
            ));
        }
        if !self.lifetime.hours().is_finite() || self.lifetime.hours() <= 0.0 {
            return Err(EcoChipError::InvalidSystem(format!(
                "lifetime must be positive, got {} hours",
                self.lifetime.hours()
            )));
        }
        let packaging = self.packaging.unwrap_or(PackagingArchitecture::RdlFanout(
            ecochip_packaging::RdlFanoutConfig::default(),
        ));
        packaging.validate()?;
        Ok(System {
            name: self.name,
            chiplets: self.chiplets,
            packaging,
            usage: self.usage,
            lifetime: self.lifetime,
            volumes: self.volumes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_packaging::RdlFanoutConfig;

    fn db() -> TechDb {
        TechDb::default()
    }

    fn logic_chiplet(node: TechNode) -> Chiplet {
        Chiplet::new(
            "logic",
            DesignType::Logic,
            node,
            ChipletSize::Transistors(10.0e9),
        )
    }

    #[test]
    fn chiplet_area_from_transistors_and_area_spec() {
        let db = db();
        let c = logic_chiplet(TechNode::N7);
        let area = c.area(&db).unwrap();
        assert!((area.mm2() - 10.0e9 / 91.0e6).abs() < 1e-6);
        assert!((c.transistors(&db).unwrap() - 10.0e9).abs() < 1.0);

        let from_area = Chiplet::new(
            "mem",
            DesignType::Memory,
            TechNode::N10,
            ChipletSize::AreaAtNode {
                area: Area::from_mm2(100.0),
                node: TechNode::N7,
            },
        );
        // Memory is less dense at 10 nm than 7 nm, so the area grows.
        assert!(from_area.area(&db).unwrap().mm2() > 100.0);
        assert!(from_area.transistors(&db).unwrap() > 0.0);
        assert!(!from_area.to_string().is_empty());
    }

    #[test]
    fn retargeting_preserves_transistors_and_rescales_area() {
        let db = db();
        let c7 = logic_chiplet(TechNode::N7);
        let c14 = c7.retargeted(TechNode::N14);
        assert_eq!(c14.node, TechNode::N14);
        assert!(
            (c7.transistors(&db).unwrap() - c14.transistors(&db).unwrap()).abs() < 1.0,
            "transistor budget must be preserved"
        );
        assert!(c14.area(&db).unwrap().mm2() > 2.0 * c7.area(&db).unwrap().mm2());
    }

    #[test]
    fn system_builder_validates() {
        assert!(matches!(
            System::builder("empty").build(),
            Err(EcoChipError::InvalidSystem(_))
        ));
        assert!(System::builder("bad lifetime")
            .chiplet(logic_chiplet(TechNode::N7))
            .lifetime(TimeSpan::from_years(0.0))
            .build()
            .is_err());
        let bad_packaging = PackagingArchitecture::RdlFanout(RdlFanoutConfig {
            layers: 0,
            ..RdlFanoutConfig::default()
        });
        assert!(System::builder("bad packaging")
            .chiplet(logic_chiplet(TechNode::N7))
            .packaging(bad_packaging)
            .build()
            .is_err());
        let ok = System::builder("ok")
            .chiplet(logic_chiplet(TechNode::N7))
            .build()
            .unwrap();
        assert!(ok.is_monolithic());
        assert_eq!(ok.chiplet_count(), 1);
        assert!(!ok.to_string().is_empty());
    }

    #[test]
    fn system_aggregates() {
        let db = db();
        let system = System::builder("agg")
            .chiplets([
                logic_chiplet(TechNode::N7),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N10,
                    ChipletSize::Transistors(8.0e9),
                ),
            ])
            .build()
            .unwrap();
        assert!(!system.is_monolithic());
        assert_eq!(system.chiplet_nodes(), vec![TechNode::N7, TechNode::N10]);
        let total_area = system.silicon_area(&db).unwrap();
        assert!(total_area.mm2() > 100.0);
        assert!((system.total_transistors(&db).unwrap() - 18.0e9).abs() < 1.0);
    }

    #[test]
    fn system_modifiers() {
        let base = System::builder("base")
            .chiplets([logic_chiplet(TechNode::N7), logic_chiplet(TechNode::N7)])
            .build()
            .unwrap();
        let moved = base.with_chiplet_node(1, TechNode::N14).unwrap();
        assert_eq!(moved.chiplets[1].node, TechNode::N14);
        assert_eq!(moved.chiplets[0].node, TechNode::N7);
        assert!(base.with_chiplet_node(5, TechNode::N14).is_err());

        let repackaged = base.with_packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig {
            layers: 8,
            ..RdlFanoutConfig::default()
        }));
        assert_ne!(repackaged.packaging, base.packaging);

        let long = base.with_lifetime(TimeSpan::from_years(5.0));
        assert!((long.lifetime.years() - 5.0).abs() < 1e-9);

        let reuse = base.with_volumes(VolumeScenario::with_reuse(100_000, 4.0));
        assert!((reuse.volumes.reuse_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let system = System::builder("serde")
            .chiplet(logic_chiplet(TechNode::N7))
            .build()
            .unwrap();
        let json = serde_json::to_string(&system).unwrap();
        let back: System = serde_json::from_str(&json).unwrap();
        assert_eq!(system, back);
    }
}
