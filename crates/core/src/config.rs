//! Estimator configuration.

use std::fmt;

use ecochip_design::DesignConfig;
use ecochip_floorplan::FloorplanConfig;
use ecochip_packaging::CommConfig;
use ecochip_techdb::{DesignType, EnergySource, TechDb};
use ecochip_yield::Wafer;

/// Configuration of the [`crate::EcoChip`] estimator: the technology database
/// plus all framework-level knobs (energy sources, wafer size, floorplanner
/// settings, design and communication models).
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// The technology-node parameter database.
    pub techdb: TechDb,
    /// Wafer used for dies-per-wafer / wastage accounting (450 mm default).
    pub wafer: Wafer,
    /// Energy source of the chip-manufacturing fab (`Cmfg,src`).
    pub fab_source: EnergySource,
    /// Energy source of the packaging / OSAT fab (`Cpkg,src`).
    pub packaging_source: EnergySource,
    /// Energy source of the deployed device (`Csrc,use`).
    pub operational_source: EnergySource,
    /// Design-CFP model parameters.
    pub design: DesignConfig,
    /// Inter-die communication model parameters.
    pub comm: CommConfig,
    /// Floorplanner parameters (chiplet spacing, margins).
    pub floorplan: FloorplanConfig,
    /// Whether to account for wafer-periphery wastage (Fig. 3 toggle).
    pub include_wafer_wastage: bool,
    /// Relative design effort of each block type compared to logic; memory
    /// and analog blocks are dominated by compiled macros and reuse rather
    /// than gate-level SP&R.
    pub design_effort_memory: f64,
    /// Relative design effort of analog blocks compared to logic.
    pub design_effort_analog: f64,
}

impl Default for EstimatorConfig {
    /// The paper's headline setup: 450 mm wafers, coal-powered fabs,
    /// packaging and design compute, world-grid usage phase, Table-I
    /// defaults everywhere else.
    fn default() -> Self {
        Self {
            techdb: TechDb::default(),
            wafer: Wafer::standard_450mm(),
            fab_source: EnergySource::Coal,
            packaging_source: EnergySource::Coal,
            operational_source: EnergySource::Coal,
            design: DesignConfig::default(),
            comm: CommConfig::default(),
            floorplan: FloorplanConfig::default(),
            include_wafer_wastage: true,
            design_effort_memory: 0.3,
            design_effort_analog: 0.5,
        }
    }
}

impl EstimatorConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> EstimatorConfigBuilder {
        EstimatorConfigBuilder {
            config: Self::default(),
        }
    }

    /// Relative design-effort factor for a design type.
    pub fn design_effort_factor(&self, design_type: DesignType) -> f64 {
        match design_type {
            DesignType::Logic => 1.0,
            DesignType::Memory => self.design_effort_memory,
            DesignType::Analog => self.design_effort_analog,
        }
    }
}

impl fmt::Display for EstimatorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ECO-CHIP config ({} nodes, {}, fab {}, packaging {}, use {})",
            self.techdb.len(),
            self.wafer,
            self.fab_source,
            self.packaging_source,
            self.operational_source
        )
    }
}

/// Builder for [`EstimatorConfig`].
#[derive(Debug, Clone)]
pub struct EstimatorConfigBuilder {
    config: EstimatorConfig,
}

impl EstimatorConfigBuilder {
    /// Use a custom technology database.
    pub fn techdb(mut self, db: TechDb) -> Self {
        self.config.techdb = db;
        self
    }

    /// Use a custom wafer size.
    pub fn wafer(mut self, wafer: Wafer) -> Self {
        self.config.wafer = wafer;
        self
    }

    /// Set the fab energy source.
    pub fn fab_source(mut self, source: EnergySource) -> Self {
        self.config.fab_source = source;
        self
    }

    /// Set the packaging fab energy source.
    pub fn packaging_source(mut self, source: EnergySource) -> Self {
        self.config.packaging_source = source;
        self
    }

    /// Set the usage-phase energy source.
    pub fn operational_source(mut self, source: EnergySource) -> Self {
        self.config.operational_source = source;
        self
    }

    /// Set the design-CFP model parameters.
    pub fn design(mut self, design: DesignConfig) -> Self {
        self.config.design = design;
        self
    }

    /// Set the communication model parameters.
    pub fn comm(mut self, comm: CommConfig) -> Self {
        self.config.comm = comm;
        self
    }

    /// Set the floorplanner parameters.
    pub fn floorplan(mut self, floorplan: FloorplanConfig) -> Self {
        self.config.floorplan = floorplan;
        self
    }

    /// Enable or disable wafer-wastage accounting.
    pub fn include_wafer_wastage(mut self, include: bool) -> Self {
        self.config.include_wafer_wastage = include;
        self
    }

    /// Set the relative design effort for memory and analog blocks.
    pub fn design_effort(mut self, memory: f64, analog: f64) -> Self {
        self.config.design_effort_memory = memory.max(0.0);
        self.config.design_effort_analog = analog.max(0.0);
        self
    }

    /// Finish building.
    pub fn build(self) -> EstimatorConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::TechNode;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = EstimatorConfig::default();
        assert_eq!(cfg.fab_source, EnergySource::Coal);
        assert_eq!(cfg.packaging_source, EnergySource::Coal);
        assert!((cfg.wafer.diameter_mm() - 450.0).abs() < 1e-9);
        assert!(cfg.include_wafer_wastage);
        assert!(cfg.techdb.contains(TechNode::N7));
        assert!(!cfg.to_string().is_empty());
    }

    #[test]
    fn effort_factors() {
        let cfg = EstimatorConfig::default();
        assert_eq!(cfg.design_effort_factor(DesignType::Logic), 1.0);
        assert!(cfg.design_effort_factor(DesignType::Memory) < 1.0);
        assert!(cfg.design_effort_factor(DesignType::Analog) < 1.0);
    }

    #[test]
    fn builder_overrides() {
        let cfg = EstimatorConfig::builder()
            .fab_source(EnergySource::Solar)
            .packaging_source(EnergySource::Wind)
            .operational_source(EnergySource::Nuclear)
            .wafer(Wafer::standard_300mm())
            .include_wafer_wastage(false)
            .design_effort(0.5, 0.9)
            .build();
        assert_eq!(cfg.fab_source, EnergySource::Solar);
        assert_eq!(cfg.packaging_source, EnergySource::Wind);
        assert_eq!(cfg.operational_source, EnergySource::Nuclear);
        assert!((cfg.wafer.diameter_mm() - 300.0).abs() < 1e-9);
        assert!(!cfg.include_wafer_wastage);
        assert!((cfg.design_effort_factor(DesignType::Memory) - 0.5).abs() < 1e-12);
        assert!((cfg.design_effort_factor(DesignType::Analog) - 0.9).abs() < 1e-12);
    }
}
