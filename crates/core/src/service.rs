//! Batch service API: one warm [`SweepContext`] amortized over many
//! requests.
//!
//! A long-lived service evaluating many systems — a carbon-estimation
//! endpoint, a DSE driver, a batch queue worker — repeats the same expensive
//! stages (floorplans, per-die manufacturing CFP) across requests.
//! [`EcoChipService`] bundles an [`EcoChip`] estimator, a [`SweepEngine`]
//! and one persistent [`SweepContext`] memo, so every `estimate`/`run` call
//! after the first reuses whatever stage results earlier calls computed,
//! while staying bit-for-bit identical to cold estimation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use ecochip_trace::{FieldValue, StageTimings};

use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::report::CarbonReport;
use crate::sweep::{
    Shard, SweepContext, SweepEngine, SweepPoint, SweepSink, SweepSpec, SweepStats,
};
use crate::system::System;

/// A batch estimation service: an [`EcoChip`] estimator plus a warm, shared
/// [`SweepContext`] memo that persists across requests.
///
/// ```
/// use ecochip_core::{Chiplet, ChipletSize, EcoChip, EcoChipService, System};
/// use ecochip_techdb::{DesignType, TechNode, TimeSpan};
///
/// let service = EcoChipService::new(EcoChip::default());
/// let system = System::builder("svc-demo")
///     .chiplet(Chiplet::new(
///         "soc",
///         DesignType::Logic,
///         TechNode::N7,
///         ChipletSize::Transistors(5.0e9),
///     ))
///     .build()?;
/// let first = service.estimate(&system)?;
/// // A second request over the same die reuses the memoized floorplan and
/// // manufacturing stages — and still matches cold estimation bit-for-bit.
/// let again = service.estimate(&system.with_lifetime(TimeSpan::from_years(4.0)))?;
/// assert!(service.stats().manufacturing_hits > 0);
/// assert!(again.total().kg() > first.total().kg());
/// # Ok::<(), ecochip_core::EcoChipError>(())
/// ```
#[derive(Debug)]
pub struct EcoChipService {
    estimator: EcoChip,
    engine: SweepEngine,
    context: SweepContext,
    autosave: Option<Autosave>,
    /// Latched after a failed autosave so a persistent disk problem warns
    /// once per failure streak instead of once per point.
    autosave_warned: AtomicBool,
    /// Dirty-entry level a failed autosave retries at (0 = no backoff):
    /// serializing the whole memo on *every* point while a disk stays
    /// broken would collapse throughput, so after a failure the next
    /// attempt waits for another `every_entries` of new work.
    autosave_retry_at: AtomicUsize,
    /// Estimates served since creation (single estimates only, not sweep
    /// points).
    estimates: AtomicU64,
    /// Sweep points emitted since creation (all `run*` entry points).
    sweep_points: AtomicU64,
}

/// Lifetime request counters of an [`EcoChipService`], for service
/// dashboards and the HTTP server's `/metrics` endpoint. Monotonic — they
/// survive memo loads and capacity changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Single-system estimates served ([`EcoChipService::estimate`]).
    pub estimates: u64,
    /// Sweep points emitted across every `run*` entry point.
    pub sweep_points: u64,
}

/// What a memo import absorbed (see [`EcoChipService::import_memo_json`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoImport {
    /// Floorplans absorbed (entries already present are skipped).
    pub floorplans: usize,
    /// Manufacturing results absorbed.
    pub manufacturing: usize,
}

/// Incremental memo persistence configured by
/// [`EcoChipService::save_memo_every`].
#[derive(Debug, Clone)]
struct Autosave {
    path: PathBuf,
    every_entries: usize,
}

impl EcoChipService {
    /// A service around `estimator` with a fresh memo and the default
    /// engine (worker count from `ECOCHIP_JOBS` / available parallelism).
    pub fn new(estimator: EcoChip) -> Self {
        Self::with_engine(estimator, SweepEngine::new())
    }

    /// A service with an explicit sweep engine (e.g. a pinned worker count).
    pub fn with_engine(estimator: EcoChip, engine: SweepEngine) -> Self {
        Self {
            estimator,
            engine,
            context: SweepContext::new(),
            autosave: None,
            autosave_warned: AtomicBool::new(false),
            autosave_retry_at: AtomicUsize::new(0),
            estimates: AtomicU64::new(0),
            sweep_points: AtomicU64::new(0),
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &EcoChip {
        &self.estimator
    }

    /// The sweep engine used by [`EcoChipService::run`] and friends.
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// The warm memo shared by every request.
    pub fn context(&self) -> &SweepContext {
        &self.context
    }

    /// Hit/miss/eviction counters of the warm memo.
    pub fn stats(&self) -> SweepStats {
        self.context.stats()
    }

    /// Lifetime request counters: estimates served and sweep points emitted.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            estimates: self.estimates.load(Ordering::Relaxed),
            sweep_points: self.sweep_points.load(Ordering::Relaxed),
        }
    }

    /// Bound the warm memo to `capacity` entries per cache with
    /// least-recently-used eviction (`None` lifts the bound), evicting any
    /// excess immediately. The bound survives [`EcoChipService::load_memo`].
    /// Results stay bit-for-bit identical — eviction only trades
    /// recomputation for memory.
    pub fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.context.set_capacity(capacity);
    }

    /// The warm memo's per-cache entry bound, if any.
    pub fn memo_capacity(&self) -> Option<usize> {
        self.context.capacity()
    }

    /// Persist the warm memo to `path` whenever at least `every_entries` new
    /// entries accumulated since the last save, checked after every
    /// estimate/sweep point. Long-running sweeps and servers thereby survive
    /// a crash with most of their memo intact, instead of saving only at
    /// exit. Saves are atomic (temp file + rename, see
    /// [`SweepContext::save_to`]); `every_entries` is clamped to at least 1.
    ///
    /// Persistence is an optimization, so a *failed* autosave never fails
    /// the request that triggered it — the failure is warned to stderr
    /// (once per streak) and retried as more entries accumulate. Note each
    /// autosave rewrites the whole memo snapshot: with a small
    /// `every_entries` and a large memo, saving cost grows with memo size,
    /// so pick a threshold proportional to how much recomputation a crash
    /// may cost.
    pub fn save_memo_every(&mut self, path: impl Into<PathBuf>, every_entries: usize) {
        self.autosave = Some(Autosave {
            path: path.into(),
            every_entries: every_entries.max(1),
        });
    }

    /// Disable [`EcoChipService::save_memo_every`] autosaving.
    pub fn disable_autosave(&mut self) {
        self.autosave = None;
    }

    /// Save the memo if the autosave threshold has been crossed. Failures
    /// are warned, never propagated — losing persistence must not lose the
    /// computed result that triggered the save.
    fn maybe_autosave(&self) {
        let Some(autosave) = &self.autosave else {
            return;
        };
        let dirty = self.context.dirty_entries();
        if dirty
            < autosave
                .every_entries
                .max(self.autosave_retry_at.load(Ordering::Relaxed))
        {
            return;
        }
        match self
            .context
            .save_to(&autosave.path, self.memo_fingerprint())
        {
            Ok(()) => {
                self.autosave_warned.store(false, Ordering::Relaxed);
                self.autosave_retry_at.store(0, Ordering::Relaxed);
            }
            Err(error) => {
                // Back off: don't re-serialize the whole memo per point
                // while the disk stays broken.
                self.autosave_retry_at
                    .store(dirty + autosave.every_entries, Ordering::Relaxed);
                if !self.autosave_warned.swap(true, Ordering::Relaxed) {
                    ecochip_trace::warn(
                        "core::service",
                        "memo autosave failed; will keep retrying",
                        &[
                            (
                                "path",
                                FieldValue::from(autosave.path.display().to_string()),
                            ),
                            ("error", FieldValue::from(error.to_string())),
                        ],
                    );
                }
            }
        }
    }

    /// The estimator's memo fingerprint (see
    /// [`EcoChip::memo_fingerprint`]); memo files saved by this service are
    /// stamped with it.
    pub fn memo_fingerprint(&self) -> u64 {
        self.estimator.memo_fingerprint()
    }

    /// Estimate one system against the warm memo. Bit-for-bit identical to
    /// [`EcoChip::estimate`], but stages shared with earlier requests are
    /// served from the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`EcoChip::estimate`] errors.
    pub fn estimate(&self, system: &System) -> Result<CarbonReport, EcoChipError> {
        let report = self.estimator.estimate_with(system, &self.context)?;
        self.estimates.fetch_add(1, Ordering::Relaxed);
        self.maybe_autosave();
        Ok(report)
    }

    /// Evaluate a sweep spec against the warm memo, collecting every point.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (case generation, estimation).
    pub fn run(&self, spec: &SweepSpec) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_sharded(spec, Shard::FULL)
    }

    /// Evaluate the slice of a sweep a [`Shard`] owns against the warm memo.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (case generation, estimation).
    pub fn run_sharded(
        &self,
        spec: &SweepSpec,
        shard: Shard,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        let mut points = Vec::new();
        self.run_streaming(spec, shard, &mut |point| {
            points.push(point);
            Ok(())
        })?;
        Ok(points)
    }

    /// Stream (a shard of) a sweep through `sink` in deterministic case
    /// order, holding only the engine's `O(workers)` reorder window in
    /// memory. Returns the number of points emitted.
    ///
    /// # Errors
    ///
    /// Propagates engine errors and the first error returned by `sink`.
    pub fn run_streaming<S: SweepSink + ?Sized>(
        &self,
        spec: &SweepSpec,
        shard: Shard,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.run_streaming_timed(spec, shard, None, sink)
    }

    /// [`EcoChipService::run_streaming`] with an optional per-stage
    /// duration collector (see [`SweepEngine::run_streaming_timed`]):
    /// the HTTP server attaches a fresh [`StageTimings`] per request so
    /// estimator time is attributed exactly; `None` costs one branch per
    /// point.
    ///
    /// # Errors
    ///
    /// As [`EcoChipService::run_streaming`].
    pub fn run_streaming_timed<S: SweepSink + ?Sized>(
        &self,
        spec: &SweepSpec,
        shard: Shard,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let mut instrumented = InstrumentedSink {
            service: self,
            sink,
        };
        self.engine.run_streaming_timed(
            &self.estimator,
            spec,
            shard,
            &self.context,
            timings,
            &mut instrumented,
        )
    }

    /// Stream an explicit, contiguous index range of a sweep's case space
    /// through `sink` against the warm memo (see
    /// [`SweepEngine::run_range_with`]). This is the resume entry point for
    /// orchestrator failover: re-dispatching the unemitted suffix of a dead
    /// worker's shard reproduces exactly the missing points.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (invalid ranges, case generation,
    /// estimation) and the first error returned by `sink`.
    pub fn run_streaming_range<S: SweepSink + ?Sized>(
        &self,
        spec: &SweepSpec,
        range: std::ops::Range<usize>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.run_streaming_range_timed(spec, range, None, sink)
    }

    /// [`EcoChipService::run_streaming_range`] with an optional per-stage
    /// duration collector (see [`SweepEngine::run_range_timed`]).
    ///
    /// # Errors
    ///
    /// As [`EcoChipService::run_streaming_range`].
    pub fn run_streaming_range_timed<S: SweepSink + ?Sized>(
        &self,
        spec: &SweepSpec,
        range: std::ops::Range<usize>,
        timings: Option<&StageTimings>,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        let mut instrumented = InstrumentedSink {
            service: self,
            sink,
        };
        self.engine.run_range_timed(
            &self.estimator,
            spec,
            range,
            &self.context,
            timings,
            &mut instrumented,
        )
    }

    /// Persist the warm memo to `path`, stamped with this service's
    /// fingerprint, so a later process can start warm.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepContext::save_to`] errors.
    pub fn save_memo(&self, path: &Path) -> Result<(), EcoChipError> {
        self.context.save_to(path, self.memo_fingerprint())?;
        // Any successful save proves the destination is healthy again:
        // clear a prior autosave failure streak so the incremental cadence
        // resumes immediately instead of waiting out the backoff.
        self.autosave_warned.store(false, Ordering::Relaxed);
        self.autosave_retry_at.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Replace the warm memo with one persisted by
    /// [`EcoChipService::save_memo`] (or [`SweepContext::save_to`]); the
    /// file's fingerprint must match this service's estimator.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepContext::load_from`] errors ([`EcoChipError::Io`],
    /// [`EcoChipError::MemoFormat`], [`EcoChipError::StaleMemo`]).
    pub fn load_memo(&mut self, path: &Path) -> Result<(), EcoChipError> {
        let capacity = self.context.capacity();
        let mut restored = SweepContext::load_from(path, self.memo_fingerprint())?;
        restored.set_capacity(capacity);
        self.context = restored;
        Ok(())
    }

    /// Serialize the warm memo as versioned JSON stamped with this
    /// service's fingerprint — the same format [`EcoChipService::save_memo`]
    /// writes to disk, so the export can be saved, posted to another
    /// server, or re-imported.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepContext::to_json`] errors.
    pub fn export_memo_json(&self) -> Result<String, EcoChipError> {
        self.context.to_json(self.memo_fingerprint())
    }

    /// Absorb a memo exported by [`EcoChipService::export_memo_json`] (or
    /// saved by [`EcoChipService::save_memo`]) into the warm memo, keeping
    /// entries this service already computed. The import is validated by
    /// the existing stale-memo machinery: a format-version or fingerprint
    /// mismatch is rejected with a typed error and absorbs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`EcoChipError::MemoFormat`] for malformed or incompatible
    /// JSON and [`EcoChipError::StaleMemo`] for fingerprint mismatches.
    pub fn import_memo_json(&self, json: &str) -> Result<MemoImport, EcoChipError> {
        let imported = SweepContext::from_json(json, self.memo_fingerprint())?;
        let (floorplans, manufacturing) = self.context.absorb(imported);
        Ok(MemoImport {
            floorplans,
            manufacturing,
        })
    }

    /// The lenient memo load every front end (CLI, HTTP server) uses: a
    /// missing file is a cold start, a stale or malformed memo is *warned
    /// about and ignored* — results are identical either way, the memo only
    /// saves work. A successful load is narrated at INFO level (front ends
    /// raise the global level on `--verbose`).
    pub fn load_memo_lenient(&mut self, path: &Path) {
        if !path.exists() {
            return;
        }
        match self.load_memo(path) {
            Ok(()) => ecochip_trace::info(
                "core::service",
                "memo loaded",
                &[
                    (
                        "floorplans",
                        FieldValue::from(self.context.floorplan_entries()),
                    ),
                    (
                        "manufacturing",
                        FieldValue::from(self.context.manufacturing_entries()),
                    ),
                    ("path", FieldValue::from(path.display().to_string())),
                ],
            ),
            Err(error) => ecochip_trace::warn(
                "core::service",
                "ignoring memo; starting cold",
                &[
                    ("path", FieldValue::from(path.display().to_string())),
                    ("error", FieldValue::from(error.to_string())),
                ],
            ),
        }
    }

    /// [`EcoChipService::save_memo`] plus INFO-level narration of what was
    /// persisted (front ends raise the global level on `--verbose`).
    ///
    /// # Errors
    ///
    /// Propagates [`EcoChipService::save_memo`] errors.
    pub fn save_memo_logged(&self, path: &Path) -> Result<(), EcoChipError> {
        self.save_memo(path)?;
        ecochip_trace::info(
            "core::service",
            "memo saved",
            &[
                (
                    "floorplans",
                    FieldValue::from(self.context.floorplan_entries()),
                ),
                (
                    "manufacturing",
                    FieldValue::from(self.context.manufacturing_entries()),
                ),
                ("path", FieldValue::from(path.display().to_string())),
            ],
        );
        Ok(())
    }
}

/// Wraps a caller sink so every emitted point bumps the service counters
/// and checks the autosave threshold — a million-point sweep persists its
/// memo as it goes, not only at exit. Batched emission passes straight
/// through to the inner sink's bulk path, with one counter update and one
/// autosave check per batch instead of per point.
struct InstrumentedSink<'a, S: SweepSink + ?Sized> {
    service: &'a EcoChipService,
    sink: &'a mut S,
}

impl<S: SweepSink + ?Sized> InstrumentedSink<'_, S> {
    fn record(&self, points: u64) {
        self.service
            .sweep_points
            .fetch_add(points, Ordering::Relaxed);
        if self.service.autosave.is_some() {
            self.service.maybe_autosave();
        }
    }
}

impl<S: SweepSink + ?Sized> SweepSink for InstrumentedSink<'_, S> {
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
        self.sink.emit(point)?;
        self.record(1);
        Ok(())
    }

    fn accept_batch(&mut self, points: Vec<SweepPoint>) -> Result<(), EcoChipError> {
        let count = points.len() as u64;
        self.sink.accept_batch(points)?;
        self.record(count);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepAxis;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig};
    use ecochip_techdb::{DesignType, TechNode};

    fn base() -> System {
        System::builder("service-test")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn warm_context_spans_requests_and_stays_exact() {
        let service = EcoChipService::new(EcoChip::default());
        let system = base();
        let first = service.estimate(&system).unwrap();
        assert_eq!(service.stats().floorplan_misses, 1);
        let second = service.estimate(&system).unwrap();
        assert_eq!(service.stats().floorplan_hits, 1);
        assert_eq!(first, second);
        // Bit-for-bit identical to a cold estimator.
        let cold = EcoChip::default().estimate(&system).unwrap();
        assert_eq!(cold, second);
        assert_eq!(cold.total().kg().to_bits(), second.total().kg().to_bits());
    }

    #[test]
    fn service_sweeps_match_the_bare_engine() {
        let service = EcoChipService::with_engine(EcoChip::default(), SweepEngine::with_jobs(3));
        assert_eq!(service.engine().jobs(), 3);
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Packaging(vec![
                PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
                PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]));
        let via_service = service.run(&spec).unwrap();
        let via_engine = SweepEngine::new().run(service.estimator(), &spec).unwrap();
        assert_eq!(via_service, via_engine);
        // A sharded service run concatenates to the full run.
        let mut merged = Vec::new();
        for index in 0..2 {
            let shard = Shard::new(index, 2).unwrap();
            merged.extend(service.run_sharded(&spec, shard).unwrap());
        }
        assert_eq!(merged, via_engine);
    }

    #[test]
    fn autosave_persists_incrementally_during_a_sweep() {
        let path = std::env::temp_dir().join(format!(
            "ecochip-service-autosave-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut service = EcoChipService::new(EcoChip::default());
        service.save_memo_every(&path, 1);
        let spec = SweepSpec::new(base()).axis(SweepAxis::Packaging(vec![
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
        ]));
        let streamed = service.run(&spec).unwrap();
        assert_eq!(streamed.len(), 2);
        // The memo hit the disk during the run, not only at exit, and the
        // dirty counter was reset by the last autosave.
        assert!(path.exists(), "autosave never wrote {}", path.display());
        assert_eq!(service.context().dirty_entries(), 0);

        // A restored service starts warm and reproduces the run bit-for-bit.
        let mut restored = EcoChipService::new(EcoChip::default());
        restored.load_memo(&path).unwrap();
        let again = restored.run(&spec).unwrap();
        assert_eq!(again, streamed);
        assert_eq!(restored.stats().floorplan_misses, 0);

        // estimate() also autosaves once enough entries accumulate.
        let _ = std::fs::remove_file(&path);
        let mut fresh = EcoChipService::new(EcoChip::default());
        fresh.save_memo_every(&path, 1);
        fresh.estimate(&base()).unwrap();
        assert!(path.exists());
        fresh.disable_autosave();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn autosave_failure_warns_but_never_fails_the_request() {
        // Autosaving into a directory that does not exist cannot succeed;
        // the computed result must come back anyway.
        let mut service = EcoChipService::new(EcoChip::default());
        service.save_memo_every(
            std::env::temp_dir().join("ecochip-missing-dir/never.json"),
            1,
        );
        let report = service.estimate(&base()).unwrap();
        let cold = EcoChip::default().estimate(&base()).unwrap();
        assert_eq!(report, cold);
        // Sweeps keep streaming past the failed save too.
        let spec = SweepSpec::new(base()).axis(SweepAxis::lifetimes_years(&[1.0, 2.0]));
        assert_eq!(service.run(&spec).unwrap().len(), 2);
    }

    #[test]
    fn memo_export_import_shares_warm_state_between_services() {
        let warm = EcoChipService::new(EcoChip::default());
        warm.estimate(&base()).unwrap();
        let export = warm.export_memo_json().unwrap();

        // A cold service absorbs the export and serves from it without a
        // single stage miss.
        let cold = EcoChipService::new(EcoChip::default());
        let imported = cold.import_memo_json(&export).unwrap();
        assert_eq!(imported.floorplans, 1);
        assert!(imported.manufacturing >= 1);
        let report = cold.estimate(&base()).unwrap();
        assert_eq!(cold.stats().floorplan_misses, 0);
        assert_eq!(cold.stats().manufacturing_misses, 0);
        let direct = warm.estimate(&base()).unwrap();
        assert_eq!(report.total().kg().to_bits(), direct.total().kg().to_bits());

        // Re-importing absorbs nothing new; entries already present win.
        let again = cold.import_memo_json(&export).unwrap();
        assert_eq!(again, MemoImport::default());

        // A differently-configured service rejects the export outright.
        let other = EcoChipService::new(EcoChip::new(
            crate::config::EstimatorConfig::builder()
                .include_wafer_wastage(false)
                .build(),
        ));
        assert!(matches!(
            other.import_memo_json(&export),
            Err(EcoChipError::StaleMemo(_))
        ));
        assert_eq!(other.context().floorplan_entries(), 0);
        assert!(matches!(
            other.import_memo_json("not json"),
            Err(EcoChipError::MemoFormat(_))
        ));
    }

    #[test]
    fn service_counters_track_estimates_and_sweep_points() {
        let service = EcoChipService::new(EcoChip::default());
        assert_eq!(service.service_stats(), ServiceStats::default());
        service.estimate(&base()).unwrap();
        service.estimate(&base()).unwrap();
        let spec = SweepSpec::new(base()).axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]));
        service.run(&spec).unwrap();
        let mut tail = Vec::new();
        service
            .run_streaming_range(&spec, 1..3, &mut |point| {
                tail.push(point);
                Ok(())
            })
            .unwrap();
        assert_eq!(tail.len(), 2);
        // The range reproduces the exact suffix of the full run.
        let full = service.run(&spec).unwrap();
        assert_eq!(tail, full[1..3]);
        let stats = service.service_stats();
        assert_eq!(stats.estimates, 2);
        assert_eq!(stats.sweep_points, 3 + 2 + 3);
    }

    #[test]
    fn memo_capacity_survives_loading() {
        let path = std::env::temp_dir().join(format!(
            "ecochip-service-capacity-{}.json",
            std::process::id()
        ));
        let warm = EcoChipService::new(EcoChip::default());
        warm.estimate(&base()).unwrap();
        warm.save_memo(&path).unwrap();

        let mut bounded = EcoChipService::new(EcoChip::default());
        bounded.set_memo_capacity(Some(1));
        assert_eq!(bounded.memo_capacity(), Some(1));
        bounded.load_memo(&path).unwrap();
        // The loaded memo held 2 manufacturing entries (two nodes); the
        // capacity bound shrank it to 1 and stays in force.
        assert_eq!(bounded.memo_capacity(), Some(1));
        assert!(bounded.context().manufacturing_entries() <= 1);
        assert!(bounded.stats().manufacturing_evictions >= 1);
        // Bounded estimation still matches the cold path bit-for-bit.
        let cold = EcoChip::default().estimate(&base()).unwrap();
        let served = bounded.estimate(&base()).unwrap();
        assert_eq!(cold.total().kg().to_bits(), served.total().kg().to_bits());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memo_roundtrips_through_the_service() {
        let warm = EcoChipService::new(EcoChip::default());
        warm.estimate(&base()).unwrap();
        let path =
            std::env::temp_dir().join(format!("ecochip-service-memo-{}.json", std::process::id()));
        warm.save_memo(&path).unwrap();

        let mut restored = EcoChipService::new(EcoChip::default());
        restored.load_memo(&path).unwrap();
        restored.estimate(&base()).unwrap();
        let stats = restored.stats();
        assert_eq!(stats.floorplan_misses, 0, "{stats:?}");
        assert_eq!(stats.manufacturing_misses, 0, "{stats:?}");

        // A differently-configured service rejects the memo.
        let mut other = EcoChipService::new(EcoChip::new(
            crate::config::EstimatorConfig::builder()
                .include_wafer_wastage(false)
                .build(),
        ));
        assert!(matches!(
            other.load_memo(&path),
            Err(EcoChipError::StaleMemo(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
