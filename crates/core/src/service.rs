//! Batch service API: one warm [`SweepContext`] amortized over many
//! requests.
//!
//! A long-lived service evaluating many systems — a carbon-estimation
//! endpoint, a DSE driver, a batch queue worker — repeats the same expensive
//! stages (floorplans, per-die manufacturing CFP) across requests.
//! [`EcoChipService`] bundles an [`EcoChip`] estimator, a [`SweepEngine`]
//! and one persistent [`SweepContext`] memo, so every `estimate`/`run` call
//! after the first reuses whatever stage results earlier calls computed,
//! while staying bit-for-bit identical to cold estimation.

use std::path::Path;

use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::report::CarbonReport;
use crate::sweep::{
    Shard, SweepContext, SweepEngine, SweepPoint, SweepSink, SweepSpec, SweepStats,
};
use crate::system::System;

/// A batch estimation service: an [`EcoChip`] estimator plus a warm, shared
/// [`SweepContext`] memo that persists across requests.
///
/// ```
/// use ecochip_core::{Chiplet, ChipletSize, EcoChip, EcoChipService, System};
/// use ecochip_techdb::{DesignType, TechNode, TimeSpan};
///
/// let service = EcoChipService::new(EcoChip::default());
/// let system = System::builder("svc-demo")
///     .chiplet(Chiplet::new(
///         "soc",
///         DesignType::Logic,
///         TechNode::N7,
///         ChipletSize::Transistors(5.0e9),
///     ))
///     .build()?;
/// let first = service.estimate(&system)?;
/// // A second request over the same die reuses the memoized floorplan and
/// // manufacturing stages — and still matches cold estimation bit-for-bit.
/// let again = service.estimate(&system.with_lifetime(TimeSpan::from_years(4.0)))?;
/// assert!(service.stats().manufacturing_hits > 0);
/// assert!(again.total().kg() > first.total().kg());
/// # Ok::<(), ecochip_core::EcoChipError>(())
/// ```
#[derive(Debug)]
pub struct EcoChipService {
    estimator: EcoChip,
    engine: SweepEngine,
    context: SweepContext,
}

impl EcoChipService {
    /// A service around `estimator` with a fresh memo and the default
    /// engine (worker count from `ECOCHIP_JOBS` / available parallelism).
    pub fn new(estimator: EcoChip) -> Self {
        Self::with_engine(estimator, SweepEngine::new())
    }

    /// A service with an explicit sweep engine (e.g. a pinned worker count).
    pub fn with_engine(estimator: EcoChip, engine: SweepEngine) -> Self {
        Self {
            estimator,
            engine,
            context: SweepContext::new(),
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &EcoChip {
        &self.estimator
    }

    /// The sweep engine used by [`EcoChipService::run`] and friends.
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// The warm memo shared by every request.
    pub fn context(&self) -> &SweepContext {
        &self.context
    }

    /// Hit/miss counters of the warm memo.
    pub fn stats(&self) -> SweepStats {
        self.context.stats()
    }

    /// The estimator's memo fingerprint (see
    /// [`EcoChip::memo_fingerprint`]); memo files saved by this service are
    /// stamped with it.
    pub fn memo_fingerprint(&self) -> u64 {
        self.estimator.memo_fingerprint()
    }

    /// Estimate one system against the warm memo. Bit-for-bit identical to
    /// [`EcoChip::estimate`], but stages shared with earlier requests are
    /// served from the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`EcoChip::estimate`] errors.
    pub fn estimate(&self, system: &System) -> Result<CarbonReport, EcoChipError> {
        self.estimator.estimate_with(system, &self.context)
    }

    /// Evaluate a sweep spec against the warm memo, collecting every point.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (case generation, estimation).
    pub fn run(&self, spec: &SweepSpec) -> Result<Vec<SweepPoint>, EcoChipError> {
        self.run_sharded(spec, Shard::FULL)
    }

    /// Evaluate the slice of a sweep a [`Shard`] owns against the warm memo.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (case generation, estimation).
    pub fn run_sharded(
        &self,
        spec: &SweepSpec,
        shard: Shard,
    ) -> Result<Vec<SweepPoint>, EcoChipError> {
        let mut points = Vec::new();
        self.run_streaming(spec, shard, &mut |point| {
            points.push(point);
            Ok(())
        })?;
        Ok(points)
    }

    /// Stream (a shard of) a sweep through `sink` in deterministic case
    /// order, holding only the engine's `O(workers)` reorder window in
    /// memory. Returns the number of points emitted.
    ///
    /// # Errors
    ///
    /// Propagates engine errors and the first error returned by `sink`.
    pub fn run_streaming<S: SweepSink + ?Sized>(
        &self,
        spec: &SweepSpec,
        shard: Shard,
        sink: &mut S,
    ) -> Result<usize, EcoChipError> {
        self.engine
            .run_streaming_with(&self.estimator, spec, shard, &self.context, sink)
    }

    /// Persist the warm memo to `path`, stamped with this service's
    /// fingerprint, so a later process can start warm.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepContext::save_to`] errors.
    pub fn save_memo(&self, path: &Path) -> Result<(), EcoChipError> {
        self.context.save_to(path, self.memo_fingerprint())
    }

    /// Replace the warm memo with one persisted by
    /// [`EcoChipService::save_memo`] (or [`SweepContext::save_to`]); the
    /// file's fingerprint must match this service's estimator.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepContext::load_from`] errors ([`EcoChipError::Io`],
    /// [`EcoChipError::MemoFormat`], [`EcoChipError::StaleMemo`]).
    pub fn load_memo(&mut self, path: &Path) -> Result<(), EcoChipError> {
        self.context = SweepContext::load_from(path, self.memo_fingerprint())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepAxis;
    use crate::system::{Chiplet, ChipletSize};
    use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig};
    use ecochip_techdb::{DesignType, TechNode};

    fn base() -> System {
        System::builder("service-test")
            .chiplets([
                Chiplet::new(
                    "logic",
                    DesignType::Logic,
                    TechNode::N7,
                    ChipletSize::Transistors(8.0e9),
                ),
                Chiplet::new(
                    "mem",
                    DesignType::Memory,
                    TechNode::N14,
                    ChipletSize::Transistors(2.0e9),
                ),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn warm_context_spans_requests_and_stays_exact() {
        let service = EcoChipService::new(EcoChip::default());
        let system = base();
        let first = service.estimate(&system).unwrap();
        assert_eq!(service.stats().floorplan_misses, 1);
        let second = service.estimate(&system).unwrap();
        assert_eq!(service.stats().floorplan_hits, 1);
        assert_eq!(first, second);
        // Bit-for-bit identical to a cold estimator.
        let cold = EcoChip::default().estimate(&system).unwrap();
        assert_eq!(cold, second);
        assert_eq!(cold.total().kg().to_bits(), second.total().kg().to_bits());
    }

    #[test]
    fn service_sweeps_match_the_bare_engine() {
        let service = EcoChipService::with_engine(EcoChip::default(), SweepEngine::with_jobs(3));
        assert_eq!(service.engine().jobs(), 3);
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Packaging(vec![
                PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
                PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            ]))
            .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0]));
        let via_service = service.run(&spec).unwrap();
        let via_engine = SweepEngine::new().run(service.estimator(), &spec).unwrap();
        assert_eq!(via_service, via_engine);
        // A sharded service run concatenates to the full run.
        let mut merged = Vec::new();
        for index in 0..2 {
            let shard = Shard::new(index, 2).unwrap();
            merged.extend(service.run_sharded(&spec, shard).unwrap());
        }
        assert_eq!(merged, via_engine);
    }

    #[test]
    fn memo_roundtrips_through_the_service() {
        let warm = EcoChipService::new(EcoChip::default());
        warm.estimate(&base()).unwrap();
        let path =
            std::env::temp_dir().join(format!("ecochip-service-memo-{}.json", std::process::id()));
        warm.save_memo(&path).unwrap();

        let mut restored = EcoChipService::new(EcoChip::default());
        restored.load_memo(&path).unwrap();
        restored.estimate(&base()).unwrap();
        let stats = restored.stats();
        assert_eq!(stats.floorplan_misses, 0, "{stats:?}");
        assert_eq!(stats.manufacturing_misses, 0, "{stats:?}");

        // A differently-configured service rejects the memo.
        let mut other = EcoChipService::new(EcoChip::new(
            crate::config::EstimatorConfig::builder()
                .include_wafer_wastage(false)
                .build(),
        ));
        assert!(matches!(
            other.load_memo(&path),
            Err(EcoChipError::StaleMemo(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
