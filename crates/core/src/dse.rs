//! Design-space-exploration sweeps and product curves (Sections V and VI).

use serde::{Deserialize, Serialize};

use ecochip_design::VolumeScenario;
use ecochip_packaging::PackagingArchitecture;
use ecochip_techdb::{Area, Carbon, Power, TimeSpan};

use crate::disaggregation::{three_chiplets, NodeTuple, SocBlocks};
use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::report::CarbonReport;
use crate::system::System;

/// One point of a sweep: the label, the evaluated system and its report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable label (node tuple, packaging name, ratio, …).
    pub label: String,
    /// The evaluated system.
    pub system: System,
    /// The carbon report.
    pub report: CarbonReport,
}

/// Sweep the `(digital, memory, analog)` technology-node tuples of a
/// 3-chiplet split of `blocks` (the x-axis of Fig. 7).
///
/// The returned points keep the order of `tuples`. The base system provides
/// the packaging, usage profile, lifetime and volumes.
///
/// # Errors
///
/// Propagates estimator errors for any tuple.
pub fn sweep_node_tuples(
    estimator: &EcoChip,
    base: &System,
    blocks: &SocBlocks,
    tuples: &[NodeTuple],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    let mut points = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        let mut system = base.clone();
        system.chiplets = three_chiplets(blocks, *tuple);
        system.name = format!("{} {}", blocks.name, tuple.label());
        let report = estimator.estimate(&system)?;
        points.push(SweepPoint {
            label: tuple.label(),
            system,
            report,
        });
    }
    Ok(points)
}

/// Sweep packaging architectures over an otherwise fixed system (Fig. 9).
///
/// # Errors
///
/// Propagates estimator errors for any architecture.
pub fn sweep_packaging(
    estimator: &EcoChip,
    base: &System,
    architectures: &[PackagingArchitecture],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    let mut points = Vec::with_capacity(architectures.len());
    for arch in architectures {
        let system = base.with_packaging(*arch);
        let report = estimator.estimate(&system)?;
        points.push(SweepPoint {
            label: arch.short_name().to_owned(),
            system,
            report,
        });
    }
    Ok(points)
}

/// One cell of the reuse-ratio × lifetime grid of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReusePoint {
    /// The chiplet-reuse ratio `NMi / NS`.
    pub reuse_ratio: f64,
    /// The deployment lifetime.
    pub lifetime: TimeSpan,
    /// Embodied CFP at this reuse ratio.
    pub embodied: Carbon,
    /// Total CFP at this reuse ratio and lifetime.
    pub total: Carbon,
}

/// Sweep chiplet-reuse ratios (`NMi / NS`) and lifetimes (Fig. 12).
///
/// The base system's `system_volume` is kept; `NMi` is scaled by each ratio.
///
/// # Errors
///
/// Propagates estimator errors for any point.
pub fn sweep_reuse(
    estimator: &EcoChip,
    base: &System,
    reuse_ratios: &[f64],
    lifetimes_years: &[f64],
) -> Result<Vec<ReusePoint>, EcoChipError> {
    let mut points = Vec::with_capacity(reuse_ratios.len() * lifetimes_years.len());
    for &ratio in reuse_ratios {
        let volumes = VolumeScenario::with_reuse(base.volumes.system_volume, ratio);
        let system = base.with_volumes(volumes);
        let report = estimator.estimate(&system)?;
        for &years in lifetimes_years {
            let lifetime = TimeSpan::from_years(years);
            points.push(ReusePoint {
                reuse_ratio: ratio,
                lifetime,
                embodied: report.embodied(),
                total: report.total_at_lifetime(lifetime),
            });
        }
    }
    Ok(points)
}

/// The objective minimised by [`optimize_node_assignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Objective {
    /// Minimise the embodied CFP (`C_emb`).
    Embodied,
    /// Minimise the total CFP (`C_tot`) at the system's lifetime.
    Total,
    /// Minimise the manufacturing CFP plus HI overheads only.
    ManufacturingAndHi,
}

impl Objective {
    fn score(&self, report: &CarbonReport) -> f64 {
        match self {
            Objective::Embodied => report.embodied().kg(),
            Objective::Total => report.total().kg(),
            Objective::ManufacturingAndHi => (report.manufacturing() + report.hi_overhead()).kg(),
        }
    }
}

/// Exhaustively search per-chiplet technology-node assignments and return the
/// assignment minimising the chosen objective — the carbon-aware
/// disaggregation flow of Section VI of the paper.
///
/// `candidates[i]` lists the nodes allowed for chiplet `i`; chiplets without
/// a candidate list keep their current node. The search is exhaustive (the
/// cross product of the candidate lists), which matches the paper's scale of
/// a handful of chiplets and a handful of nodes; the number of evaluated
/// configurations is returned alongside the winner.
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] when `candidates` is longer than
/// the chiplet list, and propagates estimator errors.
pub fn optimize_node_assignment(
    estimator: &EcoChip,
    base: &System,
    candidates: &[Vec<ecochip_techdb::TechNode>],
    objective: Objective,
) -> Result<(SweepPoint, usize), EcoChipError> {
    if candidates.len() > base.chiplets.len() {
        return Err(EcoChipError::InvalidSystem(format!(
            "got candidate node lists for {} chiplets but the system has only {}",
            candidates.len(),
            base.chiplets.len()
        )));
    }
    let lists: Vec<Vec<ecochip_techdb::TechNode>> = (0..base.chiplets.len())
        .map(|i| {
            candidates
                .get(i)
                .filter(|c| !c.is_empty())
                .cloned()
                .unwrap_or_else(|| vec![base.chiplets[i].node])
        })
        .collect();

    let mut indices = vec![0usize; lists.len()];
    let mut best: Option<(SweepPoint, f64)> = None;
    let mut evaluated = 0usize;
    loop {
        let mut system = base.clone();
        let mut label_parts = Vec::with_capacity(lists.len());
        for (i, list) in lists.iter().enumerate() {
            let node = list[indices[i]];
            system.chiplets[i] = system.chiplets[i].retargeted(node);
            label_parts.push(node.nm().to_string());
        }
        system.name = format!("{} ({})", base.name, label_parts.join(", "));
        let report = estimator.estimate(&system)?;
        let score = objective.score(&report);
        evaluated += 1;
        let point = SweepPoint {
            label: format!("({})", label_parts.join(", ")),
            system,
            report,
        };
        match &best {
            Some((_, best_score)) if *best_score <= score => {}
            _ => best = Some((point, score)),
        }

        // Advance the mixed-radix counter.
        let mut position = lists.len();
        loop {
            if position == 0 {
                let (winner, _) = best.expect("at least one configuration evaluated");
                return Ok((winner, evaluated));
            }
            position -= 1;
            indices[position] += 1;
            if indices[position] < lists[position].len() {
                break;
            }
            indices[position] = 0;
        }
    }
}

/// Carbon-delay / carbon-power / carbon-area product curves (Figs. 13–14).
///
/// The performance (delay), power and area of an architecture are
/// application-specific inputs; ECO-CHIP combines them with the total CFP to
/// produce the product metrics used for design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductMetrics {
    /// Total CFP of the configuration.
    pub carbon: Carbon,
    /// End-to-end delay / latency of the workload.
    pub delay_s: f64,
    /// Operational power of the configuration.
    pub power: Power,
    /// 2D silicon (or package footprint) area.
    pub area: Area,
}

impl ProductMetrics {
    /// Assemble metrics from a report plus application-level numbers.
    pub fn from_report(report: &CarbonReport, delay_s: f64, power: Power, area: Area) -> Self {
        Self {
            carbon: report.total(),
            delay_s,
            power,
            area,
        }
    }

    /// Carbon-delay product (kg CO₂e · s).
    pub fn carbon_delay(&self) -> f64 {
        self.carbon.kg() * self.delay_s
    }

    /// Carbon-power product (kg CO₂e · W).
    pub fn carbon_power(&self) -> f64 {
        self.carbon.kg() * self.power.watts()
    }

    /// Carbon-area product (kg CO₂e · mm²).
    pub fn carbon_area(&self) -> f64 {
        self.carbon.kg() * self.area.mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use ecochip_packaging::{InterposerConfig, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig};
    use ecochip_power::UsageProfile;
    use ecochip_techdb::{Energy, TechNode};

    fn blocks() -> SocBlocks {
        SocBlocks::new("ga102", 20.0e9, 6.0e9, 2.3e9)
    }

    fn base_system() -> System {
        System::builder("base")
            .chiplets(three_chiplets(
                &blocks(),
                NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
            ))
            .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
            .usage(UsageProfile::Measured {
                energy_per_year: Energy::from_kwh(228.0),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn node_tuple_sweep_finds_mix_and_match_minimum() {
        // Fig. 7(a): the (7, 14, 10)-style mixed configuration beats the
        // all-advanced (7, 7, 7) one on embodied carbon.
        let estimator = EcoChip::default();
        let tuples = [
            NodeTuple::uniform(TechNode::N7),
            NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
            NodeTuple::uniform(TechNode::N10),
        ];
        let points = sweep_node_tuples(&estimator, &base_system(), &blocks(), &tuples).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].label, "(7, 7, 7)");
        let all7 = points[0].report.embodied().kg();
        let mixed = points[1].report.embodied().kg();
        assert!(
            mixed < all7,
            "mix-and-match {mixed} should beat all-7nm {all7}"
        );
    }

    #[test]
    fn packaging_sweep_orders_interposers_last() {
        let estimator = EcoChip::default();
        let archs = [
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ];
        let points = sweep_packaging(&estimator, &base_system(), &archs).unwrap();
        assert_eq!(points.len(), 4);
        let by_label = |label: &str| {
            points
                .iter()
                .find(|p| p.label == label)
                .unwrap()
                .report
                .hi_overhead()
                .kg()
        };
        assert!(by_label("active-interposer") > by_label("RDL"));
        assert!(by_label("active-interposer") > by_label("EMIB"));
    }

    #[test]
    fn reuse_sweep_shows_embodied_amortization_and_lifetime_growth() {
        let estimator = EcoChip::default();
        let points = sweep_reuse(
            &estimator,
            &base_system(),
            &[1.0, 4.0, 16.0],
            &[1.0, 3.0, 5.0],
        )
        .unwrap();
        assert_eq!(points.len(), 9);
        // Embodied falls with the reuse ratio (same lifetime).
        let emb_at = |ratio: f64| {
            points
                .iter()
                .find(|p| {
                    (p.reuse_ratio - ratio).abs() < 1e-9 && (p.lifetime.years() - 1.0).abs() < 1e-9
                })
                .unwrap()
                .embodied
                .kg()
        };
        assert!(emb_at(16.0) < emb_at(4.0));
        assert!(emb_at(4.0) < emb_at(1.0));
        // Total grows with lifetime (same ratio).
        let tot_at = |years: f64| {
            points
                .iter()
                .find(|p| {
                    (p.reuse_ratio - 1.0).abs() < 1e-9 && (p.lifetime.years() - years).abs() < 1e-9
                })
                .unwrap()
                .total
                .kg()
        };
        assert!(tot_at(5.0) > tot_at(3.0));
        assert!(tot_at(3.0) > tot_at(1.0));
    }

    #[test]
    fn optimizer_finds_the_mix_and_match_assignment() {
        let estimator = EcoChip::default();
        let base = base_system();
        let candidates = vec![
            vec![TechNode::N7, TechNode::N10],
            vec![TechNode::N7, TechNode::N10, TechNode::N14],
            vec![TechNode::N7, TechNode::N10, TechNode::N14],
        ];
        let (winner, evaluated) =
            optimize_node_assignment(&estimator, &base, &candidates, Objective::Embodied).unwrap();
        assert_eq!(evaluated, 2 * 3 * 3);
        // The winner keeps logic in the advanced node and moves memory /
        // analog to mature nodes.
        assert_eq!(winner.system.chiplets[0].node, TechNode::N7);
        assert!(winner.system.chiplets[1].node.is_older_than(TechNode::N7));
        // It is at least as good as both uniform assignments.
        let all7 = estimator
            .estimate(&{
                let mut s = base.clone();
                for c in &mut s.chiplets {
                    *c = c.retargeted(TechNode::N7);
                }
                s
            })
            .unwrap();
        assert!(winner.report.embodied().kg() <= all7.embodied().kg());
    }

    #[test]
    fn optimizer_objectives_and_validation() {
        let estimator = EcoChip::default();
        let base = base_system();
        // Missing candidate lists keep the existing node.
        let (winner, evaluated) =
            optimize_node_assignment(&estimator, &base, &[], Objective::Total).unwrap();
        assert_eq!(evaluated, 1);
        assert_eq!(winner.system.chiplet_nodes(), base.chiplet_nodes());
        // Too many candidate lists are rejected.
        let too_many = vec![vec![TechNode::N7]; 5];
        assert!(optimize_node_assignment(
            &estimator,
            &base,
            &too_many,
            Objective::ManufacturingAndHi
        )
        .is_err());
    }

    #[test]
    fn product_metrics() {
        let estimator = EcoChip::default();
        let report = estimator.estimate(&base_system()).unwrap();
        let m = ProductMetrics::from_report(
            &report,
            2.0e-3,
            Power::from_watts(10.0),
            Area::from_mm2(100.0),
        );
        assert!((m.carbon_delay() - report.total().kg() * 2.0e-3).abs() < 1e-9);
        assert!((m.carbon_power() - report.total().kg() * 10.0).abs() < 1e-9);
        assert!((m.carbon_area() - report.total().kg() * 100.0).abs() < 1e-6);
    }
}
