//! Design-space-exploration sweeps and product curves (Sections V and VI).
//!
//! Every sweep in this module is built on the [`crate::sweep`] subsystem:
//! the functions below declare a [`SweepSpec`] and hand it to the parallel,
//! memoizing, streaming [`SweepEngine`], so they all inherit multi-core
//! evaluation, cross-point floorplan / manufacturing reuse and the bounded
//! reorder window of the streaming pipeline while returning exactly what
//! their original serial loops produced. The `*_spec` builders expose each
//! study's [`SweepSpec`] directly, so callers can stream, shard or memoize
//! any of them through [`SweepEngine::run_streaming_with`] or
//! [`EcoChipService`](crate::EcoChipService) instead of collecting a `Vec`.

use serde::{Deserialize, Serialize};

use ecochip_packaging::PackagingArchitecture;
use ecochip_techdb::{Area, Carbon, EnergySource, Power, TimeSpan};

use crate::disaggregation::{NodeTuple, SocBlocks};
use crate::error::EcoChipError;
use crate::estimator::EcoChip;
use crate::report::CarbonReport;
use crate::sweep::{MappedSpec, Shard, SweepAxis, SweepContext, SweepEngine, SweepSpec};
use crate::system::System;

pub use crate::sweep::SweepPoint;

/// The sweep spec behind [`sweep_node_tuples`]: `(digital, memory, analog)`
/// technology-node tuples over a 3-chiplet split of `blocks` (Fig. 7).
pub fn node_tuple_spec(base: &System, blocks: &SocBlocks, tuples: &[NodeTuple]) -> SweepSpec {
    SweepSpec::new(base.clone()).axis(SweepAxis::NodeTuples {
        blocks: blocks.clone(),
        tuples: tuples.to_vec(),
    })
}

/// The sweep spec behind [`sweep_packaging`]: packaging architectures over
/// an otherwise fixed system (Fig. 9).
pub fn packaging_spec(base: &System, architectures: &[PackagingArchitecture]) -> SweepSpec {
    SweepSpec::new(base.clone()).axis(SweepAxis::Packaging(architectures.to_vec()))
}

/// The sweep spec behind [`sweep_chiplet_counts`]: digital-chiplet counts
/// with fixed memory / analog chiplets (Figs. 10, 15(b)).
pub fn chiplet_count_spec(
    base: &System,
    blocks: &SocBlocks,
    nodes: NodeTuple,
    counts: &[usize],
) -> SweepSpec {
    SweepSpec::new(base.clone()).axis(SweepAxis::ChipletCounts {
        blocks: blocks.clone(),
        nodes,
        counts: counts.to_vec(),
    })
}

/// The sweep spec behind [`sweep_energy_sources`]: fab energy sources
/// (`Cmfg,src`, Fig. 3(a) / Table I) over a fixed system.
pub fn energy_source_spec(base: &System, sources: &[EnergySource]) -> SweepSpec {
    SweepSpec::new(base.clone()).axis(SweepAxis::FabEnergySources(sources.to_vec()))
}

/// Sweep the `(digital, memory, analog)` technology-node tuples of a
/// 3-chiplet split of `blocks` (the x-axis of Fig. 7).
///
/// The returned points keep the order of `tuples`. The base system provides
/// the packaging, usage profile, lifetime and volumes.
///
/// # Errors
///
/// Propagates estimator errors for any tuple.
pub fn sweep_node_tuples(
    estimator: &EcoChip,
    base: &System,
    blocks: &SocBlocks,
    tuples: &[NodeTuple],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    SweepEngine::new().run(estimator, &node_tuple_spec(base, blocks, tuples))
}

/// Sweep packaging architectures over an otherwise fixed system (Fig. 9).
///
/// # Errors
///
/// Propagates estimator errors for any architecture.
pub fn sweep_packaging(
    estimator: &EcoChip,
    base: &System,
    architectures: &[PackagingArchitecture],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    SweepEngine::new().run(estimator, &packaging_spec(base, architectures))
}

/// Sweep the number of digital chiplets the SoC's logic block is split into
/// (the x-axis of Figs. 10 and 15(b)); memory and analog chiplets stay fixed.
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] for a zero chiplet count and
/// propagates estimator errors for any point.
pub fn sweep_chiplet_counts(
    estimator: &EcoChip,
    base: &System,
    blocks: &SocBlocks,
    nodes: NodeTuple,
    counts: &[usize],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    SweepEngine::new().run(estimator, &chiplet_count_spec(base, blocks, nodes, counts))
}

/// Sweep the energy source powering the chip-manufacturing fab (the
/// `Cmfg,src` axis of Fig. 3(a) / Table I) over a fixed system.
///
/// # Errors
///
/// Propagates estimator errors for any source.
pub fn sweep_energy_sources(
    estimator: &EcoChip,
    base: &System,
    sources: &[EnergySource],
) -> Result<Vec<SweepPoint>, EcoChipError> {
    SweepEngine::new().run(estimator, &energy_source_spec(base, sources))
}

/// The sweep spec behind [`sweep_reuse`]'s estimator axis: chiplet-reuse
/// ratios scaling the base system's volume scenario (Fig. 12).
pub fn reuse_spec(base: &System, reuse_ratios: &[f64]) -> SweepSpec {
    SweepSpec::new(base.clone()).axis(SweepAxis::reuse_ratios(
        base.volumes.system_volume,
        reuse_ratios,
    ))
}

/// The axis names accepted by [`named_sweep_axis`] (the CLI's `--sweep`
/// values and the HTTP service's `"axis"` request field).
pub const NAMED_SWEEP_AXES: &str = "nodes|packaging|volume|lifetime|energy";

/// Build one of the named, paper-canonical sweep axes over `base`.
///
/// These are the studies every front end exposes by name — the CLI's
/// `--sweep <name>` and the HTTP service's `{"axis": "<name>"}` — so they
/// live here, next to the spec builders, and every front end resolves a name
/// to the *same* axis (and therefore the same bit-for-bit sweep output):
///
/// * `nodes` — retarget every chiplet jointly across N5…N16,
/// * `packaging` — RDL, EMIB, passive/active interposer, 3D,
/// * `volume` — chiplet-reuse ratios 1–16× of the base system volume,
/// * `lifetime` — deployment lifetimes of 1–8 years,
/// * `energy` — fab energy sources from coal to wind.
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] for an unknown name (the message
/// lists [`NAMED_SWEEP_AXES`]).
pub fn named_sweep_axis(name: &str, base: &System) -> Result<SweepAxis, EcoChipError> {
    use ecochip_packaging::{InterposerConfig, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig};
    use ecochip_techdb::TechNode;

    let axis = match name {
        "nodes" => {
            // Retarget every chiplet jointly across advanced-to-mature nodes.
            let nodes = [
                TechNode::N5,
                TechNode::N7,
                TechNode::N8,
                TechNode::N10,
                TechNode::N12,
                TechNode::N14,
                TechNode::N16,
            ];
            let variants = nodes
                .into_iter()
                .map(|node| {
                    let mut system = base.clone();
                    for chiplet in &mut system.chiplets {
                        *chiplet = chiplet.retargeted(node);
                    }
                    (node.to_string(), system)
                })
                .collect();
            SweepAxis::Systems(variants)
        }
        "packaging" => SweepAxis::Packaging(vec![
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ]),
        "volume" => {
            SweepAxis::reuse_ratios(base.volumes.system_volume, &[1.0, 2.0, 4.0, 8.0, 16.0])
        }
        "lifetime" => SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0]),
        "energy" => SweepAxis::FabEnergySources(vec![
            EnergySource::Coal,
            EnergySource::NaturalGas,
            EnergySource::WorldGrid,
            EnergySource::Biomass,
            EnergySource::Solar,
            EnergySource::Nuclear,
            EnergySource::Wind,
        ]),
        other => {
            return Err(EcoChipError::InvalidSystem(format!(
                "unknown sweep axis {other:?} (expected {NAMED_SWEEP_AXES})"
            )))
        }
    };
    Ok(axis)
}

/// One cell of the reuse-ratio × lifetime grid of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReusePoint {
    /// The chiplet-reuse ratio `NMi / NS`.
    pub reuse_ratio: f64,
    /// The deployment lifetime.
    pub lifetime: TimeSpan,
    /// Embodied CFP at this reuse ratio.
    pub embodied: Carbon,
    /// Total CFP at this reuse ratio and lifetime.
    pub total: Carbon,
}

/// Sweep chiplet-reuse ratios (`NMi / NS`) and lifetimes (Fig. 12).
///
/// The base system's `system_volume` is kept; `NMi` is scaled by each ratio.
/// Only the ratio axis re-runs the estimator (one parallel sweep); the
/// lifetime axis is evaluated analytically, since Eq. 1 is linear in the
/// lifetime.
///
/// # Errors
///
/// Propagates estimator errors for any point.
pub fn sweep_reuse(
    estimator: &EcoChip,
    base: &System,
    reuse_ratios: &[f64],
    lifetimes_years: &[f64],
) -> Result<Vec<ReusePoint>, EcoChipError> {
    let spec = reuse_spec(base, reuse_ratios);
    let points = SweepEngine::new().run(estimator, &spec)?;

    let mut grid = Vec::with_capacity(reuse_ratios.len() * lifetimes_years.len());
    for (&ratio, point) in reuse_ratios.iter().zip(&points) {
        for &years in lifetimes_years {
            let lifetime = TimeSpan::from_years(years);
            grid.push(ReusePoint {
                reuse_ratio: ratio,
                lifetime,
                embodied: point.report.embodied(),
                total: point.report.total_at_lifetime(lifetime),
            });
        }
    }
    Ok(grid)
}

/// The objective minimised by [`optimize_node_assignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Objective {
    /// Minimise the embodied CFP (`C_emb`).
    Embodied,
    /// Minimise the total CFP (`C_tot`) at the system's lifetime.
    Total,
    /// Minimise the manufacturing CFP plus HI overheads only.
    ManufacturingAndHi,
}

impl Objective {
    fn score(&self, report: &CarbonReport) -> f64 {
        match self {
            Objective::Embodied => report.embodied().kg(),
            Objective::Total => report.total().kg(),
            Objective::ManufacturingAndHi => (report.manufacturing() + report.hi_overhead()).kg(),
        }
    }
}

/// Exhaustively search per-chiplet technology-node assignments and return the
/// assignment minimising the chosen objective — the carbon-aware
/// disaggregation flow of Section VI of the paper.
///
/// `candidates[i]` lists the nodes allowed for chiplet `i`; chiplets without
/// a candidate list keep their current node. The search space is the cross
/// product of the candidate lists — one [`SweepAxis::ChipletNode`] per
/// chiplet — streamed through the sweep engine with a running-minimum sink,
/// so only the incumbent best point is ever held in memory no matter how
/// large the space is; the number of evaluated configurations is returned
/// alongside the winner. Ties keep the earliest configuration in sweep
/// order, so results are deterministic.
///
/// # Errors
///
/// Returns [`EcoChipError::InvalidSystem`] when `candidates` is longer than
/// the chiplet list, and propagates estimator errors.
pub fn optimize_node_assignment(
    estimator: &EcoChip,
    base: &System,
    candidates: &[Vec<ecochip_techdb::TechNode>],
    objective: Objective,
) -> Result<(SweepPoint, usize), EcoChipError> {
    if candidates.len() > base.chiplets.len() {
        return Err(EcoChipError::InvalidSystem(format!(
            "got candidate node lists for {} chiplets but the system has only {}",
            candidates.len(),
            base.chiplets.len()
        )));
    }
    let mut spec = SweepSpec::new(base.clone());
    for (i, chiplet) in base.chiplets.iter().enumerate() {
        let nodes = candidates
            .get(i)
            .filter(|c| !c.is_empty())
            .cloned()
            .unwrap_or_else(|| vec![chiplet.node]);
        spec = spec.axis(SweepAxis::ChipletNode { index: i, nodes });
    }

    // Cases are relabeled as they are decoded — "(7, 14, 10)"-style instead
    // of the per-axis "7 / 14 / 10" — without materializing the product.
    let source = MappedSpec {
        spec: &spec,
        map: |mut case: crate::sweep::SweepCase| {
            let joined = case.labels.join(", ");
            case.system.name = format!("{} ({joined})", base.name);
            case.labels = vec![format!("({joined})")];
            case
        },
    };

    let mut evaluated = 0usize;
    let mut best: Option<(SweepPoint, f64)> = None;
    SweepEngine::new().stream(
        estimator,
        &source,
        Shard::FULL,
        &SweepContext::new(),
        None,
        &mut |point: SweepPoint| {
            evaluated += 1;
            let score = objective.score(&point.report);
            if best
                .as_ref()
                .is_none_or(|(_, incumbent)| score < *incumbent)
            {
                best = Some((point, score));
            }
            Ok(())
        },
    )?;
    let (winner, _) = best.expect("at least one configuration evaluated");
    Ok((winner, evaluated))
}

/// Carbon-delay / carbon-power / carbon-area product curves (Figs. 13–14).
///
/// The performance (delay), power and area of an architecture are
/// application-specific inputs; ECO-CHIP combines them with the total CFP to
/// produce the product metrics used for design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductMetrics {
    /// Total CFP of the configuration.
    pub carbon: Carbon,
    /// End-to-end delay / latency of the workload.
    pub delay_s: f64,
    /// Operational power of the configuration.
    pub power: Power,
    /// 2D silicon (or package footprint) area.
    pub area: Area,
}

impl ProductMetrics {
    /// Assemble metrics from a report plus application-level numbers.
    pub fn from_report(report: &CarbonReport, delay_s: f64, power: Power, area: Area) -> Self {
        Self {
            carbon: report.total(),
            delay_s,
            power,
            area,
        }
    }

    /// Carbon-delay product (kg CO₂e · s).
    pub fn carbon_delay(&self) -> f64 {
        self.carbon.kg() * self.delay_s
    }

    /// Carbon-power product (kg CO₂e · W).
    pub fn carbon_power(&self) -> f64 {
        self.carbon.kg() * self.power.watts()
    }

    /// Carbon-area product (kg CO₂e · mm²).
    pub fn carbon_area(&self) -> f64 {
        self.carbon.kg() * self.area.mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disaggregation::three_chiplets;
    use crate::system::System;
    use ecochip_packaging::{InterposerConfig, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig};
    use ecochip_power::UsageProfile;
    use ecochip_techdb::{Energy, TechNode};

    fn blocks() -> SocBlocks {
        SocBlocks::new("ga102", 20.0e9, 6.0e9, 2.3e9)
    }

    fn base_system() -> System {
        System::builder("base")
            .chiplets(three_chiplets(
                &blocks(),
                NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
            ))
            .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
            .usage(UsageProfile::Measured {
                energy_per_year: Energy::from_kwh(228.0),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn named_axes_resolve_and_reject_unknown_names() {
        let base = base_system();
        for name in NAMED_SWEEP_AXES.split('|') {
            let axis = named_sweep_axis(name, &base).unwrap();
            assert!(!axis.is_empty(), "axis {name:?} has no points");
            // Every named axis produces a runnable spec.
            let spec = SweepSpec::new(base.clone()).axis(axis);
            assert!(spec.try_len().unwrap() > 0);
            assert!(spec.case_at(0).is_ok(), "axis {name:?} fails to decode");
        }
        assert!(matches!(
            named_sweep_axis("bogus", &base),
            Err(EcoChipError::InvalidSystem(_))
        ));
    }

    #[test]
    fn node_tuple_sweep_finds_mix_and_match_minimum() {
        // Fig. 7(a): the (7, 14, 10)-style mixed configuration beats the
        // all-advanced (7, 7, 7) one on embodied carbon.
        let estimator = EcoChip::default();
        let tuples = [
            NodeTuple::uniform(TechNode::N7),
            NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
            NodeTuple::uniform(TechNode::N10),
        ];
        let points = sweep_node_tuples(&estimator, &base_system(), &blocks(), &tuples).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].label, "(7, 7, 7)");
        let all7 = points[0].report.embodied().kg();
        let mixed = points[1].report.embodied().kg();
        assert!(
            mixed < all7,
            "mix-and-match {mixed} should beat all-7nm {all7}"
        );
    }

    #[test]
    fn packaging_sweep_orders_interposers_last() {
        let estimator = EcoChip::default();
        let archs = [
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ];
        let points = sweep_packaging(&estimator, &base_system(), &archs).unwrap();
        assert_eq!(points.len(), 4);
        let by_label = |label: &str| {
            points
                .iter()
                .find(|p| p.label == label)
                .unwrap()
                .report
                .hi_overhead()
                .kg()
        };
        assert!(by_label("active-interposer") > by_label("RDL"));
        assert!(by_label("active-interposer") > by_label("EMIB"));
    }

    #[test]
    fn chiplet_count_sweep_trades_manufacturing_for_hi() {
        let estimator = EcoChip::default();
        let nodes = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
        let points =
            sweep_chiplet_counts(&estimator, &base_system(), &blocks(), nodes, &[1, 2, 4, 6])
                .unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "Nc=1");
        assert_eq!(points[3].system.chiplets.len(), 8);
        // Fig. 10: splitting the digital block lowers Cmfg but raises CHI.
        let first = &points[0].report;
        let last = &points[3].report;
        assert!(last.manufacturing().kg() < first.manufacturing().kg());
        assert!(last.hi_overhead().kg() > first.hi_overhead().kg());
    }

    #[test]
    fn energy_source_sweep_only_moves_manufacturing() {
        let estimator = EcoChip::default();
        let points = sweep_energy_sources(
            &estimator,
            &base_system(),
            &[EnergySource::Coal, EnergySource::Solar, EnergySource::Wind],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].label, "coal");
        let mfg: Vec<f64> = points
            .iter()
            .map(|p| p.report.manufacturing().kg())
            .collect();
        assert!(mfg[1] < mfg[0] && mfg[2] < mfg[1]);
        // The coal point matches the base estimator bit-for-bit.
        let direct = estimator.estimate(&points[0].system).unwrap();
        assert_eq!(direct, points[0].report);
    }

    #[test]
    fn reuse_sweep_shows_embodied_amortization_and_lifetime_growth() {
        let estimator = EcoChip::default();
        let points = sweep_reuse(
            &estimator,
            &base_system(),
            &[1.0, 4.0, 16.0],
            &[1.0, 3.0, 5.0],
        )
        .unwrap();
        assert_eq!(points.len(), 9);
        // Embodied falls with the reuse ratio (same lifetime).
        let emb_at = |ratio: f64| {
            points
                .iter()
                .find(|p| {
                    (p.reuse_ratio - ratio).abs() < 1e-9 && (p.lifetime.years() - 1.0).abs() < 1e-9
                })
                .unwrap()
                .embodied
                .kg()
        };
        assert!(emb_at(16.0) < emb_at(4.0));
        assert!(emb_at(4.0) < emb_at(1.0));
        // Total grows with lifetime (same ratio).
        let tot_at = |years: f64| {
            points
                .iter()
                .find(|p| {
                    (p.reuse_ratio - 1.0).abs() < 1e-9 && (p.lifetime.years() - years).abs() < 1e-9
                })
                .unwrap()
                .total
                .kg()
        };
        assert!(tot_at(5.0) > tot_at(3.0));
        assert!(tot_at(3.0) > tot_at(1.0));
    }

    #[test]
    fn optimizer_finds_the_mix_and_match_assignment() {
        let estimator = EcoChip::default();
        let base = base_system();
        let candidates = vec![
            vec![TechNode::N7, TechNode::N10],
            vec![TechNode::N7, TechNode::N10, TechNode::N14],
            vec![TechNode::N7, TechNode::N10, TechNode::N14],
        ];
        let (winner, evaluated) =
            optimize_node_assignment(&estimator, &base, &candidates, Objective::Embodied).unwrap();
        assert_eq!(evaluated, 2 * 3 * 3);
        // The winner keeps logic in the advanced node and moves memory /
        // analog to mature nodes.
        assert_eq!(winner.system.chiplets[0].node, TechNode::N7);
        assert!(winner.system.chiplets[1].node.is_older_than(TechNode::N7));
        // It is at least as good as both uniform assignments.
        let all7 = estimator
            .estimate(&{
                let mut s = base.clone();
                for c in &mut s.chiplets {
                    *c = c.retargeted(TechNode::N7);
                }
                s
            })
            .unwrap();
        assert!(winner.report.embodied().kg() <= all7.embodied().kg());
    }

    #[test]
    fn optimizer_objectives_and_validation() {
        let estimator = EcoChip::default();
        let base = base_system();
        // Missing candidate lists keep the existing node.
        let (winner, evaluated) =
            optimize_node_assignment(&estimator, &base, &[], Objective::Total).unwrap();
        assert_eq!(evaluated, 1);
        assert_eq!(winner.system.chiplet_nodes(), base.chiplet_nodes());
        assert_eq!(winner.label, "(7, 14, 10)");
        assert_eq!(winner.system.name, "base (7, 14, 10)");
        // Too many candidate lists are rejected.
        let too_many = vec![vec![TechNode::N7]; 5];
        assert!(optimize_node_assignment(
            &estimator,
            &base,
            &too_many,
            Objective::ManufacturingAndHi
        )
        .is_err());
    }

    #[test]
    fn product_metrics() {
        let estimator = EcoChip::default();
        let report = estimator.estimate(&base_system()).unwrap();
        let m = ProductMetrics::from_report(
            &report,
            2.0e-3,
            Power::from_watts(10.0),
            Area::from_mm2(100.0),
        );
        assert!((m.carbon_delay() - report.total().kg() * 2.0e-3).abs() < 1e-9);
        assert!((m.carbon_power() - report.total().kg() * 10.0).abs() < 1e-9);
        assert!((m.carbon_area() - report.total().kg() * 100.0).abs() < 1e-6);
    }
}
