//! The carbon report produced by the estimator.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, Carbon, Power, TechNode, TimeSpan};
use ecochip_yield::DieYield;

use crate::manufacturing::ChipletManufacturing;

/// Per-chiplet slice of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipletReport {
    /// Name of the chiplet.
    pub name: String,
    /// Implementation node.
    pub node: TechNode,
    /// Base silicon area of the functional block.
    pub base_area: Area,
    /// Extra area added for inter-die communication circuitry (routers, NICs,
    /// PHYs).
    pub comm_area: Area,
    /// Manufacturing breakdown (computed on `base_area + comm_area`).
    pub manufacturing: ChipletManufacturing,
    /// Design CFP amortised per manufactured part.
    pub design: Carbon,
}

impl ChipletReport {
    /// Total area manufactured for this chiplet.
    pub fn total_area(&self) -> Area {
        self.base_area + self.comm_area
    }

    /// Die yield of this chiplet.
    pub fn die_yield(&self) -> DieYield {
        self.manufacturing.die_yield
    }
}

impl fmt::Display for ChipletReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}: {} area, mfg {}, design {}",
            self.name,
            self.node,
            self.total_area(),
            self.manufacturing.total(),
            self.design
        )
    }
}

/// Breakdown of the HI (heterogeneous-integration) overheads `C_HI`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HiBreakdown {
    /// Package substrate / interposer / bridge / bonding CFP (`C_package`).
    pub package: Carbon,
    /// Manufacturing CFP of communication logic implemented in the interposer
    /// (active interposers only; router area in the chiplets is part of the
    /// per-chiplet manufacturing CFP instead).
    pub interposer_comm: Carbon,
    /// Area of the package substrate / interposer.
    pub package_area: Area,
    /// Whitespace on the substrate / interposer.
    pub whitespace_area: Area,
    /// Package assembly yield.
    pub assembly_yield: DieYield,
    /// Total power drawn by communication circuitry (added to operational
    /// energy).
    pub comm_power: Power,
}

impl HiBreakdown {
    /// Total HI overhead carbon (`C_HI`).
    pub fn total(&self) -> Carbon {
        self.package + self.interposer_comm
    }

    /// A zero breakdown (monolithic systems).
    pub fn none() -> Self {
        Self {
            package: Carbon::ZERO,
            interposer_comm: Carbon::ZERO,
            package_area: Area::ZERO,
            whitespace_area: Area::ZERO,
            assembly_yield: DieYield::PERFECT,
            comm_power: Power::ZERO,
        }
    }
}

/// The complete carbon report for one system (Eqs. 1–3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonReport {
    /// Name of the system analysed.
    pub system_name: String,
    /// Per-chiplet breakdowns.
    pub chiplets: Vec<ChipletReport>,
    /// HI overheads.
    pub hi: HiBreakdown,
    /// Design CFP of the communication fabric amortised per system.
    pub comm_design: Carbon,
    /// Operational CFP per year of deployment.
    pub operational_per_year: Carbon,
    /// Deployment lifetime used for the total.
    pub lifetime: TimeSpan,
}

impl CarbonReport {
    /// Total manufacturing CFP of all chiplets (`C_mfg`).
    pub fn manufacturing(&self) -> Carbon {
        self.chiplets.iter().map(|c| c.manufacturing.total()).sum()
    }

    /// Total amortised design CFP (`C_des`), including the communication
    /// fabric.
    pub fn design(&self) -> Carbon {
        self.chiplets.iter().map(|c| c.design).sum::<Carbon>() + self.comm_design
    }

    /// Total HI overhead CFP (`C_HI`).
    pub fn hi_overhead(&self) -> Carbon {
        self.hi.total()
    }

    /// Embodied CFP (`C_emb = C_mfg + C_des + C_HI`, Eq. 2).
    pub fn embodied(&self) -> Carbon {
        self.manufacturing() + self.design() + self.hi_overhead()
    }

    /// Operational CFP over the full lifetime (`lifetime × C_op`).
    pub fn operational(&self) -> Carbon {
        self.operational_per_year * self.lifetime.years().max(0.0)
    }

    /// Total CFP (`C_tot = C_emb + lifetime × C_op`, Eq. 1).
    pub fn total(&self) -> Carbon {
        self.embodied() + self.operational()
    }

    /// Fraction of the total CFP that is embodied, in `[0, 1]`.
    pub fn embodied_fraction(&self) -> f64 {
        let total = self.total().kg();
        if total <= 0.0 {
            0.0
        } else {
            (self.embodied().kg() / total).clamp(0.0, 1.0)
        }
    }

    /// Total silicon area manufactured (chiplets + communication overheads).
    pub fn silicon_area(&self) -> Area {
        self.chiplets.iter().map(|c| c.total_area()).sum()
    }

    /// The total CFP evaluated at a different lifetime, without re-running the
    /// estimator (Eq. 1 is linear in the lifetime).
    pub fn total_at_lifetime(&self, lifetime: TimeSpan) -> Carbon {
        self.embodied() + self.operational_per_year * lifetime.years().max(0.0)
    }

    /// The top-level breakdown as `(component, carbon)` rows, in the order the
    /// paper presents them: manufacturing, design, HI, embodied, operational,
    /// total.
    pub fn breakdown(&self) -> Vec<(&'static str, Carbon)> {
        vec![
            ("manufacturing", self.manufacturing()),
            ("design", self.design()),
            ("hi_overhead", self.hi_overhead()),
            ("embodied", self.embodied()),
            ("operational", self.operational()),
            ("total", self.total()),
        ]
    }

    /// Render the report as CSV: one row per chiplet followed by the
    /// top-level breakdown rows, suitable for spreadsheets and plotting
    /// scripts.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "section,name,node,area_mm2,comm_area_mm2,yield_pct,manufacturing_kg,design_kg\n",
        );
        for c in &self.chiplets {
            out.push_str(&format!(
                "chiplet,{},{},{:.3},{:.3},{:.2},{:.4},{:.4}\n",
                c.name,
                c.node,
                c.base_area.mm2(),
                c.comm_area.mm2(),
                c.die_yield().percent(),
                c.manufacturing.total().kg(),
                c.design.kg()
            ));
        }
        for (component, carbon) in self.breakdown() {
            out.push_str(&format!("summary,{component},,,,,{:.4},\n", carbon.kg()));
        }
        out
    }
}

impl fmt::Display for CarbonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.system_name)?;
        for c in &self.chiplets {
            writeln!(f, "  {c}")?;
        }
        writeln!(
            f,
            "  manufacturing: {}  design: {}  HI: {}",
            self.manufacturing(),
            self.design(),
            self.hi_overhead()
        )?;
        writeln!(
            f,
            "  embodied: {}  operational ({:.1}y): {}",
            self.embodied(),
            self.lifetime.years(),
            self.operational()
        )?;
        write!(f, "  total: {}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::CarbonPerArea;

    fn chiplet_report(name: &str, mfg_kg: f64, design_kg: f64) -> ChipletReport {
        ChipletReport {
            name: name.to_owned(),
            node: TechNode::N7,
            base_area: Area::from_mm2(100.0),
            comm_area: Area::from_mm2(1.0),
            manufacturing: ChipletManufacturing {
                area: Area::from_mm2(101.0),
                die_yield: DieYield::from_fraction(0.9),
                cfpa: CarbonPerArea::from_kg_per_cm2(2.0),
                die_cfp: Carbon::from_kg(mfg_kg * 0.9),
                wastage_cfp: Carbon::from_kg(mfg_kg * 0.1),
                dies_per_wafer: 100,
            },
            design: Carbon::from_kg(design_kg),
        }
    }

    fn report() -> CarbonReport {
        CarbonReport {
            system_name: "test".into(),
            chiplets: vec![
                chiplet_report("a", 10.0, 2.0),
                chiplet_report("b", 5.0, 1.0),
            ],
            hi: HiBreakdown {
                package: Carbon::from_kg(3.0),
                interposer_comm: Carbon::from_kg(1.0),
                package_area: Area::from_mm2(300.0),
                whitespace_area: Area::from_mm2(50.0),
                assembly_yield: DieYield::from_fraction(0.95),
                comm_power: Power::from_watts(1.5),
            },
            comm_design: Carbon::from_kg(0.5),
            operational_per_year: Carbon::from_kg(20.0),
            lifetime: TimeSpan::from_years(2.0),
        }
    }

    #[test]
    fn totals_compose_correctly() {
        let r = report();
        assert!((r.manufacturing().kg() - 15.0).abs() < 1e-9);
        assert!((r.design().kg() - 3.5).abs() < 1e-9);
        assert!((r.hi_overhead().kg() - 4.0).abs() < 1e-9);
        assert!((r.embodied().kg() - 22.5).abs() < 1e-9);
        assert!((r.operational().kg() - 40.0).abs() < 1e-9);
        assert!((r.total().kg() - 62.5).abs() < 1e-9);
        assert!((r.embodied_fraction() - 22.5 / 62.5).abs() < 1e-9);
        assert!((r.silicon_area().mm2() - 202.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_extrapolation_is_linear() {
        let r = report();
        let at4 = r.total_at_lifetime(TimeSpan::from_years(4.0));
        assert!((at4.kg() - (22.5 + 80.0)).abs() < 1e-9);
        let at0 = r.total_at_lifetime(TimeSpan::from_years(0.0));
        assert!((at0.kg() - r.embodied().kg()).abs() < 1e-9);
    }

    #[test]
    fn chiplet_report_helpers() {
        let c = chiplet_report("x", 8.0, 1.0);
        assert!((c.total_area().mm2() - 101.0).abs() < 1e-9);
        assert!((c.die_yield().fraction() - 0.9).abs() < 1e-12);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn hi_breakdown_none_is_zero() {
        let none = HiBreakdown::none();
        assert_eq!(none.total().kg(), 0.0);
        assert_eq!(none.comm_power.watts(), 0.0);
        assert_eq!(none.assembly_yield, DieYield::PERFECT);
    }

    #[test]
    fn display_contains_sections() {
        let r = report();
        let text = r.to_string();
        assert!(text.contains("manufacturing"));
        assert!(text.contains("embodied"));
        assert!(text.contains("total"));
    }

    #[test]
    fn degenerate_report_fraction() {
        let mut r = report();
        r.chiplets.clear();
        r.hi = HiBreakdown::none();
        r.comm_design = Carbon::ZERO;
        r.operational_per_year = Carbon::ZERO;
        assert_eq!(r.embodied_fraction(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: CarbonReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn breakdown_and_csv_export() {
        let r = report();
        let breakdown = r.breakdown();
        assert_eq!(breakdown.len(), 6);
        assert_eq!(breakdown[0].0, "manufacturing");
        assert!((breakdown[5].1.kg() - r.total().kg()).abs() < 1e-12);

        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 2 chiplets + 6 summary rows.
        assert_eq!(lines.len(), 1 + 2 + 6);
        assert!(lines[0].starts_with("section,name"));
        assert!(lines[1].starts_with("chiplet,a,7nm"));
        assert!(lines.last().unwrap().starts_with("summary,total"));
        // Every row has the same number of commas as the header.
        let commas = lines[0].matches(',').count();
        for line in &lines {
            assert_eq!(line.matches(',').count(), commas, "{line}");
        }
    }
}
