//! Structured logging, hand-rolled spans and trace propagation for the
//! ECO-CHIP fleet — zero dependencies, like everything else in the tree.
//!
//! Three cooperating layers:
//!
//! - **Structured logging** with levels ([`Level`]) and two output
//!   formats ([`LogFormat::Text`] for humans, [`LogFormat::Json`] NDJSON
//!   for machines). One event is one line on stderr, written with a
//!   single buffered `write` under the stderr lock so concurrent
//!   threads never interleave. The global level defaults to
//!   [`Level::Warn`] (warnings always print, narration stays quiet) and
//!   honours the `ECOCHIP_LOG` environment variable via
//!   [`init_from_env`].
//! - **Trace context**: a request-scoped trace ID ([`mint_trace_id`],
//!   validated by [`is_valid_trace_id`]) carried in a thread-local and
//!   installed with a scope guard ([`set_current_trace`]). Log events
//!   and spans pick the current trace up automatically, so one grep for
//!   the ID reconstructs a request's timeline across log files.
//! - **Spans**: monotonic-clock timed regions ([`span`]) kept on a
//!   thread-local stack for parent/child nesting. Completed spans land
//!   in a bounded lock-free-ish ring buffer (an atomic write cursor
//!   over per-slot mutexes — writers never contend except on cursor
//!   wrap) that [`recent_spans`] snapshots for live debugging
//!   (`GET /v1/trace` in `ecochip-serve`).
//!
//! Per-stage duration accounting for the sweep hot path lives in
//! [`StageTimings`]: plain atomic accumulators the engine bumps per
//! point when (and only when) a collector is attached, so the disabled
//! path costs one branch per point.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Levels and global logger configuration
// ---------------------------------------------------------------------------

/// Severity of a log event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not recovered.
    Error,
    /// Something degraded but the process carries on (the default
    /// visibility threshold).
    Warn,
    /// Request-level narration: access logs, memo loads, lifecycle.
    Info,
    /// Verbose diagnostics for development.
    Debug,
}

impl Level {
    /// The lowercase wire label (`"error"`, `"warn"`, `"info"`,
    /// `"debug"`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (case-insensitive). Returns `None` for
    /// anything that is not one of the four labels.
    pub fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(value: u8) -> Level {
        match value {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// How log lines are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented: `LEVEL target: message key=value …`.
    Text,
    /// One JSON object per line (NDJSON) with `ts`, `level`, `target`,
    /// `msg`, optional `trace`, and every structured field.
    Json,
}

impl LogFormat {
    /// Parse a format name (case-insensitive `"text"` or `"json"`).
    pub fn parse(text: &str) -> Option<LogFormat> {
        match text.to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Global visibility threshold (`Level as u8`; default `Warn`).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
/// Global output format (0 = text, 1 = json).
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Set the global visibility threshold: events at this level or more
/// severe reach stderr.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global visibility threshold.
pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Raise the threshold to `level` if it is currently stricter (never
/// lowers it) — how `--verbose` turns narration on without silencing an
/// explicit `--log-level debug`.
pub fn raise_level(level: Level) {
    MAX_LEVEL.fetch_max(level as u8, Ordering::Relaxed);
}

/// Set the global stderr rendering format.
pub fn set_format(format: LogFormat) {
    FORMAT.store(matches!(format, LogFormat::Json) as u8, Ordering::Relaxed);
}

/// The current global stderr rendering format.
pub fn format() -> LogFormat {
    if FORMAT.load(Ordering::Relaxed) == 0 {
        LogFormat::Text
    } else {
        LogFormat::Json
    }
}

/// Apply `ECOCHIP_LOG` (one of `error|warn|info|debug`) to the global
/// threshold; unknown or unset values leave the default alone.
pub fn init_from_env() {
    if let Ok(value) = std::env::var("ECOCHIP_LOG") {
        if let Some(level) = Level::parse(&value) {
            set_level(level);
        }
    }
}

/// Whether an event at `level` would reach stderr right now.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Structured events
// ---------------------------------------------------------------------------

/// A typed structured-field value, so JSON output keeps numbers as
/// numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field.
    F64(f64),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        FieldValue::Str(value.into())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        FieldValue::Str(value)
    }
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> Self {
        FieldValue::U64(value)
    }
}

impl From<usize> for FieldValue {
    fn from(value: usize) -> Self {
        FieldValue::U64(value as u64)
    }
}

impl From<u16> for FieldValue {
    fn from(value: u16) -> Self {
        FieldValue::U64(u64::from(value))
    }
}

impl From<i64> for FieldValue {
    fn from(value: i64) -> Self {
        FieldValue::I64(value)
    }
}

impl From<f64> for FieldValue {
    fn from(value: f64) -> Self {
        FieldValue::F64(value)
    }
}

/// One structured log event, as handed to capture sinks and rendered to
/// stderr.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Unix timestamp in seconds (fractional).
    pub ts: f64,
    /// Severity.
    pub level: Level,
    /// The emitting subsystem (module-path style, e.g.
    /// `"serve::orchestrator"`).
    pub target: String,
    /// Human-readable message.
    pub msg: String,
    /// The trace ID current on the emitting thread, if any.
    pub trace: Option<String>,
    /// Structured key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl LogEvent {
    /// The value of a structured field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value)
    }
}

/// Escape `text` as JSON string *contents* (no surrounding quotes) onto
/// `out`.
fn escape_json_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_json_str(out: &mut String, text: &str) {
    out.push('"');
    escape_json_into(out, text);
    out.push('"');
}

/// Render `event` as one NDJSON line (no trailing newline): always
/// carries `ts`, `level`, `target` and `msg`; `trace` when a trace is
/// current; then every structured field.
pub fn format_json_line(event: &LogEvent) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"ts\":");
    out.push_str(&format!("{:.6}", event.ts));
    out.push_str(",\"level\":");
    push_json_str(&mut out, event.level.label());
    out.push_str(",\"target\":");
    push_json_str(&mut out, &event.target);
    out.push_str(",\"msg\":");
    push_json_str(&mut out, &event.msg);
    if let Some(trace) = &event.trace {
        out.push_str(",\"trace\":");
        push_json_str(&mut out, trace);
    }
    for (key, value) in &event.fields {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        match value {
            FieldValue::Str(s) => push_json_str(&mut out, s),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    push_json_str(&mut out, &v.to_string());
                }
            }
        }
    }
    out.push('}');
    out
}

/// Render `event` as the human-oriented text line (no trailing
/// newline): `LEVEL target: msg key=value …`, with a `trace=` field
/// appended when a trace is current.
pub fn format_text_line(event: &LogEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str(match event.level {
        Level::Error => "error",
        Level::Warn => "warning",
        Level::Info => "info",
        Level::Debug => "debug",
    });
    out.push_str(": ");
    out.push_str(&event.target);
    out.push_str(": ");
    out.push_str(&event.msg);
    if let Some(trace) = &event.trace {
        out.push_str(" trace=");
        out.push_str(trace);
    }
    for (key, value) in &event.fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        match value {
            FieldValue::Str(s) if s.contains(' ') || s.is_empty() => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out
}

fn unix_now() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Registered capture sinks (tests) and a lock-free emptiness check so
/// the disabled logging path never takes the registry lock.
static SINKS: Mutex<Vec<Arc<Mutex<Vec<LogEvent>>>>> = Mutex::new(Vec::new());
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);

/// A registered in-memory log sink, for asserting on structured events
/// in tests. Dropping the guard unregisters the sink.
#[derive(Debug)]
pub struct CaptureGuard {
    sink: Arc<Mutex<Vec<LogEvent>>>,
}

impl CaptureGuard {
    /// Snapshot the events captured so far (the test binary runs many
    /// threads; filter by `trace` or fields rather than asserting
    /// exact counts).
    pub fn events(&self) -> Vec<LogEvent> {
        self.sink.lock().expect("capture sink").clone()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        let mut sinks = SINKS.lock().expect("sink registry");
        sinks.retain(|other| !Arc::ptr_eq(other, &self.sink));
        SINK_COUNT.store(sinks.len(), Ordering::Relaxed);
    }
}

/// Register an in-memory capture sink that receives every structured
/// event (regardless of the stderr threshold) until the guard drops.
pub fn capture() -> CaptureGuard {
    let sink = Arc::new(Mutex::new(Vec::new()));
    let mut sinks = SINKS.lock().expect("sink registry");
    sinks.push(Arc::clone(&sink));
    SINK_COUNT.store(sinks.len(), Ordering::Relaxed);
    CaptureGuard { sink }
}

/// Emit one structured event: rendered to stderr when `level` clears
/// the global threshold, and delivered to every registered capture
/// sink unconditionally.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let to_stderr = enabled(level);
    let to_sinks = SINK_COUNT.load(Ordering::Relaxed) > 0;
    if !to_stderr && !to_sinks {
        return;
    }
    let event = LogEvent {
        ts: unix_now(),
        level,
        target: target.into(),
        msg: msg.into(),
        trace: current_trace(),
        fields: fields
            .iter()
            .map(|(key, value)| ((*key).into(), value.clone()))
            .collect(),
    };
    if to_sinks {
        let sinks = SINKS.lock().expect("sink registry");
        for sink in sinks.iter() {
            sink.lock().expect("capture sink").push(event.clone());
        }
    }
    if to_stderr {
        let mut line = match format() {
            LogFormat::Text => format_text_line(&event),
            LogFormat::Json => format_json_line(&event),
        };
        line.push('\n');
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = handle.write_all(line.as_bytes());
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Debug, target, msg, fields);
}

// ---------------------------------------------------------------------------
// Trace IDs and the thread-local trace context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_TRACE: RefCell<Option<String>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-process random base for trace-ID minting (seeded once from the
/// clock and pid) plus a counter, so IDs are guaranteed unique within a
/// process and astronomically unlikely to collide across the fleet.
static TRACE_BASE: OnceLock<u64> = OnceLock::new();
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Mint a fresh trace ID: 16 lowercase hex characters, unique within
/// the process (`splitmix64` is a bijection over a per-process base
/// XOR a counter).
pub fn mint_trace_id() -> String {
    let base = *TRACE_BASE.get_or_init(|| {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO);
        splitmix64(now.as_nanos() as u64 ^ (u64::from(std::process::id()) << 32))
    });
    let count = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", splitmix64(base ^ count))
}

/// Whether `id` is acceptable as a peer-supplied trace ID: 1–64 ASCII
/// characters from `[A-Za-z0-9_-]`. Anything else is replaced with a
/// freshly minted ID rather than echoed.
pub fn is_valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// The trace ID installed on this thread, if any.
pub fn current_trace() -> Option<String> {
    CURRENT_TRACE.with(|cell| cell.borrow().clone())
}

/// Scope guard restoring the previously current trace on drop (see
/// [`set_current_trace`]).
#[derive(Debug)]
pub struct TraceGuard {
    previous: Option<String>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT_TRACE.with(|cell| *cell.borrow_mut() = previous);
    }
}

/// Install `id` as this thread's current trace until the returned guard
/// drops (the previous trace, if any, is restored).
pub fn set_current_trace(id: impl Into<String>) -> TraceGuard {
    let previous = CURRENT_TRACE.with(|cell| cell.borrow_mut().replace(id.into()));
    TraceGuard { previous }
}

// ---------------------------------------------------------------------------
// Spans and the completed-span ring buffer
// ---------------------------------------------------------------------------

/// How many completed spans the ring buffer retains.
pub const RING_CAPACITY: usize = 1024;

/// A finished span, as retained in the ring buffer and dumped by
/// `GET /v1/trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSpan {
    /// Monotone completion sequence number (orders the dump).
    pub seq: u64,
    /// Process-unique span ID.
    pub id: u64,
    /// The enclosing span's ID, when this span was nested.
    pub parent: Option<u64>,
    /// The trace current when the span started.
    pub trace: Option<String>,
    /// Span name (e.g. `"request:sweep"`, `"stage:estimate"`).
    pub name: String,
    /// Wall-clock start, unix seconds (fractional).
    pub start: f64,
    /// Monotonic duration in seconds.
    pub duration: f64,
}

static SPAN_IDS: AtomicU64 = AtomicU64::new(1);
static SPAN_SEQ: AtomicU64 = AtomicU64::new(0);
static RING_CURSOR: AtomicUsize = AtomicUsize::new(0);
static RING: OnceLock<Vec<Mutex<Option<CompletedSpan>>>> = OnceLock::new();

fn ring() -> &'static Vec<Mutex<Option<CompletedSpan>>> {
    RING.get_or_init(|| (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect())
}

fn record_completed(mut span: CompletedSpan) {
    span.seq = SPAN_SEQ.fetch_add(1, Ordering::Relaxed);
    let slot = RING_CURSOR.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
    *ring()[slot].lock().expect("span ring slot") = Some(span);
}

/// Snapshot the completed-span ring buffer, oldest first (by completion
/// sequence). At most [`RING_CAPACITY`] spans.
pub fn recent_spans() -> Vec<CompletedSpan> {
    let mut spans: Vec<CompletedSpan> = ring()
        .iter()
        .filter_map(|slot| slot.lock().expect("span ring slot").clone())
        .collect();
    spans.sort_by_key(|span| span.seq);
    spans
}

/// Empty the completed-span ring buffer (test isolation).
pub fn clear_recent_spans() {
    for slot in ring() {
        *slot.lock().expect("span ring slot") = None;
    }
}

/// A live span: created by [`span`], timed on the monotonic clock, and
/// recorded into the ring buffer when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    trace: Option<String>,
    name: String,
    start_unix: f64,
    started: Instant,
}

impl SpanGuard {
    /// This span's process-unique ID (the parent for synthetic child
    /// spans recorded via [`record_span`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Wall-clock start of this span, unix seconds.
    pub fn start_unix(&self) -> f64 {
        self.start_unix
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            }
        });
        record_completed(CompletedSpan {
            seq: 0,
            id: self.id,
            parent: self.parent,
            trace: self.trace.take(),
            name: std::mem::take(&mut self.name),
            start: self.start_unix,
            duration: self.started.elapsed().as_secs_f64(),
        });
    }
}

/// Open a span: the current thread's innermost open span becomes its
/// parent, and the thread's current trace is attached. Dropping the
/// returned guard completes the span into the ring buffer.
pub fn span(name: impl Into<String>) -> SpanGuard {
    let id = SPAN_IDS.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        trace: current_trace(),
        name: name.into(),
        start_unix: unix_now(),
        started: Instant::now(),
    }
}

/// Record an already-measured span directly into the ring buffer (used
/// for synthetic per-stage children reconstructed from accumulated
/// [`StageTimings`]). Returns the new span's ID.
///
/// Stage children of a parallel sweep carry *accumulated* worker time,
/// which can exceed the parent's wall-clock duration; consumers should
/// nest by `parent` linkage, not by interval containment.
pub fn record_span(
    name: impl Into<String>,
    trace: Option<String>,
    parent: Option<u64>,
    start_unix: f64,
    duration_secs: f64,
) -> u64 {
    let id = SPAN_IDS.fetch_add(1, Ordering::Relaxed);
    record_completed(CompletedSpan {
        seq: 0,
        id,
        parent,
        trace,
        name: name.into(),
        start: start_unix,
        duration: duration_secs,
    });
    id
}

// ---------------------------------------------------------------------------
// Per-stage duration accounting for the sweep hot path
// ---------------------------------------------------------------------------

/// A pipeline stage of one streamed sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parsing/resolving the request into a sweep spec.
    Decode,
    /// Running the carbon estimator on one case.
    Estimate,
    /// Encoding the point into its canonical JSON line.
    Serialize,
    /// Putting encoded bytes on the wire.
    Emit,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 4] = [
        Stage::Decode,
        Stage::Estimate,
        Stage::Serialize,
        Stage::Emit,
    ];

    /// The metrics/span label for this stage.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Estimate => "estimate",
            Stage::Serialize => "serialize",
            Stage::Emit => "emit",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated per-stage durations for one request: atomic microsecond
/// and event counters, safe to bump from every engine worker thread
/// concurrently. Created fresh per instrumented request so attribution
/// is exact; the engine takes `Option<&StageTimings>` and the `None`
/// path costs one branch per point.
#[derive(Debug, Default)]
pub struct StageTimings {
    micros: [AtomicU64; 4],
    counts: [AtomicU64; 4],
}

impl StageTimings {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one timed occurrence of `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.micros[stage.index()].fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.counts[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Total accumulated time in `stage`, seconds.
    pub fn seconds(&self, stage: Stage) -> f64 {
        self.micros[stage.index()].load(Ordering::Relaxed) as f64 / 1e6
    }

    /// How many occurrences of `stage` were recorded.
    pub fn count(&self, stage: Stage) -> u64 {
        self.counts[stage.index()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.label()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), None);
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn minted_trace_ids_are_unique_hex() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = mint_trace_id();
            assert_eq!(id.len(), 16);
            assert!(id
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
            assert!(is_valid_trace_id(&id));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn trace_id_validation_rejects_junk() {
        assert!(is_valid_trace_id("abc-123_XYZ"));
        assert!(!is_valid_trace_id(""));
        assert!(!is_valid_trace_id(&"a".repeat(65)));
        assert!(!is_valid_trace_id("has space"));
        assert!(!is_valid_trace_id("new\nline"));
        assert!(!is_valid_trace_id("quote\""));
    }

    #[test]
    fn trace_guard_restores_previous() {
        assert_eq!(current_trace(), None);
        {
            let _outer = set_current_trace("outer");
            assert_eq!(current_trace().as_deref(), Some("outer"));
            {
                let _inner = set_current_trace("inner");
                assert_eq!(current_trace().as_deref(), Some("inner"));
            }
            assert_eq!(current_trace().as_deref(), Some("outer"));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn spans_nest_and_land_in_the_ring() {
        let _trace = set_current_trace("ring-test-trace");
        let (outer_id, inner_id);
        {
            let outer = span("outer");
            outer_id = outer.id();
            {
                let inner = span("inner");
                inner_id = inner.id();
            }
        }
        let spans = recent_spans();
        let inner = spans.iter().find(|s| s.id == inner_id).expect("inner span");
        let outer = spans.iter().find(|s| s.id == outer_id).expect("outer span");
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.trace.as_deref(), Some("ring-test-trace"));
        assert_eq!(outer.trace.as_deref(), Some("ring-test-trace"));
        // The inner span completes first, so its sequence number is lower.
        assert!(inner.seq < outer.seq);
        assert!(inner.name == "inner" && outer.name == "outer");
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(RING_CAPACITY + 100) {
            record_span(format!("bulk-{i}"), None, None, 0.0, 0.0);
        }
        assert!(recent_spans().len() <= RING_CAPACITY);
    }

    #[test]
    fn json_lines_escape_and_type_fields() {
        let event = LogEvent {
            ts: 1700000000.25,
            level: Level::Warn,
            target: "serve::orchestrator".into(),
            msg: "shard lost \"worker\"\n".into(),
            trace: Some("abcd".into()),
            fields: vec![
                ("shard".into(), FieldValue::U64(3)),
                ("delta".into(), FieldValue::I64(-2)),
                ("secs".into(), FieldValue::F64(0.5)),
                ("url".into(), FieldValue::Str("http://x/ y".into())),
            ],
        };
        let line = format_json_line(&event);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"trace\":\"abcd\""));
        assert!(line.contains("\"shard\":3"));
        assert!(line.contains("\"delta\":-2"));
        assert!(line.contains("\"secs\":0.5"));
        assert!(line.contains("\\\"worker\\\"\\n"));
        assert!(!line.contains('\n'));
        let text = format_text_line(&event);
        assert!(text.starts_with("warning: serve::orchestrator: "));
        assert!(text.contains("shard=3"));
        assert!(text.contains("url=\"http://x/ y\""));
    }

    #[test]
    fn capture_sees_events_below_the_stderr_threshold() {
        let guard = capture();
        // Debug is below the default Warn threshold, but sinks get it.
        log(
            Level::Debug,
            "trace::tests",
            "captured",
            &[("k", FieldValue::from("v"))],
        );
        let events: Vec<_> = guard
            .events()
            .into_iter()
            .filter(|e| e.target == "trace::tests" && e.msg == "captured")
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("k"), Some(&FieldValue::Str("v".into())));
        drop(guard);
    }

    #[test]
    fn stage_timings_accumulate() {
        let timings = StageTimings::new();
        timings.record(Stage::Estimate, Duration::from_micros(1500));
        timings.record(Stage::Estimate, Duration::from_micros(500));
        timings.record(Stage::Serialize, Duration::from_micros(250));
        assert_eq!(timings.count(Stage::Estimate), 2);
        assert_eq!(timings.count(Stage::Serialize), 1);
        assert_eq!(timings.count(Stage::Decode), 0);
        assert!((timings.seconds(Stage::Estimate) - 0.002).abs() < 1e-9);
        assert!((timings.seconds(Stage::Serialize) - 0.00025).abs() < 1e-9);
        assert_eq!(timings.seconds(Stage::Emit), 0.0);
    }

    #[test]
    fn raise_level_never_lowers() {
        // Note: global state; other tests rely on the default Warn
        // threshold only via `capture()`, which ignores it.
        let before = level();
        raise_level(Level::Error);
        assert!(level() >= before);
        raise_level(Level::Info);
        assert!(enabled(Level::Info));
        set_level(before);
    }
}
