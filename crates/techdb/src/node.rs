//! Technology nodes supported by the framework.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TechDbError;

/// A CMOS process technology node.
///
/// Nodes are identified by their marketing name in nanometres. The enum is
/// ordered from the most advanced (3 nm) to the most mature (130 nm) node;
/// `TechNode::N3 < TechNode::N130` under the derived ordering, i.e. "smaller
/// node first". Use [`TechNode::nm`] for the numeric value.
///
/// ```
/// use ecochip_techdb::TechNode;
/// assert_eq!(TechNode::N7.nm(), 7);
/// assert!(TechNode::N7.is_more_advanced_than(TechNode::N65));
/// assert_eq!("10".parse::<TechNode>().unwrap(), TechNode::N10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "u32", into = "u32")]
pub enum TechNode {
    /// 3 nm class node.
    N3,
    /// 5 nm class node.
    N5,
    /// 7 nm class node.
    N7,
    /// 8 nm class node (e.g. the Samsung node used by the GA102 GPU).
    N8,
    /// 10 nm class node.
    N10,
    /// 12 nm class node.
    N12,
    /// 14 nm class node.
    N14,
    /// 16 nm class node.
    N16,
    /// 22 nm class node.
    N22,
    /// 28 nm class node.
    N28,
    /// 40 nm class node.
    N40,
    /// 65 nm class node (default packaging / interposer node in the paper).
    N65,
    /// 90 nm class node.
    N90,
    /// 130 nm class node.
    N130,
}

impl TechNode {
    /// All supported nodes, most advanced first.
    pub const ALL: [TechNode; 14] = [
        TechNode::N3,
        TechNode::N5,
        TechNode::N7,
        TechNode::N8,
        TechNode::N10,
        TechNode::N12,
        TechNode::N14,
        TechNode::N16,
        TechNode::N22,
        TechNode::N28,
        TechNode::N40,
        TechNode::N65,
        TechNode::N90,
        TechNode::N130,
    ];

    /// The numeric node name in nanometres.
    #[inline]
    pub fn nm(self) -> u32 {
        match self {
            TechNode::N3 => 3,
            TechNode::N5 => 5,
            TechNode::N7 => 7,
            TechNode::N8 => 8,
            TechNode::N10 => 10,
            TechNode::N12 => 12,
            TechNode::N14 => 14,
            TechNode::N16 => 16,
            TechNode::N22 => 22,
            TechNode::N28 => 28,
            TechNode::N40 => 40,
            TechNode::N65 => 65,
            TechNode::N90 => 90,
            TechNode::N130 => 130,
        }
    }

    /// Look up a node from its nanometre name.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::UnknownNode`] when the value does not name a
    /// supported node.
    pub fn from_nm(nm: u32) -> Result<Self, TechDbError> {
        Self::ALL
            .iter()
            .copied()
            .find(|n| n.nm() == nm)
            .ok_or(TechDbError::UnknownNode(nm))
    }

    /// `true` if `self` is a smaller (more advanced) node than `other`.
    #[inline]
    pub fn is_more_advanced_than(self, other: TechNode) -> bool {
        self.nm() < other.nm()
    }

    /// `true` if `self` is a larger (older, more mature) node than `other`.
    #[inline]
    pub fn is_older_than(self, other: TechNode) -> bool {
        self.nm() > other.nm()
    }

    /// Iterator over all supported nodes, most advanced first.
    pub fn iter() -> impl Iterator<Item = TechNode> {
        Self::ALL.iter().copied()
    }

    /// Nodes typically available for packaging substrates / interposers
    /// (22 nm – 65 nm in Table I).
    pub fn packaging_nodes() -> impl Iterator<Item = TechNode> {
        [TechNode::N22, TechNode::N28, TechNode::N40, TechNode::N65].into_iter()
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nm())
    }
}

impl FromStr for TechNode {
    type Err = TechDbError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_end_matches("nm").trim();
        let nm: u32 = trimmed
            .parse()
            .map_err(|_| TechDbError::UnparsableNode(s.to_owned()))?;
        TechNode::from_nm(nm)
    }
}

impl TryFrom<u32> for TechNode {
    type Error = TechDbError;

    fn try_from(value: u32) -> Result<Self, Self::Error> {
        TechNode::from_nm(value)
    }
}

impl From<TechNode> for u32 {
    fn from(value: TechNode) -> Self {
        value.nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_round_trip_through_nm() {
        for node in TechNode::ALL {
            assert_eq!(TechNode::from_nm(node.nm()).unwrap(), node);
        }
    }

    #[test]
    fn unknown_node_is_an_error() {
        assert!(matches!(
            TechNode::from_nm(6),
            Err(TechDbError::UnknownNode(6))
        ));
    }

    #[test]
    fn ordering_matches_advancement() {
        assert!(TechNode::N3 < TechNode::N130);
        assert!(TechNode::N7.is_more_advanced_than(TechNode::N10));
        assert!(TechNode::N65.is_older_than(TechNode::N7));
        assert!(!TechNode::N7.is_older_than(TechNode::N7));
        let nms: Vec<u32> = TechNode::iter().map(|n| n.nm()).collect();
        let mut sorted = nms.clone();
        sorted.sort_unstable();
        assert_eq!(nms, sorted, "ALL must be listed most-advanced-first");
    }

    #[test]
    fn from_str_accepts_suffix() {
        assert_eq!("7".parse::<TechNode>().unwrap(), TechNode::N7);
        assert_eq!("7nm".parse::<TechNode>().unwrap(), TechNode::N7);
        assert_eq!(" 65 nm".parse::<TechNode>().unwrap(), TechNode::N65);
        assert!("apple".parse::<TechNode>().is_err());
        assert!("11".parse::<TechNode>().is_err());
    }

    #[test]
    fn display_is_nm_suffixed() {
        assert_eq!(TechNode::N7.to_string(), "7nm");
        assert_eq!(TechNode::N130.to_string(), "130nm");
    }

    #[test]
    fn serde_uses_numeric_names() {
        let s = serde_json::to_string(&TechNode::N7).unwrap();
        assert_eq!(s, "7");
        let n: TechNode = serde_json::from_str("65").unwrap();
        assert_eq!(n, TechNode::N65);
        assert!(serde_json::from_str::<TechNode>("6").is_err());
    }

    #[test]
    fn packaging_nodes_are_mature() {
        for node in TechNode::packaging_nodes() {
            assert!(node.nm() >= 22);
        }
    }
}
