//! Strongly-typed physical quantities.
//!
//! Every quantity is a thin newtype over `f64` with a fixed internal unit
//! (documented on the type). Constructors and accessors convert between the
//! common units used in the paper (mm² vs cm², kWh, kg vs g of CO₂, …), and
//! only physically meaningful arithmetic is implemented, e.g.:
//!
//! * [`CarbonIntensity`] × [`Energy`] → [`Carbon`]
//! * [`EnergyPerArea`] × [`Area`] → [`Energy`]
//! * [`CarbonPerArea`] × [`Area`] → [`Carbon`]
//! * [`Power`] × [`TimeSpan`] → [`Energy`]
//!
//! All types are `Copy`, ordered, hashable on their raw bits where useful, and
//! serialize as plain numbers in their canonical unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $canonical:ident, $unit_doc:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Raw value in the canonical unit (", $unit_doc, ").")]
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN/±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        #[allow(dead_code)]
        const _: () = {
            fn assert_send_sync<T: Send + Sync>() {}
            fn check() {
                assert_send_sync::<$name>();
            }
        };

        #[doc(hidden)]
        impl $name {
            /// Construct directly from the canonical unit. Prefer the named
            /// constructors; this exists for generic code and tests.
            #[inline]
            pub fn from_raw(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

quantity!(
    /// Silicon or package area. Canonical unit: **mm²**.
    Area,
    mm2,
    "mm²"
);

impl Area {
    /// Create an area from square millimetres.
    #[inline]
    pub fn from_mm2(mm2: f64) -> Self {
        Self(mm2)
    }

    /// Create an area from square centimetres.
    #[inline]
    pub fn from_cm2(cm2: f64) -> Self {
        Self(cm2 * 100.0)
    }

    /// Create an area from square micrometres.
    #[inline]
    pub fn from_um2(um2: f64) -> Self {
        Self(um2 * 1.0e-6)
    }

    /// Value in square millimetres.
    #[inline]
    pub fn mm2(self) -> f64 {
        self.0
    }

    /// Value in square centimetres.
    #[inline]
    pub fn cm2(self) -> f64 {
        self.0 / 100.0
    }

    /// Value in square micrometres.
    #[inline]
    pub fn um2(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Side length of a square die with this area.
    #[inline]
    pub fn square_side(self) -> Length {
        Length::from_mm(self.0.max(0.0).sqrt())
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mm²", self.0)
    }
}

quantity!(
    /// Linear dimension. Canonical unit: **mm**.
    Length,
    mm,
    "mm"
);

impl Length {
    /// Create a length from millimetres.
    #[inline]
    pub fn from_mm(mm: f64) -> Self {
        Self(mm)
    }

    /// Create a length from micrometres.
    #[inline]
    pub fn from_um(um: f64) -> Self {
        Self(um * 1.0e-3)
    }

    /// Create a length from nanometres.
    #[inline]
    pub fn from_nm(nm: f64) -> Self {
        Self(nm * 1.0e-6)
    }

    /// Value in millimetres.
    #[inline]
    pub fn mm(self) -> f64 {
        self.0
    }

    /// Value in micrometres.
    #[inline]
    pub fn um(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Mul<Length> for Length {
    type Output = Area;
    #[inline]
    fn mul(self, rhs: Length) -> Area {
        Area::from_mm2(self.0 * rhs.0)
    }
}

impl fmt::Display for Length {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mm", self.0)
    }
}

quantity!(
    /// Electrical energy. Canonical unit: **kWh**.
    Energy,
    kwh,
    "kWh"
);

impl Energy {
    /// Create energy from kilowatt-hours.
    #[inline]
    pub fn from_kwh(kwh: f64) -> Self {
        Self(kwh)
    }

    /// Create energy from watt-hours.
    #[inline]
    pub fn from_wh(wh: f64) -> Self {
        Self(wh * 1.0e-3)
    }

    /// Create energy from joules.
    #[inline]
    pub fn from_joules(j: f64) -> Self {
        Self(j / 3.6e6)
    }

    /// Value in kilowatt-hours.
    #[inline]
    pub fn kwh(self) -> f64 {
        self.0
    }

    /// Value in watt-hours.
    #[inline]
    pub fn wh(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Value in joules.
    #[inline]
    pub fn joules(self) -> f64 {
        self.0 * 3.6e6
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kWh", self.0)
    }
}

quantity!(
    /// Electrical power. Canonical unit: **W**.
    Power,
    watts,
    "W"
);

impl Power {
    /// Create power from watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Self(w)
    }

    /// Create power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self(mw * 1.0e-3)
    }

    /// Value in watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Value in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Mul<TimeSpan> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy::from_kwh(self.0 * rhs.hours() / 1.0e3)
    }
}

impl Mul<Power> for TimeSpan {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

quantity!(
    /// Time duration. Canonical unit: **hours**.
    TimeSpan,
    hours,
    "h"
);

impl TimeSpan {
    /// Create a duration from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self(h)
    }

    /// Create a duration from seconds.
    #[inline]
    pub fn from_seconds(s: f64) -> Self {
        Self(s / 3600.0)
    }

    /// Create a duration from days (24 h).
    #[inline]
    pub fn from_days(d: f64) -> Self {
        Self(d * 24.0)
    }

    /// Create a duration from (365-day) years.
    #[inline]
    pub fn from_years(y: f64) -> Self {
        Self(y * 365.0 * 24.0)
    }

    /// Value in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0
    }

    /// Value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0 * 3600.0
    }

    /// Value in (365-day) years.
    #[inline]
    pub fn years(self) -> f64 {
        self.0 / (365.0 * 24.0)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} h", self.0)
    }
}

quantity!(
    /// Mass of CO₂-equivalent emissions. Canonical unit: **kg CO₂e**.
    Carbon,
    kg,
    "kg CO₂e"
);

impl Carbon {
    /// Create a carbon mass from kilograms of CO₂-equivalent.
    #[inline]
    pub fn from_kg(kg: f64) -> Self {
        Self(kg)
    }

    /// Create a carbon mass from grams of CO₂-equivalent.
    #[inline]
    pub fn from_grams(g: f64) -> Self {
        Self(g * 1.0e-3)
    }

    /// Create a carbon mass from metric tons of CO₂-equivalent.
    #[inline]
    pub fn from_tons(t: f64) -> Self {
        Self(t * 1.0e3)
    }

    /// Value in kilograms of CO₂-equivalent.
    #[inline]
    pub fn kg(self) -> f64 {
        self.0
    }

    /// Value in grams of CO₂-equivalent.
    #[inline]
    pub fn grams(self) -> f64 {
        self.0 * 1.0e3
    }

    /// Value in metric tons of CO₂-equivalent.
    #[inline]
    pub fn tons(self) -> f64 {
        self.0 * 1.0e-3
    }
}

impl fmt::Display for Carbon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kgCO2e", self.0)
    }
}

quantity!(
    /// Carbon intensity of an energy source. Canonical unit: **kg CO₂e / kWh**.
    CarbonIntensity,
    kg_per_kwh,
    "kg CO₂e / kWh"
);

impl CarbonIntensity {
    /// Create a carbon intensity from kg CO₂e per kWh.
    #[inline]
    pub fn from_kg_per_kwh(v: f64) -> Self {
        Self(v)
    }

    /// Create a carbon intensity from g CO₂e per kWh (the unit of Table I).
    #[inline]
    pub fn from_g_per_kwh(v: f64) -> Self {
        Self(v * 1.0e-3)
    }

    /// Value in kg CO₂e per kWh.
    #[inline]
    pub fn kg_per_kwh(self) -> f64 {
        self.0
    }

    /// Value in g CO₂e per kWh.
    #[inline]
    pub fn g_per_kwh(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Mul<Energy> for CarbonIntensity {
    type Output = Carbon;
    #[inline]
    fn mul(self, rhs: Energy) -> Carbon {
        Carbon::from_kg(self.0 * rhs.kwh())
    }
}

impl Mul<CarbonIntensity> for Energy {
    type Output = Carbon;
    #[inline]
    fn mul(self, rhs: CarbonIntensity) -> Carbon {
        rhs * self
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} gCO2e/kWh", self.g_per_kwh())
    }
}

quantity!(
    /// Energy consumed per unit silicon area (EPA / EPLA in the paper).
    /// Canonical unit: **kWh / cm²**.
    EnergyPerArea,
    kwh_per_cm2,
    "kWh / cm²"
);

impl EnergyPerArea {
    /// Create from kWh per cm².
    #[inline]
    pub fn from_kwh_per_cm2(v: f64) -> Self {
        Self(v)
    }

    /// Value in kWh per cm².
    #[inline]
    pub fn kwh_per_cm2(self) -> f64 {
        self.0
    }
}

impl Mul<Area> for EnergyPerArea {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Area) -> Energy {
        Energy::from_kwh(self.0 * rhs.cm2())
    }
}

impl Mul<EnergyPerArea> for Area {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: EnergyPerArea) -> Energy {
        rhs * self
    }
}

impl fmt::Display for EnergyPerArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kWh/cm²", self.0)
    }
}

quantity!(
    /// Carbon footprint per unit silicon area (CFPA in the paper).
    /// Canonical unit: **kg CO₂e / cm²**.
    CarbonPerArea,
    kg_per_cm2,
    "kg CO₂e / cm²"
);

impl CarbonPerArea {
    /// Create from kg CO₂e per cm².
    #[inline]
    pub fn from_kg_per_cm2(v: f64) -> Self {
        Self(v)
    }

    /// Create from g CO₂e per cm².
    #[inline]
    pub fn from_g_per_cm2(v: f64) -> Self {
        Self(v * 1.0e-3)
    }

    /// Value in kg CO₂e per cm².
    #[inline]
    pub fn kg_per_cm2(self) -> f64 {
        self.0
    }

    /// Value in g CO₂e per cm².
    #[inline]
    pub fn g_per_cm2(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Mul<Area> for CarbonPerArea {
    type Output = Carbon;
    #[inline]
    fn mul(self, rhs: Area) -> Carbon {
        Carbon::from_kg(self.0 * rhs.cm2())
    }
}

impl Mul<CarbonPerArea> for Area {
    type Output = Carbon;
    #[inline]
    fn mul(self, rhs: CarbonPerArea) -> Carbon {
        rhs * self
    }
}

impl fmt::Display for CarbonPerArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kgCO2e/cm²", self.0)
    }
}

quantity!(
    /// Transistor density. Canonical unit: **million transistors / mm²**.
    TransistorDensity,
    mtr_per_mm2,
    "MTr / mm²"
);

impl TransistorDensity {
    /// Create from millions of transistors per mm².
    #[inline]
    pub fn from_mtr_per_mm2(v: f64) -> Self {
        Self(v)
    }

    /// Value in millions of transistors per mm².
    #[inline]
    pub fn mtr_per_mm2(self) -> f64 {
        self.0
    }

    /// Value in transistors per mm².
    #[inline]
    pub fn transistors_per_mm2(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Area required for `transistors` devices at this density.
    ///
    /// Returns [`Area::ZERO`] if the density is non-positive.
    #[inline]
    pub fn area_for(self, transistors: f64) -> Area {
        if self.0 <= 0.0 {
            Area::ZERO
        } else {
            Area::from_mm2(transistors / self.transistors_per_mm2())
        }
    }
}

impl fmt::Display for TransistorDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MTr/mm²", self.0)
    }
}

quantity!(
    /// Clock / operating frequency. Canonical unit: **Hz**.
    Frequency,
    hz,
    "Hz"
);

impl Frequency {
    /// Create a frequency from hertz.
    #[inline]
    pub fn from_hz(v: f64) -> Self {
        Self(v)
    }

    /// Create a frequency from megahertz.
    #[inline]
    pub fn from_mhz(v: f64) -> Self {
        Self(v * 1.0e6)
    }

    /// Create a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(v: f64) -> Self {
        Self(v * 1.0e9)
    }

    /// Value in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 * 1.0e-9
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.ghz())
    }
}

quantity!(
    /// Supply voltage. Canonical unit: **V**.
    Voltage,
    volts,
    "V"
);

impl Voltage {
    /// Create a voltage from volts.
    #[inline]
    pub fn from_volts(v: f64) -> Self {
        Self(v)
    }

    /// Value in volts.
    #[inline]
    pub fn volts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_conversions_round_trip() {
        let a = Area::from_cm2(6.25);
        assert!((a.mm2() - 625.0).abs() < 1e-9);
        assert!((a.cm2() - 6.25).abs() < 1e-12);
        assert!((Area::from_um2(1.0e6).mm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_square_side() {
        let a = Area::from_mm2(100.0);
        assert!((a.square_side().mm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn length_product_is_area() {
        let a = Length::from_mm(2.0) * Length::from_mm(3.0);
        assert!((a.mm2() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn energy_conversions() {
        let e = Energy::from_wh(1500.0);
        assert!((e.kwh() - 1.5).abs() < 1e-12);
        assert!((Energy::from_joules(3.6e6).kwh() - 1.0).abs() < 1e-12);
        assert!((e.joules() - 1.5 * 3.6e6).abs() < 1e-6);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(450.0) * TimeSpan::from_hours(2.0);
        assert!((e.kwh() - 0.9).abs() < 1e-12);
        let e2 = TimeSpan::from_hours(2.0) * Power::from_watts(450.0);
        assert!((e2.kwh() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn timespan_conversions() {
        assert!((TimeSpan::from_years(2.0).hours() - 17520.0).abs() < 1e-9);
        assert!((TimeSpan::from_days(1.0).hours() - 24.0).abs() < 1e-12);
        assert!((TimeSpan::from_seconds(3600.0).hours() - 1.0).abs() < 1e-12);
        assert!((TimeSpan::from_hours(8760.0).years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn carbon_conversions() {
        let c = Carbon::from_grams(700.0);
        assert!((c.kg() - 0.7).abs() < 1e-12);
        assert!((Carbon::from_tons(2.0).kg() - 2000.0).abs() < 1e-9);
        assert!((c.grams() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_times_energy_is_carbon() {
        let coal = CarbonIntensity::from_g_per_kwh(700.0);
        let c = coal * Energy::from_kwh(228.0);
        assert!((c.kg() - 159.6).abs() < 1e-9);
        let c2 = Energy::from_kwh(228.0) * coal;
        assert!((c2.kg() - 159.6).abs() < 1e-9);
    }

    #[test]
    fn epa_times_area_is_energy() {
        let epa = EnergyPerArea::from_kwh_per_cm2(2.0);
        let e = epa * Area::from_cm2(3.0);
        assert!((e.kwh() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cfpa_times_area_is_carbon() {
        let cfpa = CarbonPerArea::from_kg_per_cm2(1.5);
        let c = cfpa * Area::from_mm2(200.0);
        assert!((c.kg() - 3.0).abs() < 1e-12);
        assert!((CarbonPerArea::from_g_per_cm2(500.0).kg_per_cm2() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transistor_density_area() {
        let d = TransistorDensity::from_mtr_per_mm2(91.0);
        let a = d.area_for(28.3e9);
        assert!((a.mm2() - 28.3e9 / 91.0e6).abs() < 1e-6);
        assert_eq!(TransistorDensity::ZERO.area_for(1.0e9), Area::ZERO);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Carbon::from_kg(2.0) + Carbon::from_kg(3.0);
        assert!((a.kg() - 5.0).abs() < 1e-12);
        let b = a - Carbon::from_kg(1.0);
        assert!((b.kg() - 4.0).abs() < 1e-12);
        let c = b * 2.0;
        assert!((c.kg() - 8.0).abs() < 1e-12);
        let d = 2.0 * b;
        assert!((d.kg() - 8.0).abs() < 1e-12);
        let r = c / b;
        assert!((r - 2.0).abs() < 1e-12);
        let e = c / 2.0;
        assert!((e.kg() - 4.0).abs() < 1e-12);
        assert!((-e).kg() < 0.0);
        let mut acc = Carbon::ZERO;
        acc += Carbon::from_kg(1.0);
        acc -= Carbon::from_kg(0.25);
        assert!((acc.kg() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sum_and_minmax() {
        let total: Carbon = vec![Carbon::from_kg(1.0), Carbon::from_kg(2.5)]
            .into_iter()
            .sum();
        assert!((total.kg() - 3.5).abs() < 1e-12);
        assert_eq!(
            Carbon::from_kg(1.0).max(Carbon::from_kg(2.0)),
            Carbon::from_kg(2.0)
        );
        assert_eq!(
            Carbon::from_kg(1.0).min(Carbon::from_kg(2.0)),
            Carbon::from_kg(1.0)
        );
        assert_eq!(Carbon::from_kg(-1.0).abs(), Carbon::from_kg(1.0));
    }

    #[test]
    fn display_is_nonempty() {
        for s in [
            format!("{}", Area::from_mm2(1.0)),
            format!("{}", Length::from_mm(1.0)),
            format!("{}", Energy::from_kwh(1.0)),
            format!("{}", Power::from_watts(1.0)),
            format!("{}", TimeSpan::from_hours(1.0)),
            format!("{}", Carbon::from_kg(1.0)),
            format!("{}", CarbonIntensity::from_g_per_kwh(700.0)),
            format!("{}", EnergyPerArea::from_kwh_per_cm2(1.0)),
            format!("{}", CarbonPerArea::from_kg_per_cm2(1.0)),
            format!("{}", TransistorDensity::from_mtr_per_mm2(1.0)),
            format!("{}", Frequency::from_ghz(1.0)),
            format!("{}", Voltage::from_volts(1.0)),
        ] {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        let a = Area::from_mm2(628.0);
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(s, "628.0");
        let b: Area = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn frequency_and_voltage() {
        assert!((Frequency::from_ghz(2.4).hz() - 2.4e9).abs() < 1.0);
        assert!((Frequency::from_mhz(500.0).ghz() - 0.5).abs() < 1e-12);
        assert!((Voltage::from_volts(0.75).volts() - 0.75).abs() < 1e-12);
    }
}
