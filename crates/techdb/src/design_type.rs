//! Block / die design-type classification.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TechDbError;

/// The functional class of a block or chiplet.
///
/// ECO-CHIP uses three different area-scaling (transistor-density) models
/// because logic, memory (SRAM) and analog blocks scale very differently with
/// technology node — the key observation that makes technology-node
/// "mix and match" attractive (Section III-C of the paper).
///
/// ```
/// use ecochip_techdb::DesignType;
/// assert_eq!("analog".parse::<DesignType>().unwrap(), DesignType::Analog);
/// assert_eq!(DesignType::Logic.to_string(), "logic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum DesignType {
    /// Digital standard-cell logic. Scales the fastest with technology.
    Logic,
    /// SRAM / memory macros. Scales notably slower than logic at advanced nodes.
    Memory,
    /// Analog, IO and mixed-signal circuitry. Barely scales with technology.
    Analog,
}

impl DesignType {
    /// All design types.
    pub const ALL: [DesignType; 3] = [DesignType::Logic, DesignType::Memory, DesignType::Analog];

    /// Iterator over all design types.
    pub fn iter() -> impl Iterator<Item = DesignType> {
        Self::ALL.iter().copied()
    }

    /// A short lowercase name (`"logic"`, `"memory"`, `"analog"`).
    pub fn name(self) -> &'static str {
        match self {
            DesignType::Logic => "logic",
            DesignType::Memory => "memory",
            DesignType::Analog => "analog",
        }
    }
}

impl fmt::Display for DesignType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DesignType {
    type Err = TechDbError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "logic" | "digital" | "compute" => Ok(DesignType::Logic),
            "memory" | "sram" | "mem" | "cache" => Ok(DesignType::Memory),
            "analog" | "io" | "analog_io" | "mixed" | "mixed-signal" => Ok(DesignType::Analog),
            other => Err(TechDbError::UnknownDesignType(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_aliases() {
        assert_eq!("digital".parse::<DesignType>().unwrap(), DesignType::Logic);
        assert_eq!("SRAM".parse::<DesignType>().unwrap(), DesignType::Memory);
        assert_eq!("IO".parse::<DesignType>().unwrap(), DesignType::Analog);
        assert!("dsp".parse::<DesignType>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for dt in DesignType::iter() {
            assert_eq!(dt.to_string().parse::<DesignType>().unwrap(), dt);
        }
    }

    #[test]
    fn serde_lowercase() {
        assert_eq!(
            serde_json::to_string(&DesignType::Memory).unwrap(),
            "\"memory\""
        );
        let dt: DesignType = serde_json::from_str("\"analog\"").unwrap();
        assert_eq!(dt, DesignType::Analog);
    }

    #[test]
    fn all_has_three_distinct_entries() {
        assert_eq!(DesignType::ALL.len(), 3);
        assert_ne!(DesignType::ALL[0], DesignType::ALL[1]);
        assert_ne!(DesignType::ALL[1], DesignType::ALL[2]);
    }
}
