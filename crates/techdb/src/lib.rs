//! # ecochip-techdb
//!
//! Technology-node parameter database and strongly-typed physical quantities
//! used across the ECO-CHIP carbon-footprint estimation framework.
//!
//! The crate provides:
//!
//! * [`units`] — newtypes for area, energy, power, carbon mass, carbon
//!   intensity and friends, with the arithmetic that is physically meaningful
//!   (e.g. `CarbonIntensity * Energy = Carbon`).
//! * [`TechNode`] — the set of CMOS technology nodes supported by the
//!   framework (3 nm through 130 nm).
//! * [`DesignType`] — logic / memory / analog block classification, which
//!   controls transistor-density (area) scaling.
//! * [`EnergySource`] — grid-mix presets mapping an energy source to a carbon
//!   intensity (30–700 gCO₂/kWh, Table I of the paper).
//! * [`NodeParams`] / [`TechDb`] — the per-node parameter tables (defect
//!   density, transistor density, energy-per-area, process-gas and material
//!   footprints, equipment-efficiency derate, EDA productivity, supply
//!   voltage, RDL/bridge energy-per-layer-area) with all values inside the
//!   ranges published in Table I of the ECO-CHIP paper, plus builders for
//!   overriding any of them.
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{TechDb, TechNode, DesignType, EnergySource};
//!
//! let db = TechDb::default();
//! let p7 = db.node(TechNode::N7)?;
//! assert!(p7.defect_density.per_cm2() > db.node(TechNode::N65)?.defect_density.per_cm2());
//!
//! // 1 billion logic transistors in 7 nm:
//! let area = p7.area_for_transistors(DesignType::Logic, 1.0e9);
//! assert!(area.mm2() > 5.0 && area.mm2() < 20.0);
//!
//! // Coal-heavy grid:
//! let coal = EnergySource::Coal.carbon_intensity();
//! assert!((coal.kg_per_kwh() - 0.7).abs() < 1e-9);
//! # Ok::<(), ecochip_techdb::TechDbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod design_type;
pub mod error;
pub mod node;
pub mod params;
pub mod source;
pub mod units;

pub use design_type::DesignType;
pub use error::TechDbError;
pub use node::TechNode;
pub use params::{DefectDensity, NodeParams, NodeParamsBuilder, TechDb, TechDbBuilder};
pub use source::EnergySource;
pub use units::{
    Area, Carbon, CarbonIntensity, CarbonPerArea, Energy, EnergyPerArea, Frequency, Length, Power,
    TimeSpan, TransistorDensity, Voltage,
};
