//! Error types for the technology database.

use std::error::Error;
use std::fmt;

/// Errors produced by the technology database.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechDbError {
    /// The requested nanometre value does not name a supported node.
    UnknownNode(u32),
    /// The string could not be parsed as a technology node.
    UnparsableNode(String),
    /// The string does not name a known design type.
    UnknownDesignType(String),
    /// The string does not name a known energy source.
    UnknownEnergySource(String),
    /// A parameter override was out of its physically valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid range.
        expected: &'static str,
    },
    /// The database has no entry for the requested node.
    MissingNode(u32),
}

impl fmt::Display for TechDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechDbError::UnknownNode(nm) => write!(f, "unknown technology node: {nm} nm"),
            TechDbError::UnparsableNode(s) => write!(f, "cannot parse technology node from {s:?}"),
            TechDbError::UnknownDesignType(s) => write!(f, "unknown design type {s:?}"),
            TechDbError::UnknownEnergySource(s) => write!(f, "unknown energy source {s:?}"),
            TechDbError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value} for parameter {name} (expected {expected})"
            ),
            TechDbError::MissingNode(nm) => {
                write!(f, "technology database has no entry for {nm} nm")
            }
        }
    }
}

impl Error for TechDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            TechDbError::UnknownNode(6),
            TechDbError::UnparsableNode("x".into()),
            TechDbError::UnknownDesignType("dsp".into()),
            TechDbError::UnknownEnergySource("fusion".into()),
            TechDbError::InvalidParameter {
                name: "defect_density",
                value: -1.0,
                expected: "non-negative",
            },
            TechDbError::MissingNode(7),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechDbError>();
    }
}
