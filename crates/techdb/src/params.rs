//! Per-node parameter tables (Table I of the paper) and the database that
//! serves them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::design_type::DesignType;
use crate::error::TechDbError;
use crate::node::TechNode;
use crate::units::{Area, CarbonPerArea, EnergyPerArea, TransistorDensity, Voltage};

/// Manufacturing, packaging and design parameters of a single technology
/// node.
///
/// All default values are inside the ranges published in Table I of the
/// ECO-CHIP paper (sources: IMEC DTCO/PPACE data, ACT, industry defect-rate
/// and density disclosures). The per-node interpolation within those ranges
/// is this reproduction's choice and is documented in `DESIGN.md`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeParams {
    /// The node these parameters describe.
    pub node: TechNode,
    /// Defect density `D0(p)` in defects/cm² (0.07 – 0.3 in Table I).
    pub defect_density: DefectDensity,
    /// Yield-model clustering parameter α (Table I fixes it at 3).
    pub clustering_alpha: f64,
    /// Transistor density for standard-cell logic.
    pub logic_density: TransistorDensity,
    /// Transistor density for SRAM / memory macros.
    pub memory_density: TransistorDensity,
    /// Transistor density for analog / IO blocks.
    pub analog_density: TransistorDensity,
    /// Manufacturing energy per unit area, `EPA(p)` (0.8 – 3.5 kWh/cm²).
    pub epa: EnergyPerArea,
    /// Direct greenhouse-gas footprint of processing, `Cgas` (0.1 – 0.5 kg/cm²).
    pub gas_cfp: CarbonPerArea,
    /// Material-sourcing footprint, `Cmaterial` (0.5 kg/cm²).
    pub material_cfp: CarbonPerArea,
    /// Process-equipment energy-efficiency derate `ηeq ∈ (0, 1]` applied to
    /// EPA: mature nodes run on newer, more efficient lithography equipment.
    pub equipment_derate: f64,
    /// EDA-tool productivity factor `ηEDA ∈ (0, 1]`. Design time is divided by
    /// this factor, so mature nodes (≈1.0) design faster than advanced ones.
    pub eda_productivity: f64,
    /// Energy per RDL metal layer per unit area, `EPLA_RDL(p)`
    /// (0.05 – 0.2 kWh/cm² per layer).
    pub epla_rdl: EnergyPerArea,
    /// Energy per silicon-bridge metal layer per unit area, `EPLA_bridge(p)`
    /// (0.1 – 0.35 kWh/cm² per layer).
    pub epla_bridge: EnergyPerArea,
    /// Nominal supply voltage at this node.
    pub vdd: Voltage,
    /// Carbon footprint per unit area of raw silicon wafer (used to account
    /// for the wasted wafer periphery, `CFPA_Si` in Eq. (5)).
    pub silicon_wafer_cfp: CarbonPerArea,
}

/// Defect density in defects per cm² — a tiny newtype so the yield crate can
/// take it by type rather than bare `f64`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DefectDensity(f64);

impl DefectDensity {
    /// Create a defect density from defects per cm².
    ///
    /// Negative values are clamped to zero.
    #[inline]
    pub fn from_per_cm2(d: f64) -> Self {
        Self(d.max(0.0))
    }

    /// Defects per cm².
    #[inline]
    pub fn per_cm2(self) -> f64 {
        self.0
    }

    /// Defects per mm².
    #[inline]
    pub fn per_mm2(self) -> f64 {
        self.0 / 100.0
    }
}

impl fmt::Display for DefectDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} /cm²", self.0)
    }
}

impl NodeParams {
    /// Transistor density of the given design type at this node.
    pub fn transistor_density(&self, design_type: DesignType) -> TransistorDensity {
        match design_type {
            DesignType::Logic => self.logic_density,
            DesignType::Memory => self.memory_density,
            DesignType::Analog => self.analog_density,
        }
    }

    /// Die area needed for `transistors` devices of the given design type at
    /// this node: `Adie(d, p) = NT / DT(d, p)` (§III-C(1) of the paper).
    pub fn area_for_transistors(&self, design_type: DesignType, transistors: f64) -> Area {
        self.transistor_density(design_type).area_for(transistors)
    }

    /// Number of transistors that fit in `area` for the given design type.
    pub fn transistors_for_area(&self, design_type: DesignType, area: Area) -> f64 {
        self.transistor_density(design_type).transistors_per_mm2() * area.mm2()
    }

    /// Start building a modified copy of these parameters.
    pub fn to_builder(&self) -> NodeParamsBuilder {
        NodeParamsBuilder {
            params: self.clone(),
        }
    }
}

/// Builder for overriding individual fields of a [`NodeParams`].
///
/// ```
/// use ecochip_techdb::{TechDb, TechNode};
/// let db = TechDb::default();
/// let tweaked = db
///     .node(TechNode::N7)?
///     .to_builder()
///     .defect_density(0.1)
///     .build()?;
/// assert!((tweaked.defect_density.per_cm2() - 0.1).abs() < 1e-12);
/// # Ok::<(), ecochip_techdb::TechDbError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NodeParamsBuilder {
    params: NodeParams,
}

impl NodeParamsBuilder {
    /// Override the defect density (defects/cm², must be ≥ 0 and finite).
    pub fn defect_density(mut self, per_cm2: f64) -> Self {
        self.params.defect_density = DefectDensity::from_per_cm2(per_cm2);
        self
    }

    /// Override the yield clustering parameter α.
    pub fn clustering_alpha(mut self, alpha: f64) -> Self {
        self.params.clustering_alpha = alpha;
        self
    }

    /// Override the logic transistor density (MTr/mm²).
    pub fn logic_density(mut self, mtr_per_mm2: f64) -> Self {
        self.params.logic_density = TransistorDensity::from_mtr_per_mm2(mtr_per_mm2);
        self
    }

    /// Override the memory transistor density (MTr/mm²).
    pub fn memory_density(mut self, mtr_per_mm2: f64) -> Self {
        self.params.memory_density = TransistorDensity::from_mtr_per_mm2(mtr_per_mm2);
        self
    }

    /// Override the analog transistor density (MTr/mm²).
    pub fn analog_density(mut self, mtr_per_mm2: f64) -> Self {
        self.params.analog_density = TransistorDensity::from_mtr_per_mm2(mtr_per_mm2);
        self
    }

    /// Override the manufacturing energy per area (kWh/cm²).
    pub fn epa(mut self, kwh_per_cm2: f64) -> Self {
        self.params.epa = EnergyPerArea::from_kwh_per_cm2(kwh_per_cm2);
        self
    }

    /// Override the process-gas footprint (kg CO₂e/cm²).
    pub fn gas_cfp(mut self, kg_per_cm2: f64) -> Self {
        self.params.gas_cfp = CarbonPerArea::from_kg_per_cm2(kg_per_cm2);
        self
    }

    /// Override the material-sourcing footprint (kg CO₂e/cm²).
    pub fn material_cfp(mut self, kg_per_cm2: f64) -> Self {
        self.params.material_cfp = CarbonPerArea::from_kg_per_cm2(kg_per_cm2);
        self
    }

    /// Override the equipment-efficiency derate (must end up in (0, 1]).
    pub fn equipment_derate(mut self, derate: f64) -> Self {
        self.params.equipment_derate = derate;
        self
    }

    /// Override the EDA productivity factor (must end up in (0, 1]).
    pub fn eda_productivity(mut self, eta: f64) -> Self {
        self.params.eda_productivity = eta;
        self
    }

    /// Override the RDL energy per layer per area (kWh/cm²).
    pub fn epla_rdl(mut self, kwh_per_cm2: f64) -> Self {
        self.params.epla_rdl = EnergyPerArea::from_kwh_per_cm2(kwh_per_cm2);
        self
    }

    /// Override the silicon-bridge energy per layer per area (kWh/cm²).
    pub fn epla_bridge(mut self, kwh_per_cm2: f64) -> Self {
        self.params.epla_bridge = EnergyPerArea::from_kwh_per_cm2(kwh_per_cm2);
        self
    }

    /// Override the nominal supply voltage (V).
    pub fn vdd(mut self, volts: f64) -> Self {
        self.params.vdd = Voltage::from_volts(volts);
        self
    }

    /// Override the raw-silicon wafer footprint (kg CO₂e/cm²).
    pub fn silicon_wafer_cfp(mut self, kg_per_cm2: f64) -> Self {
        self.params.silicon_wafer_cfp = CarbonPerArea::from_kg_per_cm2(kg_per_cm2);
        self
    }

    /// Validate and return the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::InvalidParameter`] when a value is outside its
    /// physically valid range (negative densities/EPA, derates outside (0,1],
    /// non-positive α, …).
    pub fn build(self) -> Result<NodeParams, TechDbError> {
        let p = self.params;
        if !p.clustering_alpha.is_finite() || p.clustering_alpha <= 0.0 {
            return Err(TechDbError::InvalidParameter {
                name: "clustering_alpha",
                value: p.clustering_alpha,
                expected: "a finite value > 0",
            });
        }
        if !(0.0 < p.equipment_derate && p.equipment_derate <= 1.0) {
            return Err(TechDbError::InvalidParameter {
                name: "equipment_derate",
                value: p.equipment_derate,
                expected: "a value in (0, 1]",
            });
        }
        if !(0.0 < p.eda_productivity && p.eda_productivity <= 1.0) {
            return Err(TechDbError::InvalidParameter {
                name: "eda_productivity",
                value: p.eda_productivity,
                expected: "a value in (0, 1]",
            });
        }
        for (name, value) in [
            ("logic_density", p.logic_density.mtr_per_mm2()),
            ("memory_density", p.memory_density.mtr_per_mm2()),
            ("analog_density", p.analog_density.mtr_per_mm2()),
            ("epa", p.epa.kwh_per_cm2()),
            ("gas_cfp", p.gas_cfp.kg_per_cm2()),
            ("material_cfp", p.material_cfp.kg_per_cm2()),
            ("epla_rdl", p.epla_rdl.kwh_per_cm2()),
            ("epla_bridge", p.epla_bridge.kwh_per_cm2()),
            ("vdd", p.vdd.volts()),
            ("silicon_wafer_cfp", p.silicon_wafer_cfp.kg_per_cm2()),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(TechDbError::InvalidParameter {
                    name,
                    value,
                    expected: "a finite value > 0",
                });
            }
        }
        Ok(p)
    }
}

/// Raw default table: one row per node.
///
/// Columns: node, D0 (/cm²), logic / memory / analog densities (MTr/mm²),
/// EPA (kWh/cm²), Cgas (kg/cm²), ηeq, ηEDA, EPLA_RDL, EPLA_bridge (kWh/cm²
/// per layer), Vdd (V).
const DEFAULT_ROWS: [ParamRow; 14] = [
    // node,      D0, logic, memory, analog, EPA, Cgas,  ηeq,  ηEDA, RDL,   bridge, Vdd
    //
    // The memory and analog columns are deliberately much flatter than the
    // logic column across the 5–16 nm range: SRAM bit cells and analog
    // devices have essentially stopped scaling, which is the premise of the
    // paper's technology mix-and-match argument.
    (
        TechNode::N3,
        0.30,
        215.0,
        280.0,
        40.0,
        3.50,
        0.50,
        1.00,
        0.50,
        0.200,
        0.350,
        0.70,
    ),
    (
        TechNode::N5,
        0.27,
        138.0,
        250.0,
        38.0,
        3.10,
        0.45,
        0.98,
        0.58,
        0.195,
        0.345,
        0.72,
    ),
    (
        TechNode::N7,
        0.24,
        91.0,
        225.0,
        35.0,
        2.75,
        0.40,
        0.95,
        0.65,
        0.190,
        0.340,
        0.75,
    ),
    (
        TechNode::N8,
        0.22,
        61.0,
        215.0,
        34.0,
        2.50,
        0.37,
        0.93,
        0.68,
        0.185,
        0.330,
        0.77,
    ),
    (
        TechNode::N10,
        0.20,
        55.0,
        205.0,
        33.0,
        2.35,
        0.35,
        0.92,
        0.71,
        0.180,
        0.320,
        0.78,
    ),
    (
        TechNode::N12,
        0.18,
        44.0,
        195.0,
        31.5,
        2.15,
        0.32,
        0.90,
        0.74,
        0.172,
        0.305,
        0.80,
    ),
    (
        TechNode::N14,
        0.16,
        32.0,
        185.0,
        30.0,
        2.00,
        0.30,
        0.88,
        0.77,
        0.165,
        0.290,
        0.82,
    ),
    (
        TechNode::N16,
        0.15,
        28.0,
        175.0,
        29.0,
        1.90,
        0.28,
        0.87,
        0.79,
        0.158,
        0.275,
        0.84,
    ),
    (
        TechNode::N22,
        0.12,
        16.5,
        150.0,
        26.0,
        1.60,
        0.22,
        0.83,
        0.84,
        0.140,
        0.240,
        0.90,
    ),
    (
        TechNode::N28,
        0.11,
        12.0,
        120.0,
        23.0,
        1.45,
        0.20,
        0.80,
        0.87,
        0.120,
        0.210,
        0.95,
    ),
    (
        TechNode::N40,
        0.09,
        7.0,
        70.0,
        18.0,
        1.20,
        0.16,
        0.76,
        0.92,
        0.090,
        0.160,
        1.05,
    ),
    (
        TechNode::N65,
        0.08,
        3.3,
        35.0,
        12.0,
        0.95,
        0.12,
        0.70,
        1.00,
        0.065,
        0.120,
        1.20,
    ),
    (
        TechNode::N90,
        0.075,
        1.6,
        20.0,
        8.0,
        0.85,
        0.11,
        0.68,
        1.00,
        0.055,
        0.110,
        1.35,
    ),
    (
        TechNode::N130,
        0.07,
        0.8,
        10.0,
        5.0,
        0.80,
        0.10,
        0.65,
        1.00,
        0.050,
        0.100,
        1.50,
    ),
];

/// Carbon footprint of material sourcing, `Cmaterial` (Table I fixes 0.5 kg/cm²).
const MATERIAL_CFP_KG_PER_CM2: f64 = 0.5;

/// Carbon footprint per area of the wasted wafer periphery, used to price the
/// wastage term of Eq. (5). The unusable edge area is still carried through
/// the full process flow (every lithography step patterns the whole wafer),
/// so it is charged roughly half of a processed die's per-area footprint:
/// raw wafer production plus shared processing, without test and packaging.
const SILICON_WAFER_CFP_KG_PER_CM2: f64 = 1.0;

/// One raw row of [`DEFAULT_ROWS`], in the column order documented there.
type ParamRow = (
    TechNode,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
);

fn default_params_for(row: &ParamRow) -> NodeParams {
    let (node, d0, logic, memory, analog, epa, gas, eta_eq, eta_eda, epla_rdl, epla_bridge, vdd) =
        *row;
    NodeParams {
        node,
        defect_density: DefectDensity::from_per_cm2(d0),
        clustering_alpha: 3.0,
        logic_density: TransistorDensity::from_mtr_per_mm2(logic),
        memory_density: TransistorDensity::from_mtr_per_mm2(memory),
        analog_density: TransistorDensity::from_mtr_per_mm2(analog),
        epa: EnergyPerArea::from_kwh_per_cm2(epa),
        gas_cfp: CarbonPerArea::from_kg_per_cm2(gas),
        material_cfp: CarbonPerArea::from_kg_per_cm2(MATERIAL_CFP_KG_PER_CM2),
        equipment_derate: eta_eq,
        eda_productivity: eta_eda,
        epla_rdl: EnergyPerArea::from_kwh_per_cm2(epla_rdl),
        epla_bridge: EnergyPerArea::from_kwh_per_cm2(epla_bridge),
        vdd: Voltage::from_volts(vdd),
        silicon_wafer_cfp: CarbonPerArea::from_kg_per_cm2(SILICON_WAFER_CFP_KG_PER_CM2),
    }
}

/// The technology-node parameter database.
///
/// The [`Default`] database contains an entry for every [`TechNode`] with the
/// values of Table I. Entries can be replaced or added through
/// [`TechDbBuilder`], and the whole database serializes to/from JSON so that
/// users with access to proprietary fab data can supply their own numbers (the
/// paper's validation section emphasises that accuracy is bounded by input
/// accuracy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechDb {
    nodes: BTreeMap<TechNode, NodeParams>,
}

impl TechDb {
    /// Parameters of a node.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] when the database has no entry for
    /// the node.
    pub fn node(&self, node: TechNode) -> Result<&NodeParams, TechDbError> {
        self.nodes
            .get(&node)
            .ok_or(TechDbError::MissingNode(node.nm()))
    }

    /// Whether the database contains an entry for `node`.
    pub fn contains(&self, node: TechNode) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Iterator over all `(node, params)` entries, most advanced node first.
    pub fn iter(&self) -> impl Iterator<Item = (&TechNode, &NodeParams)> {
        self.nodes.iter()
    }

    /// Number of node entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Start building a modified copy of this database.
    pub fn to_builder(&self) -> TechDbBuilder {
        TechDbBuilder {
            nodes: self.nodes.clone(),
        }
    }

    /// Convenience: die area for a transistor count of a given type at a node.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn area_for_transistors(
        &self,
        node: TechNode,
        design_type: DesignType,
        transistors: f64,
    ) -> Result<Area, TechDbError> {
        Ok(self
            .node(node)?
            .area_for_transistors(design_type, transistors))
    }

    /// Scale an area known at `from` node to the equivalent area at `to` node,
    /// holding the transistor count constant — the paper's area-scaling model.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn scale_area(
        &self,
        design_type: DesignType,
        area: Area,
        from: TechNode,
        to: TechNode,
    ) -> Result<Area, TechDbError> {
        let from_density = self.node(from)?.transistor_density(design_type);
        let to_density = self.node(to)?.transistor_density(design_type);
        Ok(Area::from_mm2(
            area.mm2() * from_density.mtr_per_mm2() / to_density.mtr_per_mm2(),
        ))
    }
}

impl Default for TechDb {
    fn default() -> Self {
        let nodes = DEFAULT_ROWS
            .iter()
            .map(|row| (row.0, default_params_for(row)))
            .collect();
        Self { nodes }
    }
}

/// Builder for a customised [`TechDb`].
#[derive(Debug, Clone, Default)]
pub struct TechDbBuilder {
    nodes: BTreeMap<TechNode, NodeParams>,
}

impl TechDbBuilder {
    /// Create an empty builder (no node entries).
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the entry for `params.node`.
    pub fn insert(mut self, params: NodeParams) -> Self {
        self.nodes.insert(params.node, params);
        self
    }

    /// Finish building.
    pub fn build(self) -> TechDb {
        TechDb { nodes: self.nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    #[test]
    fn default_db_covers_all_nodes() {
        let db = db();
        assert_eq!(db.len(), TechNode::ALL.len());
        assert!(!db.is_empty());
        for node in TechNode::ALL {
            assert!(db.contains(node));
            assert_eq!(db.node(node).unwrap().node, node);
        }
    }

    #[test]
    fn defect_density_decreases_with_maturity() {
        let db = db();
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let d = db.node(node).unwrap().defect_density.per_cm2();
            assert!(d <= prev, "defect density must not increase with maturity");
            assert!((0.07..=0.30).contains(&d), "Table I range");
            prev = d;
        }
    }

    #[test]
    fn logic_density_decreases_with_maturity() {
        let db = db();
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let d = db.node(node).unwrap().logic_density.mtr_per_mm2();
            assert!(d < prev);
            prev = d;
        }
    }

    #[test]
    fn epa_within_table_i_range_and_monotone() {
        let db = db();
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let epa = db.node(node).unwrap().epa.kwh_per_cm2();
            assert!((0.8..=3.5).contains(&epa));
            assert!(epa <= prev);
            prev = epa;
        }
    }

    #[test]
    fn derates_and_productivity_in_unit_interval() {
        let db = db();
        for node in TechNode::ALL {
            let p = db.node(node).unwrap();
            assert!(p.equipment_derate > 0.0 && p.equipment_derate <= 1.0);
            assert!(p.eda_productivity > 0.0 && p.eda_productivity <= 1.0);
            assert!((0.05..=0.2 + 1e-9).contains(&p.epla_rdl.kwh_per_cm2()));
            assert!((0.1..=0.35 + 1e-9).contains(&p.epla_bridge.kwh_per_cm2()));
            assert!((0.7..=1.8).contains(&p.vdd.volts()));
            assert!((0.1..=0.5).contains(&p.gas_cfp.kg_per_cm2()));
            assert!((p.material_cfp.kg_per_cm2() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn memory_scales_slower_than_logic() {
        // The ratio of memory to logic density should grow as nodes advance:
        // that is precisely "SRAM does not scale".
        let db = db();
        let ratio = |n: TechNode| {
            let p = db.node(n).unwrap();
            p.memory_density.mtr_per_mm2() / p.logic_density.mtr_per_mm2()
        };
        assert!(ratio(TechNode::N7) < ratio(TechNode::N14) * 1.5);
        // logic improves faster going 14nm -> 7nm than memory does.
        let p7 = db.node(TechNode::N7).unwrap();
        let p14 = db.node(TechNode::N14).unwrap();
        let logic_gain = p7.logic_density.mtr_per_mm2() / p14.logic_density.mtr_per_mm2();
        let memory_gain = p7.memory_density.mtr_per_mm2() / p14.memory_density.mtr_per_mm2();
        let analog_gain = p7.analog_density.mtr_per_mm2() / p14.analog_density.mtr_per_mm2();
        assert!(logic_gain > memory_gain);
        assert!(memory_gain > analog_gain);
    }

    #[test]
    fn area_for_transistors_matches_density() {
        let db = db();
        let p = db.node(TechNode::N7).unwrap();
        let area = p.area_for_transistors(DesignType::Logic, 91.0e6);
        assert!((area.mm2() - 1.0).abs() < 1e-9);
        let count = p.transistors_for_area(DesignType::Logic, area);
        assert!((count - 91.0e6).abs() < 1.0);
        let via_db = db
            .area_for_transistors(TechNode::N7, DesignType::Logic, 91.0e6)
            .unwrap();
        assert_eq!(area, via_db);
    }

    #[test]
    fn scale_area_logic_shrinks_and_analog_barely_moves() {
        let db = db();
        let a = Area::from_mm2(100.0);
        let logic_7 = db
            .scale_area(DesignType::Logic, a, TechNode::N14, TechNode::N7)
            .unwrap();
        let analog_7 = db
            .scale_area(DesignType::Analog, a, TechNode::N14, TechNode::N7)
            .unwrap();
        assert!(logic_7.mm2() < 45.0, "logic should shrink ~2.8x");
        assert!(analog_7.mm2() > 75.0, "analog should barely shrink");
        // Scaling to the same node is the identity.
        let same = db
            .scale_area(DesignType::Logic, a, TechNode::N14, TechNode::N14)
            .unwrap();
        assert!((same.mm2() - a.mm2()).abs() < 1e-9);
    }

    #[test]
    fn missing_node_error() {
        let empty = TechDbBuilder::new().build();
        assert!(matches!(
            empty.node(TechNode::N7),
            Err(TechDbError::MissingNode(7))
        ));
        assert!(empty.is_empty());
    }

    #[test]
    fn builder_overrides_are_applied_and_validated() {
        let db = db();
        let p = db.node(TechNode::N7).unwrap().clone();
        let tweaked = p
            .to_builder()
            .defect_density(0.1)
            .epa(1.5)
            .vdd(0.8)
            .eda_productivity(0.9)
            .equipment_derate(0.5)
            .logic_density(100.0)
            .memory_density(200.0)
            .analog_density(40.0)
            .gas_cfp(0.2)
            .material_cfp(0.5)
            .epla_rdl(0.1)
            .epla_bridge(0.2)
            .silicon_wafer_cfp(0.3)
            .clustering_alpha(4.0)
            .build()
            .unwrap();
        assert!((tweaked.defect_density.per_cm2() - 0.1).abs() < 1e-12);
        assert!((tweaked.epa.kwh_per_cm2() - 1.5).abs() < 1e-12);
        assert!((tweaked.clustering_alpha - 4.0).abs() < 1e-12);

        assert!(p.to_builder().equipment_derate(0.0).build().is_err());
        assert!(p.to_builder().eda_productivity(1.5).build().is_err());
        assert!(p.to_builder().clustering_alpha(-1.0).build().is_err());
        assert!(p.to_builder().epa(-2.0).build().is_err());
        assert!(p.to_builder().vdd(f64::NAN).build().is_err());
    }

    #[test]
    fn techdb_builder_replaces_entries() {
        let db = db();
        let custom = db
            .node(TechNode::N7)
            .unwrap()
            .to_builder()
            .defect_density(0.12)
            .build()
            .unwrap();
        let new_db = db.to_builder().insert(custom).build();
        assert!((new_db.node(TechNode::N7).unwrap().defect_density.per_cm2() - 0.12).abs() < 1e-12);
        // Other nodes untouched.
        assert_eq!(new_db.node(TechNode::N65), db.node(TechNode::N65));
        assert_eq!(new_db.len(), db.len());
    }

    #[test]
    fn serde_round_trip() {
        let db = db();
        let json = serde_json::to_string(&db).unwrap();
        let back: TechDb = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn defect_density_display_and_clamp() {
        let d = DefectDensity::from_per_cm2(-0.5);
        assert_eq!(d.per_cm2(), 0.0);
        let d = DefectDensity::from_per_cm2(0.2);
        assert!((d.per_mm2() - 0.002).abs() < 1e-15);
        assert!(!d.to_string().is_empty());
    }

    #[test]
    fn iter_is_ordered_most_advanced_first() {
        let db = db();
        let nodes: Vec<u32> = db.iter().map(|(n, _)| n.nm()).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(nodes, sorted);
    }
}
