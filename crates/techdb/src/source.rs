//! Energy-source presets and their carbon intensities.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TechDbError;
use crate::units::CarbonIntensity;

/// The energy source powering a fab, a design compute farm or a deployed
/// device.
///
/// Table I of the paper gives a 30–700 gCO₂/kWh range for `Cmfg,src`,
/// `Cpkg,src`, `Cdes,src` and the operational intensity. The presets below are
/// the conventional life-cycle intensities for each generation source; the
/// paper's headline experiments use [`EnergySource::Coal`] (700 gCO₂/kWh).
///
/// ```
/// use ecochip_techdb::EnergySource;
/// let coal = EnergySource::Coal.carbon_intensity();
/// let wind = EnergySource::Wind.carbon_intensity();
/// assert!(coal.g_per_kwh() > 50.0 * wind.g_per_kwh());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EnergySource {
    /// Coal-fired generation (700 gCO₂/kWh — the paper's default).
    Coal,
    /// Natural-gas generation (≈450 gCO₂/kWh).
    NaturalGas,
    /// Biomass generation (≈230 gCO₂/kWh).
    Biomass,
    /// World-average grid mix (≈475 gCO₂/kWh).
    WorldGrid,
    /// Solar photovoltaic (≈41 gCO₂/kWh).
    Solar,
    /// Hydroelectric (≈24 gCO₂/kWh).
    Hydro,
    /// Nuclear (≈12 gCO₂/kWh).
    Nuclear,
    /// Onshore wind (≈11 gCO₂/kWh).
    Wind,
    /// A user-supplied intensity in gCO₂/kWh, clamped to the Table I range
    /// [11, 700] on construction via [`EnergySource::custom`].
    Custom(f64),
}

impl EnergySource {
    /// Construct a custom source from a gCO₂/kWh intensity, clamped to the
    /// physically sensible [11, 700] range used by the paper.
    pub fn custom(g_per_kwh: f64) -> Self {
        EnergySource::Custom(g_per_kwh.clamp(11.0, 700.0))
    }

    /// Life-cycle carbon intensity of this source.
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let g_per_kwh = match self {
            EnergySource::Coal => 700.0,
            EnergySource::NaturalGas => 450.0,
            EnergySource::Biomass => 230.0,
            EnergySource::WorldGrid => 475.0,
            EnergySource::Solar => 41.0,
            EnergySource::Hydro => 24.0,
            EnergySource::Nuclear => 12.0,
            EnergySource::Wind => 11.0,
            EnergySource::Custom(v) => v,
        };
        CarbonIntensity::from_g_per_kwh(g_per_kwh)
    }

    /// All named (non-custom) presets, dirtiest first.
    pub const PRESETS: [EnergySource; 8] = [
        EnergySource::Coal,
        EnergySource::WorldGrid,
        EnergySource::NaturalGas,
        EnergySource::Biomass,
        EnergySource::Solar,
        EnergySource::Hydro,
        EnergySource::Nuclear,
        EnergySource::Wind,
    ];
}

impl Default for EnergySource {
    /// The paper's default fab/packaging/design energy source (coal).
    fn default() -> Self {
        EnergySource::Coal
    }
}

impl fmt::Display for EnergySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergySource::Coal => write!(f, "coal"),
            EnergySource::NaturalGas => write!(f, "natural_gas"),
            EnergySource::Biomass => write!(f, "biomass"),
            EnergySource::WorldGrid => write!(f, "world_grid"),
            EnergySource::Solar => write!(f, "solar"),
            EnergySource::Hydro => write!(f, "hydro"),
            EnergySource::Nuclear => write!(f, "nuclear"),
            EnergySource::Wind => write!(f, "wind"),
            EnergySource::Custom(v) => write!(f, "custom({v} gCO2e/kWh)"),
        }
    }
}

impl FromStr for EnergySource {
    type Err = TechDbError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "coal" => Ok(EnergySource::Coal),
            "gas" | "natural_gas" | "natural gas" => Ok(EnergySource::NaturalGas),
            "biomass" => Ok(EnergySource::Biomass),
            "grid" | "world_grid" | "world grid" => Ok(EnergySource::WorldGrid),
            "solar" | "pv" => Ok(EnergySource::Solar),
            "hydro" | "hydroelectric" => Ok(EnergySource::Hydro),
            "nuclear" => Ok(EnergySource::Nuclear),
            "wind" => Ok(EnergySource::Wind),
            other => match other.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => Ok(EnergySource::custom(v)),
                _ => Err(TechDbError::UnknownEnergySource(s.to_owned())),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coal_matches_paper_default() {
        assert!((EnergySource::Coal.carbon_intensity().g_per_kwh() - 700.0).abs() < 1e-9);
        assert_eq!(EnergySource::default(), EnergySource::Coal);
    }

    #[test]
    fn presets_span_table_i_range() {
        for src in EnergySource::PRESETS {
            let g = src.carbon_intensity().g_per_kwh();
            assert!((11.0 - 1e-9..=700.0 + 1e-9).contains(&g), "{src}: {g}");
        }
    }

    #[test]
    fn presets_are_sorted_dirtiest_first() {
        let values: Vec<f64> = EnergySource::PRESETS
            .iter()
            .map(|s| s.carbon_intensity().g_per_kwh())
            .collect();
        for pair in values.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn custom_clamps() {
        assert!((EnergySource::custom(5000.0).carbon_intensity().g_per_kwh() - 700.0).abs() < 1e-9);
        assert!((EnergySource::custom(1.0).carbon_intensity().g_per_kwh() - 11.0).abs() < 1e-9);
        assert!((EnergySource::custom(250.0).carbon_intensity().g_per_kwh() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn parse_names_and_numbers() {
        assert_eq!("coal".parse::<EnergySource>().unwrap(), EnergySource::Coal);
        assert_eq!("Wind".parse::<EnergySource>().unwrap(), EnergySource::Wind);
        assert_eq!(
            "natural gas".parse::<EnergySource>().unwrap(),
            EnergySource::NaturalGas
        );
        let custom = "350".parse::<EnergySource>().unwrap();
        assert!((custom.carbon_intensity().g_per_kwh() - 350.0).abs() < 1e-9);
        assert!("antimatter".parse::<EnergySource>().is_err());
        assert!("-5".parse::<EnergySource>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let s = serde_json::to_string(&EnergySource::Solar).unwrap();
        assert_eq!(s, "\"solar\"");
        let back: EnergySource = serde_json::from_str(&s).unwrap();
        assert_eq!(back, EnergySource::Solar);
    }

    #[test]
    fn display_nonempty() {
        for src in EnergySource::PRESETS {
            assert!(!src.to_string().is_empty());
        }
        assert!(EnergySource::custom(100.0).to_string().contains("custom"));
    }
}
