//! Regenerates Fig. 8 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig8() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
