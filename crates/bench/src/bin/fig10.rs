//! Regenerates Fig. 10 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig10() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig10 failed: {e}");
            std::process::exit(1);
        }
    }
}
