//! Regenerates the Section VII validation comparison. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::validation() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("validation failed: {e}");
            std::process::exit(1);
        }
    }
}
