//! Regenerates Fig. 2 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig2() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig2 failed: {e}");
            std::process::exit(1);
        }
    }
}
