//! Regenerates Fig. 11 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig11() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
