//! Regenerates Fig. 6 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig6() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
