//! Regenerates Fig. 14 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig14() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig14 failed: {e}");
            std::process::exit(1);
        }
    }
}
