//! Regenerates Fig. 7 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig7() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
