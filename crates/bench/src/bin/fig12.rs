//! Regenerates Fig. 12 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig12() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig12 failed: {e}");
            std::process::exit(1);
        }
    }
}
