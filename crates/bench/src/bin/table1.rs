//! Regenerates Table I of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::table1() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
