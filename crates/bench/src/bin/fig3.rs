//! Regenerates Fig. 3 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig3() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
