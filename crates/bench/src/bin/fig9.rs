//! Regenerates Fig. 9 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig9() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
