//! Regenerates Fig. 15 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig15() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig15 failed: {e}");
            std::process::exit(1);
        }
    }
}
