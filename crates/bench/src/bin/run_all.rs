//! Runs every experiment of the paper in order (Table I, Figs. 2–15,
//! validation) and prints all result tables.

fn main() {
    match ecochip_bench::experiments::all() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("experiment run failed: {e}");
            std::process::exit(1);
        }
    }
}
