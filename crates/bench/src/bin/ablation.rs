//! Runs the ablation study (extension beyond the paper's figures).

fn main() {
    match ecochip_bench::experiments::ablation() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
