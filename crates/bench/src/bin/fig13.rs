//! Regenerates Fig. 13 of the ECO-CHIP paper. See EXPERIMENTS.md.

fn main() {
    match ecochip_bench::experiments::fig13() {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(e) => {
            eprintln!("fig13 failed: {e}");
            std::process::exit(1);
        }
    }
}
