//! # ecochip-bench
//!
//! The experiment harness of the ECO-CHIP reproduction: one generator per
//! table and figure of the paper's evaluation (Sections II, IV, V and VI),
//! plus Criterion performance benches for the estimator itself.
//!
//! Every generator in [`experiments`] returns one or more [`Table`]s — the
//! same rows / series the paper plots — so the binaries under `src/bin/`
//! (`fig2`, `fig7`, …, `table1`, `validation`, `run_all`) simply print them.
//! `EXPERIMENTS.md` at the repository root records the paper-vs-measured
//! comparison for each of them.
//!
//! ```
//! let tables = ecochip_bench::experiments::fig2().unwrap();
//! assert!(!tables.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;

pub use table::Table;

/// Convenience error alias used by the experiment generators.
pub type ExperimentResult = Result<Vec<Table>, Box<dyn std::error::Error>>;
