//! Fig. 12: chiplet-reuse (design-CFP amortisation) and lifetime sweeps.

use ecochip_core::disaggregation::NodeTuple;
use ecochip_core::dse::sweep_reuse;
use ecochip_core::sweep::{SweepAxis, SweepEngine, SweepSpec};
use ecochip_core::{EcoChip, System};
use ecochip_techdb::{TechDb, TechNode};
use ecochip_testcases::{a15, emr, ga102};

use crate::{ExperimentResult, Table};

const RATIOS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
const LIFETIMES: [f64; 4] = [1.0, 2.0, 3.0, 5.0];

fn grid_table(
    estimator: &EcoChip,
    title: &str,
    system: &System,
) -> Result<Table, Box<dyn std::error::Error>> {
    let points = sweep_reuse(estimator, system, &RATIOS, &LIFETIMES)?;
    let mut headers = vec!["NMi/NS".to_owned()];
    headers.extend(LIFETIMES.iter().map(|y| format!("Ctot kg @ {y:.0}y")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for ratio in RATIOS {
        let mut cells = vec![format!("{ratio:.0}")];
        for years in LIFETIMES {
            let p = points
                .iter()
                .find(|p| {
                    (p.reuse_ratio - ratio).abs() < 1e-9
                        && (p.lifetime.years() - years).abs() < 1e-9
                })
                .expect("grid point exists");
            cells.push(format!("{:.1}", p.total.kg()));
        }
        table.row(cells);
    }
    Ok(table)
}

/// Fig. 12(a): design CFP of the 2-chiplet EMR (both chiplets in 7 nm) as the
/// chiplet-reuse ratio `NMi / NS` grows, and Fig. 12(b–d): total CFP over
/// reuse ratio × lifetime grids for the GA102, A15 and EMR test cases.
pub fn fig12() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();

    // (a) EMR design CFP vs reuse ratio.
    let emr_7nm = emr::two_chiplet_system_at(&db, TechNode::N7)?;
    let mut design = Table::new(
        "Fig. 12(a): EMR (2x 7nm chiplets) amortised design CFP vs reuse ratio",
        &["NMi/NS", "Cdes kg per system", "Cemb kg"],
    );
    let spec = SweepSpec::new(emr_7nm.clone()).axis(SweepAxis::reuse_ratios(
        emr_7nm.volumes.system_volume,
        &RATIOS,
    ));
    let points = SweepEngine::new().run(&estimator, &spec)?;
    for (ratio, point) in RATIOS.iter().zip(&points) {
        design.row([
            format!("{ratio:.0}"),
            format!("{:.2}", point.report.design().kg()),
            format!("{:.1}", point.report.embodied().kg()),
        ]);
    }

    // (b)–(d) total CFP grids.
    let ga = ga102::three_chiplet_system(
        &db,
        NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
    )?;
    let a15_sys = a15::three_chiplet_system(&db, a15::default_chiplet_nodes())?;
    let emr_sys = emr::two_chiplet_system(&db)?;
    let ga_grid = grid_table(
        &estimator,
        "Fig. 12(b): GA102 3-chiplet total CFP vs reuse ratio and lifetime",
        &ga,
    )?;
    let a15_grid = grid_table(
        &estimator,
        "Fig. 12(c): A15 3-chiplet total CFP vs reuse ratio and lifetime",
        &a15_sys,
    )?;
    let emr_grid = grid_table(
        &estimator,
        "Fig. 12(d): EMR 2-chiplet total CFP vs reuse ratio and lifetime",
        &emr_sys,
    )?;

    Ok(vec![design, ga_grid, a15_grid, emr_grid])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_design_cfp_falls_with_reuse() {
        let tables = fig12().unwrap();
        let design: Vec<f64> = tables[0]
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(design.windows(2).all(|w| w[1] < w[0]));
        // Doubling the reuse ratio roughly halves the amortised design CFP.
        assert!(design[0] / design.last().unwrap() > 8.0);
    }

    #[test]
    fn fig12_grids_are_monotone_in_both_axes() {
        let tables = fig12().unwrap();
        for grid in &tables[1..] {
            let rows = grid.rows();
            // Along a row (fixed ratio), total grows with lifetime.
            for row in rows {
                let values: Vec<f64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
                assert!(values.windows(2).all(|w| w[1] > w[0]), "{}", grid.title());
            }
            // Down a column (fixed lifetime), total falls as reuse grows.
            for col in 1..rows[0].len() {
                let values: Vec<f64> = rows.iter().map(|r| r[col].parse().unwrap()).collect();
                assert!(values.windows(2).all(|w| w[1] <= w[0]), "{}", grid.title());
            }
        }
    }

    #[test]
    fn fig12_a15_benefits_most_from_reuse() {
        let tables = fig12().unwrap();
        let relative_drop = |grid: &Table| -> f64 {
            let rows = grid.rows();
            let first: f64 = rows.first().unwrap()[2].parse().unwrap();
            let last: f64 = rows.last().unwrap()[2].parse().unwrap();
            1.0 - last / first
        };
        let ga = relative_drop(&tables[1]);
        let a15 = relative_drop(&tables[2]);
        assert!(a15 > ga, "A15 drop {a15} should exceed GA102 drop {ga}");
    }
}
