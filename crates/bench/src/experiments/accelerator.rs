//! Fig. 13: carbon-delay, carbon-power and carbon-area product curves for the
//! 3D-stacked AR/VR accelerator.

use ecochip_core::dse::ProductMetrics;
use ecochip_core::EcoChip;
use ecochip_techdb::TechDb;
use ecochip_testcases::arvr;

use crate::{ExperimentResult, Table};

/// Fig. 13: for every 3D-1K/2K configuration (1–4 SRAM tiers), the total CFP
/// (2-year lifetime), latency, power, footprint and the three product
/// metrics the paper plots.
pub fn fig13() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();

    let mut table = Table::new(
        "Fig. 13: AR/VR accelerator carbon-delay / carbon-power / carbon-area products",
        &[
            "config",
            "Cemb kg",
            "Ctot kg",
            "latency ms",
            "power W",
            "area mm2",
            "carbon-delay kg*s",
            "carbon-power kg*W",
            "carbon-area kg*mm2",
        ],
    );
    for config in arvr::ArVrConfig::all() {
        let system = arvr::system(&db, &config)?;
        let report = estimator.estimate(&system)?;
        let perf = arvr::performance(&config);
        let metrics = ProductMetrics::from_report(
            &report,
            perf.latency_ms * 1e-3,
            perf.power,
            perf.footprint,
        );
        table.row([
            config.label(),
            format!("{:.2}", report.embodied().kg()),
            format!("{:.2}", report.total().kg()),
            format!("{:.2}", perf.latency_ms),
            format!("{:.3}", perf.power.watts()),
            format!("{:.1}", perf.footprint.mm2()),
            format!("{:.4}", metrics.carbon_delay()),
            format!("{:.3}", metrics.carbon_power()),
            format!("{:.1}", metrics.carbon_area()),
        ]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_tradeoffs_match_the_paper() {
        let tables = fig13().unwrap();
        let rows = tables[0].rows();
        assert_eq!(rows.len(), 8);
        // Within the 1K series (rows 0..4): latency falls, total CFP rises
        // with the tier count.
        let series: Vec<(f64, f64)> = rows[..4]
            .iter()
            .map(|r| (r[3].parse().unwrap(), r[2].parse().unwrap()))
            .collect();
        assert!(
            series.windows(2).all(|w| w[1].0 < w[0].0),
            "latency must fall"
        );
        assert!(
            series.windows(2).all(|w| w[1].1 > w[0].1),
            "total CFP must rise"
        );
        // Embodied dominates for this low-power device.
        for row in rows {
            let cemb: f64 = row[1].parse().unwrap();
            let ctot: f64 = row[2].parse().unwrap();
            assert!(cemb / ctot > 0.5, "{row:?}");
        }
    }
}
