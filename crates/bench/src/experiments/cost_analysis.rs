//! Fig. 15: dollar-cost analysis with the integrated chiplet cost model.

use ecochip_core::costing::system_cost;
use ecochip_core::disaggregation::NodeTuple;
use ecochip_core::EcoChip;
use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig};
use ecochip_techdb::{TechDb, TechNode};
use ecochip_testcases::ga102;

use crate::{ExperimentResult, Table};

/// Fig. 15(a): per-unit dollar cost of the GA102 3-chiplet system across
/// technology tuples, and Fig. 15(b): cost versus the number of chiplets the
/// digital block is split into (die cost vs assembly cost).
pub fn fig15() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();

    let mut per_tuple = Table::new(
        "Fig. 15(a): GA102 3-chiplet dollar cost per technology tuple",
        &[
            "tuple",
            "dies $",
            "package $",
            "assembly $",
            "NRE $/unit",
            "total $",
        ],
    );
    for tuple in ga102::fig7_node_tuples() {
        let system = ga102::three_chiplet_system(&db, tuple)?;
        let cost = system_cost(&estimator, &system)?;
        per_tuple.row([
            tuple.label(),
            format!("{:.0}", cost.dies_total().dollars()),
            format!("{:.1}", cost.package_cost.dollars()),
            format!("{:.1}", cost.assembly_cost.dollars()),
            format!("{:.1}", cost.nre_per_system.dollars()),
            format!("{:.0}", cost.total().dollars()),
        ]);
    }

    let mut per_nc = Table::new(
        "Fig. 15(b): GA102 dollar cost vs number of digital chiplets (RDL fanout)",
        &[
            "digital chiplets",
            "dies $",
            "package+assembly $",
            "total $",
        ],
    );
    let nodes = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
    for nc in 1..=6usize {
        let system = ga102::split_logic_system(
            &db,
            nc,
            nodes,
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
        )?;
        let cost = system_cost(&estimator, &system)?;
        per_nc.row([
            format!("{nc}"),
            format!("{:.0}", cost.dies_total().dollars()),
            format!(
                "{:.1}",
                cost.package_cost.dollars() + cost.assembly_cost.dollars()
            ),
            format!("{:.0}", cost.total().dollars()),
        ]);
    }
    Ok(vec![per_tuple, per_nc])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_older_nodes_cost_less_and_assembly_grows_with_nc() {
        let tables = fig15().unwrap();
        let per_tuple = &tables[0];
        let total = |label: &str| -> f64 {
            per_tuple.rows().iter().find(|r| r[0] == label).unwrap()[5]
                .parse()
                .unwrap()
        };
        // Fig. 15(a): mixed / mature tuples are cheaper than the all-7nm one.
        assert!(total("(7, 14, 14)") < total("(7, 7, 7)"));

        // Fig. 15(b): die cost falls, assembly cost grows with Nc.
        let per_nc = &tables[1];
        let dies: Vec<f64> = per_nc
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        let assembly: Vec<f64> = per_nc
            .rows()
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(dies.last().unwrap() < dies.first().unwrap());
        assert!(assembly.last().unwrap() > assembly.first().unwrap());
    }
}
