//! Motivation figures: Fig. 2 (area / yield), Fig. 3 (wafer wastage) and
//! Fig. 6 (defect density).

use ecochip_core::disaggregation::{split_logic, NodeTuple};
use ecochip_core::{EcoChip, EstimatorConfig, ManufacturingModel, System};
use ecochip_packaging::{PackagingArchitecture, RdlFanoutConfig};
use ecochip_techdb::{Area, EnergySource, TechDb, TechNode};
use ecochip_testcases::ga102;
use ecochip_yield::Wafer;

use crate::{ExperimentResult, Table};

/// Fig. 2(a): manufacturing CFP versus die area in a 10 nm process, and
/// Fig. 2(b): the monolithic GA102 versus a 4-chiplet split, per node,
/// normalised to the monolith.
pub fn fig2() -> ExperimentResult {
    let db = TechDb::default();
    let model = ManufacturingModel::new(&db, Wafer::standard_450mm(), EnergySource::Coal);

    let mut area_sweep = Table::new(
        "Fig. 2(a): manufacturing CFP vs die area (10 nm)",
        &["area mm2", "yield %", "Cmfg kg CO2e"],
    );
    for area_mm2 in (25..=200).step_by(25) {
        let c = model.chiplet_cfp(Area::from_mm2(area_mm2 as f64), TechNode::N10)?;
        area_sweep.row([
            format!("{area_mm2}"),
            format!("{:.1}", c.die_yield.percent()),
            format!("{:.2}", c.total().kg()),
        ]);
    }

    let estimator = EcoChip::default();
    let mut normalized = Table::new(
        "Fig. 2(b): GA102 4-chiplet manufacturing CFP normalised to the monolith",
        &["node", "monolith kg", "4-chiplet kg", "normalised"],
    );
    let blocks = ga102::soc_blocks(&db)?;
    for node in [TechNode::N7, TechNode::N10, TechNode::N14] {
        let mono = estimator.estimate(&ga102::monolithic_system_at(&db, node)?)?;
        let split = System::builder(format!("ga102-4chiplet-{node}"))
            .chiplets(split_logic(&blocks, 2, NodeTuple::uniform(node))?)
            .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
            .usage(ga102::usage_profile())
            .build()?;
        let split_report = estimator.estimate(&split)?;
        let mono_mfg = mono.manufacturing().kg();
        let split_mfg = split_report.manufacturing().kg() + split_report.hi_overhead().kg();
        normalized.row([
            node.to_string(),
            format!("{mono_mfg:.1}"),
            format!("{split_mfg:.1}"),
            format!("{:.2}", split_mfg / mono_mfg),
        ]);
    }
    Ok(vec![area_sweep, normalized])
}

/// Fig. 3(b): manufacturing CFP of the monolithic and 4-chiplet GA102 with
/// and without wafer-periphery wastage accounting (450 mm wafer).
pub fn fig3() -> ExperimentResult {
    let db = TechDb::default();
    let with = EcoChip::default();
    let without = EcoChip::new(
        EstimatorConfig::builder()
            .include_wafer_wastage(false)
            .build(),
    );
    let blocks = ga102::soc_blocks(&db)?;
    let four_chiplet = System::builder("ga102-4chiplet")
        .chiplets(split_logic(
            &blocks,
            2,
            NodeTuple::new(TechNode::N8, TechNode::N8, TechNode::N8),
        )?)
        .packaging(PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()))
        .usage(ga102::usage_profile())
        .build()?;
    let monolith = ga102::monolithic_system(&db)?;

    let mut table = Table::new(
        "Fig. 3(b): wafer-wastage impact on GA102 manufacturing CFP (450 mm wafer)",
        &[
            "architecture",
            "without wastage kg",
            "with wastage kg",
            "wastage share %",
        ],
    );
    for (label, system) in [("monolithic", &monolith), ("4-chiplet", &four_chiplet)] {
        let a = with.estimate(system)?.manufacturing().kg();
        let b = without.estimate(system)?.manufacturing().kg();
        table.row([
            label.to_owned(),
            format!("{b:.1}"),
            format!("{a:.1}"),
            format!("{:.1}", (a - b) / a * 100.0),
        ]);
    }
    Ok(vec![table])
}

/// Fig. 6(a): normalised defect density per node, and Fig. 6(b): total CFP of
/// the monolithic GA102 as a function of the defect density.
pub fn fig6() -> ExperimentResult {
    let db = TechDb::default();
    let d65 = db.node(TechNode::N65)?.defect_density.per_cm2();

    let mut trend = Table::new(
        "Fig. 6(a): defect density per node (normalised to 65 nm)",
        &["node", "D0 /cm2", "normalised"],
    );
    for (node, p) in db.iter() {
        trend.row([
            node.to_string(),
            format!("{:.3}", p.defect_density.per_cm2()),
            format!("{:.2}", p.defect_density.per_cm2() / d65),
        ]);
    }

    let mut impact = Table::new(
        "Fig. 6(b): GA102 monolith total CFP vs defect density (8 nm-class die)",
        &["D0 /cm2", "Cemb kg", "Ctot kg"],
    );
    for step in 0..=5 {
        let d0 = 0.07 + step as f64 * (0.30 - 0.07) / 5.0;
        let node_params = db
            .node(TechNode::N8)?
            .to_builder()
            .defect_density(d0)
            .build()?;
        let custom_db = db.to_builder().insert(node_params).build();
        let estimator = EcoChip::new(EstimatorConfig::builder().techdb(custom_db.clone()).build());
        let report = estimator.estimate(&ga102::monolithic_system(&custom_db)?)?;
        impact.row([
            format!("{d0:.3}"),
            format!("{:.1}", report.embodied().kg()),
            format!("{:.1}", report.total().kg()),
        ]);
    }
    Ok(vec![trend, impact])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_cfp_grows_superlinearly_with_area() {
        let tables = fig2().unwrap();
        let rows = tables[0].rows();
        let first: f64 = rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = rows.last().unwrap()[2].parse().unwrap();
        // 8x the area must cost more than 8x the carbon (yield loss).
        assert!(last > 8.0 * first);
        // Fig. 2(b): the 4-chiplet split is below the monolith at every node.
        for row in tables[1].rows() {
            let normalised: f64 = row[3].parse().unwrap();
            assert!(normalised < 1.0, "{row:?}");
        }
    }

    #[test]
    fn fig3_wastage_accounting_raises_manufacturing_cfp() {
        let tables = fig3().unwrap();
        for row in tables[0].rows() {
            let without: f64 = row[1].parse().unwrap();
            let with: f64 = row[2].parse().unwrap();
            let share: f64 = row[3].parse().unwrap();
            assert!(with > without, "{row:?}");
            assert!(share > 0.0);
        }
    }

    #[test]
    fn fig6_cfp_grows_with_defect_density() {
        let tables = fig6().unwrap();
        let rows = tables[1].rows();
        let first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(last > first);
    }
}
