//! Table I: the input-parameter database.

use ecochip_techdb::TechDb;

use crate::{ExperimentResult, Table};

/// Regenerate Table I: the per-node manufacturing, packaging and design
/// parameters used by the framework (all values inside the paper's ranges).
pub fn table1() -> ExperimentResult {
    let db = TechDb::default();
    let mut table = Table::new(
        "Table I: input parameters per technology node",
        &[
            "node",
            "D0 /cm2",
            "logic MTr/mm2",
            "mem MTr/mm2",
            "analog MTr/mm2",
            "EPA kWh/cm2",
            "Cgas kg/cm2",
            "Cmat kg/cm2",
            "eta_eq",
            "eta_EDA",
            "EPLA_RDL",
            "EPLA_bridge",
            "Vdd V",
        ],
    );
    for (node, p) in db.iter() {
        table.row([
            node.to_string(),
            format!("{:.3}", p.defect_density.per_cm2()),
            format!("{:.1}", p.logic_density.mtr_per_mm2()),
            format!("{:.1}", p.memory_density.mtr_per_mm2()),
            format!("{:.1}", p.analog_density.mtr_per_mm2()),
            format!("{:.2}", p.epa.kwh_per_cm2()),
            format!("{:.2}", p.gas_cfp.kg_per_cm2()),
            format!("{:.2}", p.material_cfp.kg_per_cm2()),
            format!("{:.2}", p.equipment_derate),
            format!("{:.2}", p.eda_productivity),
            format!("{:.3}", p.epla_rdl.kwh_per_cm2()),
            format!("{:.3}", p.epla_bridge.kwh_per_cm2()),
            format!("{:.2}", p.vdd.volts()),
        ]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_one_row_per_node() {
        let tables = table1().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), ecochip_techdb::TechNode::ALL.len());
    }
}
