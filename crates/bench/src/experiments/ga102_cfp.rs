//! Fig. 7 (GA102 3-chiplet CFP breakdown across technology tuples) and
//! Fig. 14 (carbon-power / carbon-area products for the same sweep).

use ecochip_core::dse::sweep_node_tuples;
use ecochip_core::{EcoChip, EstimatorConfig};
use ecochip_design::{gates_from_transistors, DesignEstimator};
use ecochip_techdb::{TechDb, TechNode};
use ecochip_testcases::ga102;

use crate::{ExperimentResult, Table};

/// Fig. 7: the GA102 3-chiplet system with RDL fanout packaging, swept over
/// `(digital, memory, analog)` technology tuples:
///
/// * (a) chip manufacturing CFP plus HI overheads,
/// * (b) design CFP for a single SP&R iteration,
/// * (c) embodied CFP (with `Ndes = 100`, `NS = 100 000`) compared to ACT,
/// * (d) total CFP split into embodied and operational parts.
pub fn fig7() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let blocks = ga102::soc_blocks(&db)?;
    let base = ga102::three_chiplet_system(
        &db,
        ecochip_core::disaggregation::NodeTuple::uniform(TechNode::N7),
    )?;
    let tuples = ga102::fig7_node_tuples();
    let points = sweep_node_tuples(&estimator, &base, &blocks, &tuples)?;
    let design_model = DesignEstimator::new(&db, EstimatorConfig::default().design);

    let mut mfg = Table::new(
        "Fig. 7(a): GA102 Cmfg and CHI per technology tuple (RDL fanout)",
        &["tuple", "Cmfg kg", "CHI kg", "Cmfg+CHI kg"],
    );
    let mut des = Table::new(
        "Fig. 7(b): design CFP for a single SP&R iteration per chiplet",
        &["tuple", "digital kg", "memory kg", "analog kg", "total kg"],
    );
    let mut emb = Table::new(
        "Fig. 7(c): embodied CFP vs the ACT baseline (Ndes=100, NS=100k)",
        &[
            "tuple",
            "ECO-CHIP Cemb kg",
            "ACT Cemb kg",
            "ACT underestimate %",
        ],
    );
    let mut tot = Table::new(
        "Fig. 7(d): total CFP split (2-year lifetime, 228 kWh/year)",
        &["tuple", "Cemb kg", "Cop kg", "Ctot kg", "embodied share %"],
    );

    for point in &points {
        let r = &point.report;
        mfg.row([
            point.label.clone(),
            format!("{:.1}", r.manufacturing().kg()),
            format!("{:.1}", r.hi_overhead().kg()),
            format!("{:.1}", (r.manufacturing() + r.hi_overhead()).kg()),
        ]);

        // Single-iteration design CFP per chiplet (Fig. 7(b) shows one SP&R).
        let mut per_chiplet = Vec::new();
        for chiplet in &point.system.chiplets {
            let gates = gates_from_transistors(chiplet.transistors(&db)?)
                * estimator.config().design_effort_factor(chiplet.design_type);
            let cost = design_model.design_cost(gates, chiplet.node)?;
            per_chiplet.push(cost.single_iteration_cfp.kg());
        }
        let total_single: f64 = per_chiplet.iter().sum();
        des.row([
            point.label.clone(),
            format!("{:.0}", per_chiplet[0]),
            format!("{:.0}", per_chiplet[1]),
            format!("{:.0}", per_chiplet[2]),
            format!("{total_single:.0}"),
        ]);

        let act = estimator.act_embodied(&point.system)?;
        emb.row([
            point.label.clone(),
            format!("{:.1}", r.embodied().kg()),
            format!("{:.1}", act.total().kg()),
            format!(
                "{:.1}",
                (1.0 - act.total().kg() / r.embodied().kg()) * 100.0
            ),
        ]);

        tot.row([
            point.label.clone(),
            format!("{:.1}", r.embodied().kg()),
            format!("{:.1}", r.operational().kg()),
            format!("{:.1}", r.total().kg()),
            format!("{:.1}", r.embodied_fraction() * 100.0),
        ]);
    }
    Ok(vec![mfg, des, emb, tot])
}

/// Fig. 14: operational-power × total-CFP and area × total-CFP products for
/// the GA102 3-chiplet sweep, normalised to the monolithic counterpart.
pub fn fig14() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let blocks = ga102::soc_blocks(&db)?;
    let base = ga102::three_chiplet_system(
        &db,
        ecochip_core::disaggregation::NodeTuple::uniform(TechNode::N7),
    )?;
    let mono = estimator.estimate(&ga102::monolithic_system(&db)?)?;
    let hours_per_year = 8760.0;
    let mono_power =
        mono.operational_per_year.kg() / 0.7 /* kg per kWh */ / hours_per_year * 1000.0;
    let mono_area = mono.silicon_area().mm2();
    let mono_cp = mono.total().kg() * mono_power;
    let mono_ca = mono.total().kg() * mono_area;

    let points = sweep_node_tuples(&estimator, &base, &blocks, &ga102::fig7_node_tuples())?;
    let mut table = Table::new(
        "Fig. 14: GA102 carbon-power and carbon-area products (normalised to the monolith)",
        &[
            "tuple",
            "power W",
            "area mm2",
            "carbon-power (norm)",
            "carbon-area (norm)",
        ],
    );
    for point in &points {
        let r = &point.report;
        let power_w = r.operational_per_year.kg() / 0.7 / hours_per_year * 1000.0;
        let area = r.silicon_area().mm2() + r.hi.whitespace_area.mm2();
        table.row([
            point.label.clone(),
            format!("{power_w:.1}"),
            format!("{area:.0}"),
            format!("{:.2}", r.total().kg() * power_w / mono_cp),
            format!("{:.2}", r.total().kg() * area / mono_ca),
        ]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_mixed_tuple_beats_uniform_and_act_underestimates() {
        let tables = fig7().unwrap();
        assert_eq!(tables.len(), 4);
        let emb = &tables[2];
        let find = |label: &str| -> f64 {
            emb.rows()
                .iter()
                .find(|r| r[0] == label)
                .unwrap_or_else(|| panic!("{label} missing"))[1]
                .parse()
                .unwrap()
        };
        assert!(find("(7, 14, 10)") < find("(7, 7, 7)"));
        assert!(find("(14, 14, 14)") > find("(7, 7, 7)"));
        for row in emb.rows() {
            let underestimate: f64 = row[3].parse().unwrap();
            assert!(underestimate > 0.0, "ACT must underestimate: {row:?}");
        }
        // Design CFP of a single SP&R iteration is in the thousands of kg for
        // the digital chiplet (the paper quotes 8,400 kg at 7 nm).
        let digital_single: f64 = tables[1].rows()[0][1].parse().unwrap();
        assert!(digital_single > 2_000.0 && digital_single < 30_000.0);
    }

    #[test]
    fn fig14_products_track_the_embodied_trend() {
        let tables = fig14().unwrap();
        let rows = tables[0].rows();
        // The all-14nm configuration must have the worst carbon-area product.
        let norm_ca: Vec<f64> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        let last = *norm_ca.last().unwrap();
        assert!(last >= norm_ca[0]);
        for value in norm_ca {
            assert!(value.is_finite() && value > 0.0);
        }
    }
}
