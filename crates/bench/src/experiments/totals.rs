//! Fig. 8 (EMR and A15 total CFP vs their monolithic counterparts) and the
//! Section VII validation check.

use ecochip_core::{CarbonReport, EcoChip};
use ecochip_techdb::TechDb;
use ecochip_testcases::{a15, emr};

use crate::{ExperimentResult, Table};

fn split_row(label: &str, report: &CarbonReport) -> [String; 5] {
    [
        label.to_owned(),
        format!("{:.1}", report.embodied().kg()),
        format!("{:.1}", report.operational().kg()),
        format!("{:.1}", report.total().kg()),
        format!("{:.1}", report.embodied_fraction() * 100.0),
    ]
}

/// Fig. 8: total CFP split into embodied and operational parts for
/// (a) the EMR 2-chiplet EMIB CPU and (b) the A15 3-chiplet mobile SoC, both
/// compared to their monolithic counterparts.
pub fn fig8() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();

    let mut emr_table = Table::new(
        "Fig. 8(a): Emerald Rapids total CFP (EMIB 2-chiplet vs monolithic)",
        &[
            "architecture",
            "Cemb kg",
            "Cop kg",
            "Ctot kg",
            "embodied share %",
        ],
    );
    let emr_mono = estimator.estimate(&emr::monolithic_system(&db)?)?;
    let emr_two = estimator.estimate(&emr::two_chiplet_system(&db)?)?;
    emr_table.row(split_row("monolithic", &emr_mono));
    emr_table.row(split_row("2-chiplet EMIB", &emr_two));

    let mut a15_table = Table::new(
        "Fig. 8(b): Apple A15 total CFP (RDL 3-chiplet vs monolithic)",
        &[
            "architecture",
            "Cemb kg",
            "Cop kg",
            "Ctot kg",
            "embodied share %",
        ],
    );
    let a15_mono = estimator.estimate(&a15::monolithic_system(&db)?)?;
    let a15_chip = estimator.estimate(&a15::three_chiplet_system(
        &db,
        a15::default_chiplet_nodes(),
    )?)?;
    a15_table.row(split_row("monolithic", &a15_mono));
    a15_table.row(split_row("3-chiplet RDL", &a15_chip));

    Ok(vec![emr_table, a15_table])
}

/// Section VII validation: the A15 embodied/operational split should be close
/// to the 80 % / 20 % attribution derived from Apple's product environmental
/// report, and the absolute CFP should be a small number of kilograms
/// (roughly 16 % of the whole iPhone's reported footprint).
pub fn validation() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let report = estimator.estimate(&a15::monolithic_system(&db)?)?;

    let iphone_total_kg = 66.0; // Apple's iPhone 14 product environmental report figure.
    let mut table = Table::new(
        "Validation: A15 split vs the Apple product report attribution",
        &["metric", "ECO-CHIP (this repo)", "paper / report"],
    );
    table.row([
        "embodied share %".to_owned(),
        format!("{:.1}", report.embodied_fraction() * 100.0),
        "~80".to_owned(),
    ]);
    table.row([
        "operational share %".to_owned(),
        format!("{:.1}", (1.0 - report.embodied_fraction()) * 100.0),
        "~20".to_owned(),
    ]);
    table.row([
        "A15 total CFP kg".to_owned(),
        format!("{:.1}", report.total().kg()),
        format!(
            "~{:.1} (16% of iPhone {iphone_total_kg} kg)",
            0.16 * iphone_total_kg
        ),
    ]);
    table.row([
        "A15 share of iPhone %".to_owned(),
        format!("{:.1}", report.total().kg() / iphone_total_kg * 100.0),
        "~16".to_owned(),
    ]);
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_chiplet_variants_do_not_increase_total_cfp() {
        let tables = fig8().unwrap();
        for table in &tables {
            let mono_total: f64 = table.rows()[0][3].parse().unwrap();
            let chip_total: f64 = table.rows()[1][3].parse().unwrap();
            assert!(chip_total <= mono_total * 1.02, "{}", table.title());
        }
        // The server CPU is operational-dominated, the phone SoC
        // embodied-dominated.
        let emr_share: f64 = tables[0].rows()[0][4].parse().unwrap();
        let a15_share: f64 = tables[1].rows()[0][4].parse().unwrap();
        assert!(emr_share < 50.0);
        assert!(a15_share > 60.0);
    }

    #[test]
    fn validation_split_is_near_the_report() {
        let tables = validation().unwrap();
        let embodied_share: f64 = tables[0].rows()[0][1].parse().unwrap();
        assert!((60.0..=95.0).contains(&embodied_share));
        let share_of_iphone: f64 = tables[0].rows()[3][1].parse().unwrap();
        assert!(share_of_iphone > 5.0 && share_of_iphone < 60.0);
    }
}
