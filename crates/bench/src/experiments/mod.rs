//! Experiment generators — one public function per table / figure of the
//! paper.
//!
//! | Function | Paper artefact | What it regenerates |
//! |---|---|---|
//! | [`table1`] | Table I | Input-parameter table per technology node |
//! | [`fig2`] | Fig. 2 | Manufacturing CFP vs die area; monolithic vs 4-chiplet GA102 per node |
//! | [`fig3`] | Fig. 3(b) | Wafer-wastage impact on the GA102 |
//! | [`fig6`] | Fig. 6 | Defect-density trend and its impact on total CFP |
//! | [`fig7`] | Fig. 7 | GA102 3-chiplet: Cmfg+CHI, Cdes, Cemb vs ACT, Ctot split |
//! | [`fig8`] | Fig. 8 | EMR and A15 total CFP vs their monolithic counterparts |
//! | [`fig9`] | Fig. 9 | HI overheads per packaging architecture vs chiplet count |
//! | [`fig10`] | Fig. 10 | GA102 Cmfg and CHI vs number of chiplets |
//! | [`fig11`] | Fig. 11 | Packaging parameter sweeps on the A15 |
//! | [`fig12`] | Fig. 12 | Design-CFP amortisation and lifetime sweeps |
//! | [`fig13`] | Fig. 13 | AR/VR accelerator carbon-delay/power/area products |
//! | [`fig14`] | Fig. 14 | GA102 carbon-power and carbon-area products per node |
//! | [`fig15`] | Fig. 15 | Dollar-cost analysis per node tuple and chiplet count |
//! | [`validation`] | Section VII | A15 embodied/operational split sanity check |
//! | [`ablation`] | (extension) | Contribution of each modelling ingredient |

mod ablation;
mod accelerator;
mod cost_analysis;
mod ga102_cfp;
mod motivation;
mod packaging_space;
mod parameters;
mod reuse;
mod totals;

pub use ablation::ablation;
pub use accelerator::fig13;
pub use cost_analysis::fig15;
pub use ga102_cfp::{fig14, fig7};
pub use motivation::{fig2, fig3, fig6};
pub use packaging_space::{fig10, fig11, fig9};
pub use parameters::table1;
pub use reuse::fig12;
pub use totals::{fig8, validation};

use crate::ExperimentResult;

/// Run every experiment in paper order and return all tables.
///
/// # Errors
///
/// Propagates the first generator failure.
pub fn all() -> ExperimentResult {
    let mut tables = Vec::new();
    for generator in [
        table1, fig2, fig3, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
        validation, ablation,
    ] {
        tables.extend(generator()?);
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_nonempty_tables() {
        type Generator = (&'static str, fn() -> ExperimentResult);
        let generators: [Generator; 15] = [
            ("table1", table1),
            ("fig2", fig2),
            ("fig3", fig3),
            ("fig6", fig6),
            ("fig7", fig7),
            ("fig8", fig8),
            ("fig9", fig9),
            ("fig10", fig10),
            ("fig11", fig11),
            ("fig12", fig12),
            ("fig13", fig13),
            ("fig14", fig14),
            ("fig15", fig15),
            ("validation", validation),
            ("ablation", ablation),
        ];
        for (name, generator) in generators {
            let tables = generator().unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(!tables.is_empty(), "{name} produced no tables");
            for table in &tables {
                assert!(
                    !table.is_empty(),
                    "{name} produced an empty table: {}",
                    table.title()
                );
                assert!(!table.to_string().is_empty());
            }
        }
    }
}
