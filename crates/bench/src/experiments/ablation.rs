//! Ablation study (beyond the paper's figures): how much each modelling
//! ingredient ECO-CHIP adds over simpler carbon models contributes to the
//! embodied-CFP estimate of the GA102 3-chiplet test case.
//!
//! The ablations correspond to the omissions the paper criticises in prior
//! work (fixed package CFP, no design CFP, no wafer wastage) plus the
//! framework-level knobs (wafer size, fab energy source).

use ecochip_core::disaggregation::NodeTuple;
use ecochip_core::{EcoChip, EstimatorConfig};
use ecochip_techdb::{Carbon, EnergySource, TechDb, TechNode};
use ecochip_testcases::ga102;
use ecochip_yield::Wafer;

use crate::{ExperimentResult, Table};

/// Ablation table: GA102 3-chiplet (7, 14, 10) embodied CFP under the full
/// model and with individual ingredients removed or substituted.
pub fn ablation() -> ExperimentResult {
    let db = TechDb::default();
    let system = ga102::three_chiplet_system(
        &db,
        NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
    )?;

    let full = EcoChip::default().estimate(&system)?;
    let full_embodied = full.embodied();

    let mut table = Table::new(
        "Ablation: GA102 3-chiplet embodied CFP under model variants",
        &["variant", "Cemb kg", "delta vs full %", "note"],
    );
    let mut push = |name: &str, embodied: Carbon, note: &str| {
        table.row([
            name.to_owned(),
            format!("{:.1}", embodied.kg()),
            format!("{:+.1}", (embodied.kg() / full_embodied.kg() - 1.0) * 100.0),
            note.to_owned(),
        ]);
    };

    push("full model", full_embodied, "paper configuration");

    // (a) no wafer-periphery wastage.
    let no_wastage = EcoChip::new(
        EstimatorConfig::builder()
            .include_wafer_wastage(false)
            .build(),
    )
    .estimate(&system)?;
    push(
        "no wafer wastage",
        no_wastage.embodied(),
        "drops the Awasted term of Eq. (5)",
    );

    // (b) no design CFP (prior-work style).
    let no_design = full.manufacturing() + full.hi_overhead();
    push(
        "no design CFP",
        no_design,
        "manufacturing + packaging only, like ACT",
    );

    // (c) fixed 150 g package instead of the architecture-aware model.
    let fixed_package = full.manufacturing() + full.design() + Carbon::from_grams(150.0);
    push(
        "fixed 150 g package",
        fixed_package,
        "replaces C_HI with ACT's constant",
    );

    // (d) ACT baseline entirely.
    let act = EcoChip::default().act_embodied(&system)?;
    push(
        "ACT baseline",
        act.total(),
        "no design, fixed package, no wastage",
    );

    // (e) 300 mm production wafers instead of 450 mm.
    let small_wafer = EcoChip::new(
        EstimatorConfig::builder()
            .wafer(Wafer::standard_300mm())
            .build(),
    )
    .estimate(&system)?;
    push(
        "300 mm wafer",
        small_wafer.embodied(),
        "more periphery wastage per die",
    );

    // (f) renewable-powered fab, packaging and design compute.
    let renewable = EcoChip::new(
        EstimatorConfig::builder()
            .fab_source(EnergySource::Solar)
            .packaging_source(EnergySource::Solar)
            .design(ecochip_design::DesignConfig {
                source: EnergySource::Solar,
                ..ecochip_design::DesignConfig::default()
            })
            .build(),
    )
    .estimate(&system)?;
    push(
        "solar-powered fab/EDA",
        renewable.embodied(),
        "gas + material footprint remains",
    );

    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_move_in_the_expected_directions() {
        let tables = ablation().unwrap();
        let rows = tables[0].rows();
        let value = |name: &str| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        let full = value("full model");
        assert!(value("no wafer wastage") < full);
        assert!(value("no design CFP") < full);
        assert!(value("fixed 150 g package") < full);
        assert!(value("ACT baseline") < value("no design CFP"));
        assert!(value("300 mm wafer") >= full);
        assert!(value("solar-powered fab/EDA") < full);
        // The renewable floor is still a substantial share (gas + material).
        assert!(value("solar-powered fab/EDA") > 0.15 * full);
    }
}
