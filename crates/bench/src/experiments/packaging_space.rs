//! Fig. 9 (HI overheads per packaging architecture), Fig. 10 (GA102 Cmfg and
//! CHI vs chiplet count) and Fig. 11 (packaging parameter sweeps).
//!
//! All three figures are evaluated by the parallel, memoizing
//! [`SweepEngine`]: Fig. 9 is one `Systems × Packaging` cartesian sweep,
//! Fig. 10 a chiplet-count sweep, and Fig. 11's four parameter sweeps share
//! a single [`SweepContext`] so the (packaging-independent) floorplan is
//! planned once across all of them.

use ecochip_core::disaggregation::{split_block, NodeTuple};
use ecochip_core::dse::sweep_chiplet_counts;
use ecochip_core::sweep::{SweepAxis, SweepContext, SweepEngine, SweepSpec};
use ecochip_core::{EcoChip, System};
use ecochip_packaging::{
    InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig,
};
use ecochip_power::UsageProfile;
use ecochip_techdb::{DesignType, Energy, Length, TechDb, TechNode, TimeSpan};
use ecochip_testcases::{a15, ga102};

use crate::{ExperimentResult, Table};

/// The five packaging architectures the paper compares.
fn architectures() -> Vec<(&'static str, PackagingArchitecture)> {
    vec![
        (
            "RDL fanout",
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
        ),
        (
            "EMIB bridge",
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
        ),
        (
            "passive interposer",
            PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
        ),
        (
            "active interposer",
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
        ),
        (
            "3D microbump",
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ),
    ]
}

/// The GA102's 500 mm² (8 nm-class) digital block, split into `nc` 7 nm
/// chiplets and integrated with `packaging`.
fn digital_block_system(
    db: &TechDb,
    nc: usize,
    packaging: PackagingArchitecture,
) -> Result<System, Box<dyn std::error::Error>> {
    let per_mm2 = db
        .node(TechNode::N8)?
        .transistors_for_area(DesignType::Logic, ecochip_techdb::Area::from_mm2(1.0));
    let transistors = ga102::LOGIC_AREA_MM2 * per_mm2;
    let chiplets = split_block("digital", DesignType::Logic, TechNode::N7, transistors, nc)?;
    Ok(System::builder(format!("ga102-digital-{nc}way"))
        .chiplets(chiplets)
        .packaging(packaging)
        .usage(UsageProfile::Measured {
            energy_per_year: Energy::from_kwh(180.0),
        })
        .lifetime(TimeSpan::from_years(2.0))
        .build()?)
}

/// Fig. 9: HI-related CFP overheads (package + inter-die routing) for the
/// five packaging architectures as the 500 mm² digital block is split into
/// 2–8 chiplets.
pub fn fig9() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let mut table = Table::new(
        "Fig. 9: HI CFP overheads (kg CO2e) per packaging architecture and chiplet count",
        &["architecture", "Nc=2", "Nc=4", "Nc=6", "Nc=8"],
    );
    let mut routing = Table::new(
        "Fig. 9 (detail): routing share of the HI overhead (kg CO2e in interposer logic)",
        &["architecture", "Nc=2", "Nc=4", "Nc=6", "Nc=8"],
    );
    let archs = architectures();
    let counts = [2usize, 4, 6, 8];
    let mut variants = Vec::with_capacity(counts.len());
    for nc in counts {
        // The packaging axis below overrides this placeholder architecture.
        let placeholder = PackagingArchitecture::RdlFanout(RdlFanoutConfig::default());
        variants.push((
            format!("Nc={nc}"),
            digital_block_system(&db, nc, placeholder)?,
        ));
    }
    let spec = SweepSpec::new(variants[0].1.clone())
        .axis(SweepAxis::Systems(variants))
        .axis(SweepAxis::Packaging(
            archs.iter().map(|(_, arch)| *arch).collect(),
        ));
    // Points come back in row-major order: chiplet count outer, architecture
    // inner.
    let points = SweepEngine::new().run(&estimator, &spec)?;
    for (ai, (name, _)) in archs.iter().enumerate() {
        let mut chi_cells = vec![(*name).to_owned()];
        let mut routing_cells = vec![(*name).to_owned()];
        for ci in 0..counts.len() {
            let report = &points[ci * archs.len() + ai].report;
            chi_cells.push(format!("{:.2}", report.hi_overhead().kg()));
            routing_cells.push(format!("{:.2}", report.hi.interposer_comm.kg()));
        }
        table.row(chi_cells);
        routing.row(routing_cells);
    }
    Ok(vec![table, routing])
}

/// Fig. 10: GA102 chip manufacturing CFP and HI overheads as the digital
/// block is split into more chiplets (memory and analog chiplets fixed at
/// 14 nm / 10 nm, RDL fanout packaging).
pub fn fig10() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let nodes = NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10);
    let mut table = Table::new(
        "Fig. 10: GA102 Cmfg and CHI vs number of digital chiplets (RDL fanout)",
        &[
            "digital chiplets",
            "total chiplets",
            "Cmfg kg",
            "CHI kg",
            "Cmfg+CHI kg",
        ],
    );
    let counts: Vec<usize> = (1..=6).collect();
    let base = ga102::split_logic_system(
        &db,
        1,
        nodes,
        PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
    )?;
    let blocks = ga102::soc_blocks(&db)?;
    let points = sweep_chiplet_counts(&estimator, &base, &blocks, nodes, &counts)?;
    for (nc, point) in counts.iter().zip(&points) {
        let report = &point.report;
        table.row([
            format!("{nc}"),
            format!("{}", nc + 2),
            format!("{:.1}", report.manufacturing().kg()),
            format!("{:.2}", report.hi_overhead().kg()),
            format!(
                "{:.1}",
                (report.manufacturing() + report.hi_overhead()).kg()
            ),
        ]);
    }
    Ok(vec![table])
}

/// Fig. 11: packaging parameter sweeps on the A15 3-chiplet test case:
/// (a) RDL layer count, (b) EMIB bridge range, (c) active-interposer node,
/// (d) TSV / microbump pitch.
pub fn fig11() -> ExperimentResult {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let nodes = a15::default_chiplet_nodes();
    let base = a15::three_chiplet_system(&db, nodes)?;

    // The four parameter sweeps only vary the packaging, so they share one
    // memo: the A15 outline set is floorplanned once for all 18 points.
    let engine = SweepEngine::new();
    let context = SweepContext::new();
    let run_packaging_sweep =
        |configs: Vec<PackagingArchitecture>| -> Result<Vec<_>, Box<dyn std::error::Error>> {
            let cases = SweepSpec::new(base.clone())
                .axis(SweepAxis::Packaging(configs))
                .cases()?;
            Ok(engine.run_cases_with(&estimator, cases, &context)?)
        };

    let mut rdl = Table::new(
        "Fig. 11(a): A15 CHI vs RDL layer count",
        &["L_RDL", "CHI kg"],
    );
    let layer_counts = [4u32, 5, 6, 7, 8, 9];
    let points = run_packaging_sweep(
        layer_counts
            .iter()
            .map(|&layers| {
                PackagingArchitecture::RdlFanout(RdlFanoutConfig {
                    layers,
                    tech: TechNode::N65,
                })
            })
            .collect(),
    )?;
    for (layers, point) in layer_counts.iter().zip(&points) {
        rdl.row([
            format!("{layers}"),
            format!("{:.3}", point.report.hi_overhead().kg()),
        ]);
    }

    let mut bridge = Table::new(
        "Fig. 11(b): A15 CHI vs EMIB bridge range",
        &["bridge range mm", "bridges", "CHI kg"],
    );
    let ranges_mm = [1.0, 2.0, 3.0, 4.0];
    let points = run_packaging_sweep(
        ranges_mm
            .iter()
            .map(|&range_mm| {
                PackagingArchitecture::SiliconBridge(SiliconBridgeConfig {
                    bridge_range: Length::from_mm(range_mm),
                    ..SiliconBridgeConfig::default()
                })
            })
            .collect(),
    )?;
    for (range_mm, point) in ranges_mm.iter().zip(&points) {
        let floorplan = estimator.floorplan_with(&point.system, &context)?;
        let package = ecochip_packaging::PackageEstimator::new(
            &estimator.config().techdb,
            estimator.config().packaging_source,
        )
        .package_cfp(&point.system.packaging, &floorplan)?;
        bridge.row([
            format!("{range_mm:.0}"),
            format!("{}", package.bridge_count),
            format!("{:.3}", point.report.hi_overhead().kg()),
        ]);
    }

    let mut interposer = Table::new(
        "Fig. 11(c): A15 CHI vs active-interposer technology node",
        &["interposer node", "CHI kg"],
    );
    let techs = [TechNode::N22, TechNode::N28, TechNode::N40, TechNode::N65];
    let points = run_packaging_sweep(
        techs
            .iter()
            .map(|&tech| {
                PackagingArchitecture::ActiveInterposer(InterposerConfig {
                    tech,
                    ..InterposerConfig::default()
                })
            })
            .collect(),
    )?;
    for (tech, point) in techs.iter().zip(&points) {
        interposer.row([
            tech.to_string(),
            format!("{:.3}", point.report.hi_overhead().kg()),
        ]);
    }

    let mut pitch = Table::new(
        "Fig. 11(d): A15 CHI vs TSV / microbump pitch (3D stacking)",
        &["pitch um", "CHI kg"],
    );
    let pitches_um = [10.0, 20.0, 30.0, 45.0];
    let points = run_packaging_sweep(
        pitches_um
            .iter()
            .map(|&pitch_um| {
                PackagingArchitecture::ThreeD(ThreeDConfig::tsv(Length::from_um(pitch_um)))
            })
            .collect(),
    )?;
    for (pitch_um, point) in pitches_um.iter().zip(&points) {
        pitch.row([
            format!("{pitch_um:.0}"),
            format!("{:.3}", point.report.hi_overhead().kg()),
        ]);
    }

    Ok(vec![rdl, bridge, interposer, pitch])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_interposers_cost_more_than_rdl_and_emib_grows_with_nc() {
        let tables = fig9().unwrap();
        let chi = &tables[0];
        let row = |name: &str| -> Vec<f64> {
            chi.rows()
                .iter()
                .find(|r| r[0] == name)
                .unwrap()
                .iter()
                .skip(1)
                .map(|c| c.parse().unwrap())
                .collect()
        };
        let rdl = row("RDL fanout");
        let emib = row("EMIB bridge");
        let active = row("active interposer");
        let passive = row("passive interposer");
        for i in 0..4 {
            assert!(active[i] > rdl[i]);
            assert!(active[i] > passive[i]);
        }
        // EMIB overheads grow with the chiplet count (more bridges).
        assert!(emib[3] > emib[0]);
        // Active interposers carry routing carbon, RDL does not.
        let routing = &tables[1];
        let active_routing: f64 = routing
            .rows()
            .iter()
            .find(|r| r[0] == "active interposer")
            .unwrap()[1]
            .parse()
            .unwrap();
        let rdl_routing: f64 = routing
            .rows()
            .iter()
            .find(|r| r[0] == "RDL fanout")
            .unwrap()[1]
            .parse()
            .unwrap();
        assert!(active_routing > 0.0);
        assert!(rdl_routing == 0.0);
    }

    #[test]
    fn fig10_mfg_falls_and_chi_rises_with_chiplet_count() {
        let tables = fig10().unwrap();
        let rows = tables[0].rows();
        let first_mfg: f64 = rows.first().unwrap()[2].parse().unwrap();
        let last_mfg: f64 = rows.last().unwrap()[2].parse().unwrap();
        let first_chi: f64 = rows.first().unwrap()[3].parse().unwrap();
        let last_chi: f64 = rows.last().unwrap()[3].parse().unwrap();
        assert!(last_mfg < first_mfg);
        assert!(last_chi > first_chi);
    }

    #[test]
    fn fig11_sweeps_follow_the_paper_directions() {
        let tables = fig11().unwrap();
        // (a) more RDL layers => more CHI (linear).
        let rdl: Vec<f64> = tables[0]
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(rdl.windows(2).all(|w| w[1] > w[0]));
        // (b) larger bridge range => fewer bridges => less CHI.
        let bridge: Vec<f64> = tables[1]
            .rows()
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(bridge.first().unwrap() >= bridge.last().unwrap());
        // (c) older interposer node => less CHI.
        let interposer: Vec<f64> = tables[2]
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(interposer.windows(2).all(|w| w[1] < w[0]));
        // (d) larger pitch => fewer TSVs => less CHI.
        let pitch: Vec<f64> = tables[3]
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(pitch.windows(2).all(|w| w[1] <= w[0]));
    }
}
