//! A minimal column-aligned table for experiment output.

use std::fmt;

/// A named table with a header row and data rows, printed with aligned
/// columns. The experiment binaries emit one or more of these per figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row. Rows shorter than the header are padded with empty
    /// cells; longer rows are kept as-is.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  ", width = width));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total_width: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats() {
        let mut t = Table::new("Demo", &["config", "kg CO2e"]);
        t.row(["(7,7,7)", "45.3"]);
        t.row(vec!["(7,14,10)".to_owned(), "44.4".to_owned()]);
        t.row(["short-row"]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Demo");
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows()[2][1], "");
        let text = t.to_string();
        assert!(text.contains("## Demo"));
        assert!(text.contains("(7,14,10)"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("Empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("Empty"));
    }
}
