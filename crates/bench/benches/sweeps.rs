//! Criterion benchmarks for the paper-scale experiment sweeps: these measure
//! how long regenerating each figure of the evaluation takes end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use ecochip_bench::experiments;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig7_ga102_node_sweep", |b| {
        b.iter(|| experiments::fig7().unwrap())
    });
    group.bench_function("fig9_packaging_sweep", |b| {
        b.iter(|| experiments::fig9().unwrap())
    });
    group.bench_function("fig12_reuse_grids", |b| {
        b.iter(|| experiments::fig12().unwrap())
    });
    group.bench_function("fig13_accelerator_products", |b| {
        b.iter(|| experiments::fig13().unwrap())
    });
    group.bench_function("fig15_cost_analysis", |b| {
        b.iter(|| experiments::fig15().unwrap())
    });
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_all");
    group.sample_size(10);
    group.bench_function("all_figures_and_tables", |b| {
        b.iter(|| experiments::all().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_full_run);
criterion_main!(benches);
