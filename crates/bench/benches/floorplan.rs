//! Criterion benchmarks for the slicing floorplanner and the substrate
//! models (yield, wafer, NoC router estimation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ecochip_floorplan::{ChipletOutline, FloorplanConfig, SlicingFloorplanner};
use ecochip_noc::{RouterConfig, RouterEstimator};
use ecochip_techdb::{Area, TechDb, TechNode};
use ecochip_yield::{NegativeBinomialYield, Wafer};

fn random_chiplets(n: usize, seed: u64) -> Vec<ChipletOutline> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| ChipletOutline::new(format!("c{i}"), Area::from_mm2(rng.gen_range(10.0..300.0))))
        .collect()
}

fn bench_floorplanner(c: &mut Criterion) {
    let planner = SlicingFloorplanner::new(FloorplanConfig::default());
    let mut group = c.benchmark_group("floorplan");
    for n in [2usize, 4, 8, 16, 32] {
        let chiplets = random_chiplets(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chiplets, |b, chiplets| {
            b.iter(|| planner.floorplan(std::hint::black_box(chiplets)).unwrap());
        });
    }
    group.finish();
}

fn bench_yield_and_wafer(c: &mut Criterion) {
    let db = TechDb::default();
    let model = NegativeBinomialYield::for_node(db.node(TechNode::N7).unwrap());
    let wafer = Wafer::standard_450mm();
    c.bench_function("yield_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for area in 1..200 {
                acc += model
                    .yield_for(Area::from_mm2(std::hint::black_box(area as f64 * 4.0)))
                    .fraction();
            }
            acc
        });
    });
    c.bench_function("wafer_utilization", |b| {
        b.iter(|| {
            wafer
                .utilization(Area::from_mm2(std::hint::black_box(628.0)))
                .unwrap()
        });
    });
}

fn bench_router_estimation(c: &mut Criterion) {
    let db = TechDb::default();
    let estimator = RouterEstimator::new(RouterConfig::default());
    let mut group = c.benchmark_group("router_estimate");
    for node in [TechNode::N7, TechNode::N65] {
        let params = db.node(node).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(node), params, |b, params| {
            b.iter(|| estimator.estimate(std::hint::black_box(params)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_floorplanner,
    bench_yield_and_wafer,
    bench_router_estimation
);
criterion_main!(benches);
