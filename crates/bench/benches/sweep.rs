//! Criterion benchmarks for the sweep engine itself: hand-rolled serial
//! evaluation vs the engine's serial (memoized) path vs the parallel path,
//! plus the streaming pipeline against the materialize-then-collect path.
//!
//! The workload is a packaging × lifetime cartesian sweep of the GA102
//! 3-chiplet test case — the lifetime axis never perturbs the floorplan or
//! manufacturing stages, so the memoized paths skip most of that work while
//! producing bit-for-bit identical reports.

use criterion::{criterion_group, criterion_main, Criterion};

use ecochip_core::disaggregation::NodeTuple;
use ecochip_core::sweep::{Shard, SweepAxis, SweepContext, SweepEngine, SweepPoint, SweepSpec};
use ecochip_core::EcoChip;
use ecochip_packaging::{
    InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig,
};
use ecochip_techdb::{TechDb, TechNode};
use ecochip_testcases::ga102;

fn spec() -> SweepSpec {
    let db = TechDb::default();
    let base = ga102::three_chiplet_system(
        &db,
        NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
    )
    .unwrap();
    SweepSpec::new(base)
        .axis(SweepAxis::Packaging(vec![
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
            PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
            PackagingArchitecture::ThreeD(ThreeDConfig::default()),
        ]))
        .axis(SweepAxis::lifetimes_years(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
}

fn bench_sweep_paths(c: &mut Criterion) {
    let estimator = EcoChip::default();
    let spec = spec();
    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);

    // Reference: the pre-SweepEngine shape — a serial loop of memo-free
    // estimates over the same cases.
    group.bench_function("serial_loop_no_memo", |b| {
        b.iter(|| {
            let cases = spec.cases().unwrap();
            cases
                .iter()
                .map(|case| estimator.estimate(&case.system).unwrap())
                .collect::<Vec<_>>()
        })
    });

    group.bench_function("engine_serial_memoized", |b| {
        b.iter(|| SweepEngine::serial().run(&estimator, &spec).unwrap())
    });

    group.bench_function("engine_parallel_memoized", |b| {
        b.iter(|| SweepEngine::new().run(&estimator, &spec).unwrap())
    });

    group.finish();
}

fn bench_memoization_effect(c: &mut Criterion) {
    let estimator = EcoChip::default();
    let spec = spec();
    let mut group = c.benchmark_group("sweep_memoization");
    group.sample_size(10);

    // Identical serial evaluation with and without the stage memo, to isolate
    // the caching win from the threading win.
    group.bench_function("cold_context_per_point", |b| {
        b.iter(|| {
            let cases = spec.cases().unwrap();
            cases
                .iter()
                .map(|case| {
                    estimator
                        .estimate_with(&case.system, &SweepContext::disabled())
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });

    group.bench_function("shared_context", |b| {
        b.iter(|| {
            let context = SweepContext::new();
            let cases = spec.cases().unwrap();
            let reports = cases
                .iter()
                .map(|case| estimator.estimate_with(&case.system, &context).unwrap())
                .collect::<Vec<_>>();
            // The lifetime axis shares the packaging point's stages: the
            // memo must have absorbed most floorplan calls.
            let stats = context.stats();
            assert!(stats.floorplan_hits > stats.floorplan_misses);
            reports
        })
    });

    group.finish();
}

fn bench_streaming_vs_materialized(c: &mut Criterion) {
    let estimator = EcoChip::default();
    let spec = spec();
    let mut group = c.benchmark_group("sweep_streaming");
    group.sample_size(10);

    // Materialized: collect every point into a Vec (the run() path).
    group.bench_function("materialized_collect", |b| {
        b.iter(|| SweepEngine::new().run(&estimator, &spec).unwrap())
    });

    // Streaming: fold points through a sink without retaining them — the
    // shape a million-point sweep must use; throughput should match the
    // materialized path since both share the same work-queue pipeline.
    group.bench_function("streaming_fold", |b| {
        b.iter(|| {
            let mut total_kg = 0.0f64;
            let mut sink = |point: SweepPoint| {
                total_kg += point.report.total().kg();
                Ok(())
            };
            let emitted = SweepEngine::new()
                .run_streaming(&estimator, &spec, &mut sink)
                .unwrap();
            assert_eq!(emitted, spec.len());
            total_kg
        })
    });

    // Sharded streaming: both halves of the index space, evaluated
    // back-to-back over one warm context (the cross-process distribution
    // shape, minus the second process).
    group.bench_function("streaming_two_shards_warm_memo", |b| {
        b.iter(|| {
            let context = SweepContext::new();
            let mut count = 0usize;
            for index in 0..2 {
                let shard = Shard::new(index, 2).unwrap();
                let mut sink = |_point: SweepPoint| Ok(());
                count += SweepEngine::new()
                    .run_streaming_with(&estimator, &spec, shard, &context, &mut sink)
                    .unwrap();
            }
            assert_eq!(count, spec.len());
            count
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_paths,
    bench_memoization_effect,
    bench_streaming_vs_materialized
);
criterion_main!(benches);
