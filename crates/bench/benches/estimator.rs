//! Criterion benchmarks for the core ECO-CHIP estimator: single-system
//! estimation latency for each test case and packaging architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ecochip_core::disaggregation::NodeTuple;
use ecochip_core::EcoChip;
use ecochip_packaging::{
    InterposerConfig, PackagingArchitecture, RdlFanoutConfig, SiliconBridgeConfig, ThreeDConfig,
};
use ecochip_techdb::{TechDb, TechNode};
use ecochip_testcases::{a15, arvr, emr, ga102};

fn bench_testcases(c: &mut Criterion) {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let systems = vec![
        ("ga102-monolithic", ga102::monolithic_system(&db).unwrap()),
        (
            "ga102-3chiplet",
            ga102::three_chiplet_system(
                &db,
                NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
            )
            .unwrap(),
        ),
        (
            "a15-3chiplet",
            a15::three_chiplet_system(&db, a15::default_chiplet_nodes()).unwrap(),
        ),
        ("emr-2chiplet", emr::two_chiplet_system(&db).unwrap()),
        (
            "arvr-3d-2k-16mb",
            arvr::system(&db, &arvr::ArVrConfig::new(arvr::Series::TwoK, 4)).unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("estimate_testcase");
    for (name, system) in &systems {
        group.bench_with_input(BenchmarkId::from_parameter(name), system, |b, system| {
            b.iter(|| estimator.estimate(std::hint::black_box(system)).unwrap());
        });
    }
    group.finish();
}

fn bench_packaging_architectures(c: &mut Criterion) {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let base = ga102::three_chiplet_system(
        &db,
        NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
    )
    .unwrap();
    let architectures = vec![
        (
            "rdl",
            PackagingArchitecture::RdlFanout(RdlFanoutConfig::default()),
        ),
        (
            "emib",
            PackagingArchitecture::SiliconBridge(SiliconBridgeConfig::default()),
        ),
        (
            "passive-interposer",
            PackagingArchitecture::PassiveInterposer(InterposerConfig::default()),
        ),
        (
            "active-interposer",
            PackagingArchitecture::ActiveInterposer(InterposerConfig::default()),
        ),
        ("3d", PackagingArchitecture::ThreeD(ThreeDConfig::default())),
    ];
    let mut group = c.benchmark_group("estimate_packaging");
    for (name, arch) in architectures {
        let system = base.with_packaging(arch);
        group.bench_with_input(BenchmarkId::from_parameter(name), &system, |b, system| {
            b.iter(|| estimator.estimate(std::hint::black_box(system)).unwrap());
        });
    }
    group.finish();
}

fn bench_act_baseline(c: &mut Criterion) {
    let db = TechDb::default();
    let estimator = EcoChip::default();
    let system = ga102::three_chiplet_system(
        &db,
        NodeTuple::new(TechNode::N7, TechNode::N14, TechNode::N10),
    )
    .unwrap();
    c.bench_function("act_baseline", |b| {
        b.iter(|| {
            estimator
                .act_embodied(std::hint::black_box(&system))
                .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_testcases,
    bench_packaging_architectures,
    bench_act_baseline
);
criterion_main!(benches);
