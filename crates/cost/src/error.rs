//! Error types for the cost model.

use std::error::Error;
use std::fmt;

use ecochip_techdb::TechDbError;
use ecochip_yield::YieldError;

/// Errors produced by the chiplet cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostError {
    /// The technology database has no entry for a required node.
    TechDb(TechDbError),
    /// Dies-per-wafer or yield computation failed.
    Yield(YieldError),
    /// An input value was out of range.
    InvalidInput {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::TechDb(e) => write!(f, "technology database error: {e}"),
            CostError::Yield(e) => write!(f, "yield model error: {e}"),
            CostError::InvalidInput { name, value } => {
                write!(f, "invalid value {value} for {name}")
            }
        }
    }
}

impl Error for CostError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CostError::TechDb(e) => Some(e),
            CostError::Yield(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechDbError> for CostError {
    fn from(value: TechDbError) -> Self {
        CostError::TechDb(value)
    }
}

impl From<YieldError> for CostError {
    fn from(value: YieldError) -> Self {
        CostError::Yield(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CostError = TechDbError::MissingNode(7).into();
        assert!(e.to_string().contains("technology"));
        assert!(Error::source(&e).is_some());
        let e: CostError = YieldError::DieLargerThanWafer {
            die_mm2: 1e6,
            wafer_diameter_mm: 300.0,
        }
        .into();
        assert!(e.to_string().contains("yield"));
        let e = CostError::InvalidInput {
            name: "volume",
            value: 0.0,
        };
        assert!(e.to_string().contains("volume"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostError>();
    }
}
