//! # ecochip-cost
//!
//! Chiplet dollar-cost model, reproducing the role of the third-party cost
//! tool the ECO-CHIP paper integrates with for Section VI(2) (Fig. 15).
//!
//! The model follows the standard chiplet cost decomposition (Graening et al.,
//! "Chiplets: How Small is Too Small?", DAC 2023):
//!
//! * **Die cost** — wafer price of the node divided by dies-per-wafer and die
//!   yield (known-good-die cost).
//! * **Package cost** — substrate / interposer / bridge / bond formation cost
//!   depending on the packaging class, divided by the assembly yield.
//! * **NRE cost** — mask-set and design NRE amortised over the production
//!   volume.
//!
//! The absolute dollar figures are industry-estimate defaults; the purpose is
//! to reproduce the *relative* trends of Fig. 15 (older nodes are cheaper,
//! disaggregation trades die cost against assembly cost).
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{Area, TechDb, TechNode};
//! use ecochip_cost::{CostModel, PackageCostClass};
//!
//! let db = TechDb::default();
//! let model = CostModel::new(&db);
//! let dies = [(Area::from_mm2(300.0), TechNode::N7), (Area::from_mm2(100.0), TechNode::N14)];
//! let cost = model.system_cost(&dies, &PackageCostClass::RdlFanout { layers: 4, area: Area::from_mm2(450.0) }, 100_000)?;
//! assert!(cost.total().dollars() > 50.0);
//! # Ok::<(), ecochip_cost::CostError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod model;
mod money;

pub use error::CostError;
pub use model::{CostBreakdown, CostModel, PackageCostClass};
pub use money::Dollars;
