//! A minimal money newtype.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A US-dollar amount.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dollars(f64);

impl Dollars {
    /// Zero dollars.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Create an amount from dollars.
    #[inline]
    pub fn new(dollars: f64) -> Self {
        Self(dollars)
    }

    /// The amount in dollars.
    #[inline]
    pub fn dollars(self) -> f64 {
        self.0
    }

    /// Returns the larger of two amounts.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Self) -> Self {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    fn sub(self, rhs: Self) -> Self {
        Dollars(self.0 - rhs.0)
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Self {
        Dollars(self.0 * rhs)
    }
}

impl Mul<Dollars> for f64 {
    type Output = Dollars;
    fn mul(self, rhs: Dollars) -> Dollars {
        Dollars(self * rhs.0)
    }
}

impl Div<f64> for Dollars {
    type Output = Dollars;
    fn div(self, rhs: f64) -> Self {
        Dollars(self.0 / rhs)
    }
}

impl Div<Dollars> for Dollars {
    type Output = f64;
    fn div(self, rhs: Dollars) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Dollars(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Dollars::new(10.0);
        let b = Dollars::new(2.5);
        assert!(((a + b).dollars() - 12.5).abs() < 1e-12);
        assert!(((a - b).dollars() - 7.5).abs() < 1e-12);
        assert!(((a * 2.0).dollars() - 20.0).abs() < 1e-12);
        assert!(((2.0 * a).dollars() - 20.0).abs() < 1e-12);
        assert!(((a / 4.0).dollars() - 2.5).abs() < 1e-12);
        assert!((a / b - 4.0).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        let mut c = Dollars::ZERO;
        c += a;
        assert_eq!(c, a);
        let total: Dollars = vec![a, b].into_iter().sum();
        assert!((total.dollars() - 12.5).abs() < 1e-12);
        assert_eq!(Dollars::default(), Dollars::ZERO);
        assert_eq!(a.to_string(), "$10.00");
    }

    #[test]
    fn serde_is_transparent() {
        let s = serde_json::to_string(&Dollars::new(5.0)).unwrap();
        assert_eq!(s, "5.0");
        let d: Dollars = serde_json::from_str("7.25").unwrap();
        assert!((d.dollars() - 7.25).abs() < 1e-12);
    }
}
