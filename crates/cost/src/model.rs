//! The chiplet dollar-cost model.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Area, TechDb, TechNode};
use ecochip_yield::{NegativeBinomialYield, Wafer};

use crate::error::CostError;
use crate::money::Dollars;

/// Package description used for cost purposes.
///
/// This mirrors the packaging architectures of the CFP model but carries only
/// the quantities the cost model needs, so that the cost crate does not depend
/// on the packaging crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum PackageCostClass {
    /// A bare monolithic die in a conventional flip-chip package.
    Monolithic,
    /// RDL fanout substrate with the given layer count and substrate area.
    RdlFanout {
        /// Number of RDL layers.
        layers: u32,
        /// Substrate area.
        area: Area,
    },
    /// Organic substrate with embedded silicon bridges.
    SiliconBridge {
        /// Number of bridges.
        bridges: u32,
        /// Substrate area.
        area: Area,
    },
    /// Passive silicon interposer of the given area and node.
    PassiveInterposer {
        /// Interposer area.
        area: Area,
        /// Interposer technology node.
        node: TechNode,
    },
    /// Active silicon interposer of the given area and node.
    ActiveInterposer {
        /// Interposer area.
        area: Area,
        /// Interposer technology node.
        node: TechNode,
    },
    /// 3D stack with the given total bond count.
    ThreeD {
        /// Total number of TSVs / microbumps / hybrid bonds.
        bonds: f64,
    },
}

/// Cost breakdown of one assembled system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Known-good-die cost of each die, in input order.
    pub die_costs: Vec<Dollars>,
    /// Package substrate / interposer / bridge / bond cost, including the
    /// assembly-yield penalty.
    pub package_cost: Dollars,
    /// Per-chiplet placement / bonding operations cost.
    pub assembly_cost: Dollars,
    /// NRE (mask sets) amortised per system at the given volume.
    pub nre_per_system: Dollars,
}

impl CostBreakdown {
    /// Total die cost.
    pub fn dies_total(&self) -> Dollars {
        self.die_costs.iter().copied().sum()
    }

    /// Total cost per assembled system.
    pub fn total(&self) -> Dollars {
        self.dies_total() + self.package_cost + self.assembly_cost + self.nre_per_system
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} total (dies {}, package {}, assembly {}, NRE {})",
            self.total(),
            self.dies_total(),
            self.package_cost,
            self.assembly_cost,
            self.nre_per_system
        )
    }
}

/// Per-node wafer price (USD per 300 mm wafer) and mask-set NRE (USD).
fn node_economics(node: TechNode) -> (f64, f64) {
    match node {
        TechNode::N3 => (20_000.0, 35.0e6),
        TechNode::N5 => (17_000.0, 28.0e6),
        TechNode::N7 => (9_300.0, 18.0e6),
        TechNode::N8 => (8_000.0, 15.0e6),
        TechNode::N10 => (6_500.0, 12.0e6),
        TechNode::N12 => (5_800.0, 10.0e6),
        TechNode::N14 => (5_000.0, 8.0e6),
        TechNode::N16 => (4_500.0, 7.0e6),
        TechNode::N22 => (3_800.0, 5.0e6),
        TechNode::N28 => (3_000.0, 3.5e6),
        TechNode::N40 => (2_600.0, 2.5e6),
        TechNode::N65 => (2_000.0, 1.5e6),
        TechNode::N90 => (1_700.0, 1.0e6),
        TechNode::N130 => (1_500.0, 0.7e6),
    }
}

/// Cost per cm² per RDL layer on an organic / fanout substrate (USD).
const RDL_COST_PER_CM2_PER_LAYER: f64 = 0.45;
/// Cost of one embedded silicon bridge (USD).
const BRIDGE_COST: f64 = 6.0;
/// Placement / bonding operation cost per chiplet (USD).
const PLACEMENT_COST_PER_CHIPLET: f64 = 1.8;
/// Cost per thousand 3D bonds formed (USD).
const BOND_COST_PER_KILO_BOND: f64 = 0.02;
/// Assembly yield applied to multi-chiplet packages.
const ASSEMBLY_YIELD: f64 = 0.98;

/// The chiplet cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    db: &'a TechDb,
    wafer: Wafer,
}

impl<'a> CostModel<'a> {
    /// Create a cost model over the given technology database, using 300 mm
    /// production wafers (the industry-standard pricing basis).
    pub fn new(db: &'a TechDb) -> Self {
        Self {
            db,
            wafer: Wafer::standard_300mm(),
        }
    }

    /// Override the wafer size used for dies-per-wafer computations.
    pub fn with_wafer(mut self, wafer: Wafer) -> Self {
        self.wafer = wafer;
        self
    }

    /// Wafer price for a node (USD per wafer).
    pub fn wafer_cost(&self, node: TechNode) -> Dollars {
        Dollars::new(node_economics(node).0)
    }

    /// Mask-set NRE for a node (USD).
    pub fn mask_set_cost(&self, node: TechNode) -> Dollars {
        Dollars::new(node_economics(node).1)
    }

    /// Known-good-die cost: wafer price / dies-per-wafer / die yield.
    ///
    /// # Errors
    ///
    /// Returns [`CostError`] for unknown nodes, invalid areas, or dies larger
    /// than the wafer.
    pub fn die_cost(&self, area: Area, node: TechNode) -> Result<Dollars, CostError> {
        let params = self.db.node(node)?;
        let dpw = self.wafer.dies_per_wafer(area)?;
        let y = NegativeBinomialYield::for_node(params).yield_for(area);
        Ok(self.wafer_cost(node) / dpw as f64 * y.inflation_factor())
    }

    /// Package-related cost for a cost class (before the assembly-yield
    /// penalty, which [`CostModel::system_cost`] applies).
    ///
    /// # Errors
    ///
    /// Returns [`CostError`] for unknown interposer nodes or invalid areas.
    pub fn package_cost(&self, class: &PackageCostClass) -> Result<Dollars, CostError> {
        Ok(match class {
            PackageCostClass::Monolithic => Dollars::new(2.0),
            PackageCostClass::RdlFanout { layers, area } => {
                Dollars::new(RDL_COST_PER_CM2_PER_LAYER * area.cm2() * f64::from(*layers))
            }
            PackageCostClass::SiliconBridge { bridges, area } => {
                Dollars::new(RDL_COST_PER_CM2_PER_LAYER * area.cm2() * 2.0)
                    + Dollars::new(BRIDGE_COST * f64::from(*bridges))
            }
            PackageCostClass::PassiveInterposer { area, node } => {
                // A metal-only silicon die: half the wafer price of the node.
                let base = self.die_cost(*area, *node)?;
                base * 0.5
            }
            PackageCostClass::ActiveInterposer { area, node } => self.die_cost(*area, *node)?,
            PackageCostClass::ThreeD { bonds } => {
                Dollars::new(BOND_COST_PER_KILO_BOND * bonds.max(0.0) / 1_000.0)
            }
        })
    }

    /// Full per-system cost of a set of dies in a package, with NRE amortised
    /// over `volume` systems.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidInput`] for a zero volume and propagates
    /// die-cost errors.
    pub fn system_cost(
        &self,
        dies: &[(Area, TechNode)],
        package: &PackageCostClass,
        volume: u64,
    ) -> Result<CostBreakdown, CostError> {
        if volume == 0 {
            return Err(CostError::InvalidInput {
                name: "volume",
                value: 0.0,
            });
        }
        let mut die_costs = Vec::with_capacity(dies.len());
        let mut nre = Dollars::ZERO;
        // Identical chiplets (same node and area) share one mask set — the
        // "design once, instantiate many times" reuse the paper argues for.
        let mut distinct_designs: Vec<(TechNode, i64)> = Vec::new();
        for (area, node) in dies {
            die_costs.push(self.die_cost(*area, *node)?);
            let key = (*node, (area.mm2() * 1.0e3).round() as i64);
            if !distinct_designs.contains(&key) {
                distinct_designs.push(key);
                nre += self.mask_set_cost(*node);
            }
        }
        let assembly_yield = if dies.len() > 1 { ASSEMBLY_YIELD } else { 1.0 };
        let package_cost = self.package_cost(package)? / assembly_yield;
        let assembly_cost =
            Dollars::new(PLACEMENT_COST_PER_CHIPLET * dies.len() as f64) / assembly_yield;
        let nre_per_system = nre / volume as f64;
        Ok(CostBreakdown {
            die_costs,
            package_cost,
            assembly_cost,
            nre_per_system,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    #[test]
    fn wafer_and_mask_costs_decrease_with_maturity() {
        let db = db();
        let model = CostModel::new(&db);
        let mut prev_wafer = f64::INFINITY;
        let mut prev_mask = f64::INFINITY;
        for node in TechNode::ALL {
            let w = model.wafer_cost(node).dollars();
            let m = model.mask_set_cost(node).dollars();
            assert!(
                w <= prev_wafer,
                "wafer cost must not increase with maturity"
            );
            assert!(m <= prev_mask);
            prev_wafer = w;
            prev_mask = m;
        }
    }

    #[test]
    fn die_cost_magnitudes_are_sensible() {
        let db = db();
        let model = CostModel::new(&db);
        // A 628 mm² 8 nm-class GPU die costs a few hundred dollars.
        let gpu = model.die_cost(Area::from_mm2(628.0), TechNode::N8).unwrap();
        assert!(gpu.dollars() > 100.0 && gpu.dollars() < 1_000.0, "{gpu}");
        // A 100 mm² 65 nm die costs a few dollars.
        let small = model
            .die_cost(Area::from_mm2(100.0), TechNode::N65)
            .unwrap();
        assert!(small.dollars() > 1.0 && small.dollars() < 20.0, "{small}");
    }

    #[test]
    fn splitting_a_die_reduces_die_cost() {
        // Fig. 15(b): die cost falls with disaggregation (yield), assembly
        // cost rises.
        let db = db();
        let model = CostModel::new(&db);
        let mono = model.die_cost(Area::from_mm2(500.0), TechNode::N7).unwrap();
        let quarters: Dollars = (0..4)
            .map(|_| model.die_cost(Area::from_mm2(125.0), TechNode::N7).unwrap())
            .sum();
        assert!(quarters.dollars() < mono.dollars());
    }

    #[test]
    fn older_nodes_are_cheaper_for_same_transistors() {
        // Fig. 15(a): moving memory/analog chiplets to older nodes lowers cost
        // because wafers are cheaper and yields better, even with some area
        // growth.
        let db = db();
        let model = CostModel::new(&db);
        let advanced = model.die_cost(Area::from_mm2(100.0), TechNode::N7).unwrap();
        let mature = model
            .die_cost(Area::from_mm2(140.0), TechNode::N14)
            .unwrap();
        assert!(mature.dollars() < advanced.dollars());
    }

    #[test]
    fn system_cost_composition() {
        let db = db();
        let model = CostModel::new(&db);
        let dies = [
            (Area::from_mm2(300.0), TechNode::N7),
            (Area::from_mm2(100.0), TechNode::N10),
            (Area::from_mm2(80.0), TechNode::N14),
        ];
        let package = PackageCostClass::RdlFanout {
            layers: 4,
            area: Area::from_mm2(550.0),
        };
        let cost = model.system_cost(&dies, &package, 100_000).unwrap();
        assert_eq!(cost.die_costs.len(), 3);
        assert!(cost.package_cost.dollars() > 0.0);
        assert!(cost.assembly_cost.dollars() > 0.0);
        assert!(cost.nre_per_system.dollars() > 0.0);
        let total = cost.total().dollars();
        let parts = cost.dies_total().dollars()
            + cost.package_cost.dollars()
            + cost.assembly_cost.dollars()
            + cost.nre_per_system.dollars();
        assert!((total - parts).abs() < 1e-9);
        assert!(!cost.to_string().is_empty());
    }

    #[test]
    fn identical_chiplets_share_one_mask_set() {
        let db = db();
        let model = CostModel::new(&db);
        let pkg = PackageCostClass::RdlFanout {
            layers: 4,
            area: Area::from_mm2(500.0),
        };
        let one = model
            .system_cost(&[(Area::from_mm2(100.0), TechNode::N7)], &pkg, 10_000)
            .unwrap();
        let four_identical = model
            .system_cost(&[(Area::from_mm2(100.0), TechNode::N7); 4], &pkg, 10_000)
            .unwrap();
        let two_distinct = model
            .system_cost(
                &[
                    (Area::from_mm2(100.0), TechNode::N7),
                    (Area::from_mm2(150.0), TechNode::N7),
                ],
                &pkg,
                10_000,
            )
            .unwrap();
        // Reusing the same chiplet design does not multiply the NRE.
        assert!(
            (four_identical.nre_per_system.dollars() - one.nre_per_system.dollars()).abs() < 1e-9
        );
        // Distinct designs pay for distinct mask sets.
        assert!(two_distinct.nre_per_system.dollars() > one.nre_per_system.dollars() * 1.9);
    }

    #[test]
    fn higher_volume_amortizes_nre() {
        let db = db();
        let model = CostModel::new(&db);
        let dies = [(Area::from_mm2(200.0), TechNode::N7)];
        let pkg = PackageCostClass::Monolithic;
        let low = model.system_cost(&dies, &pkg, 1_000).unwrap();
        let high = model.system_cost(&dies, &pkg, 1_000_000).unwrap();
        assert!(high.nre_per_system.dollars() < low.nre_per_system.dollars() / 100.0);
        assert!(high.total().dollars() < low.total().dollars());
        assert!(model.system_cost(&dies, &pkg, 0).is_err());
    }

    #[test]
    fn package_classes_have_expected_ordering() {
        let db = db();
        let model = CostModel::new(&db);
        let area = Area::from_mm2(500.0);
        let rdl = model
            .package_cost(&PackageCostClass::RdlFanout { layers: 4, area })
            .unwrap();
        let passive = model
            .package_cost(&PackageCostClass::PassiveInterposer {
                area,
                node: TechNode::N65,
            })
            .unwrap();
        let active = model
            .package_cost(&PackageCostClass::ActiveInterposer {
                area,
                node: TechNode::N65,
            })
            .unwrap();
        let mono = model.package_cost(&PackageCostClass::Monolithic).unwrap();
        assert!(mono < rdl);
        assert!(rdl < passive);
        assert!(passive < active);
        let emib = model
            .package_cost(&PackageCostClass::SiliconBridge { bridges: 3, area })
            .unwrap();
        assert!(emib.dollars() > 0.0);
        let stack = model
            .package_cost(&PackageCostClass::ThreeD { bonds: 500_000.0 })
            .unwrap();
        assert!(stack.dollars() > 0.0);
    }

    #[test]
    fn oversized_die_is_an_error() {
        let db = db();
        let model = CostModel::new(&db);
        assert!(model
            .die_cost(Area::from_mm2(400.0 * 400.0), TechNode::N7)
            .is_err());
        let tiny = CostModel::new(&db).with_wafer(Wafer::with_diameter_mm(50.0));
        assert!(tiny
            .die_cost(Area::from_mm2(2_000.0), TechNode::N7)
            .is_err());
    }

    proptest! {
        #[test]
        fn die_cost_is_monotone_in_area(
            a in 20.0f64..600.0,
            extra in 10.0f64..300.0,
        ) {
            let db = db();
            let model = CostModel::new(&db);
            let small = model.die_cost(Area::from_mm2(a), TechNode::N7).unwrap();
            let large = model.die_cost(Area::from_mm2(a + extra), TechNode::N7).unwrap();
            prop_assert!(large.dollars() > small.dollars());
        }

        #[test]
        fn system_cost_is_finite_and_positive(
            n in 1usize..6,
            area in 40.0f64..300.0,
            volume in 1u64..1_000_000,
        ) {
            let db = db();
            let model = CostModel::new(&db);
            let dies: Vec<(Area, TechNode)> = (0..n).map(|_| (Area::from_mm2(area), TechNode::N7)).collect();
            let pkg = PackageCostClass::RdlFanout { layers: 4, area: Area::from_mm2(area * n as f64 * 1.2) };
            let cost = model.system_cost(&dies, &pkg, volume).unwrap();
            prop_assert!(cost.total().dollars() > 0.0);
            prop_assert!(cost.total().dollars().is_finite());
        }
    }
}
