//! The design-time and design-CFP estimator.

use std::fmt;

use serde::{Deserialize, Serialize};

use ecochip_techdb::{Carbon, EnergySource, Power, TechDb, TechDbError, TechNode, TimeSpan};

/// Average number of transistors per logic gate used to convert transistor
/// counts into gate counts for the design-effort model. Modern SoCs average
/// around six transistors per synthesized gate once flip-flops and larger
/// cells are accounted for (the GA102's 28 B transistors correspond to the
/// paper's "over 4.5 B logic gates").
const TRANSISTORS_PER_GATE: f64 = 6.0;

/// Convert a transistor count into an equivalent logic-gate count.
///
/// ```
/// use ecochip_design::gates_from_transistors;
/// assert_eq!(gates_from_transistors(6.0e9), 1.0e9);
/// ```
pub fn gates_from_transistors(transistors: f64) -> f64 {
    transistors / TRANSISTORS_PER_GATE
}

/// Configuration of the design-CFP model (Eq. 13 parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Wall power of the design compute machine per SP&R job, `Pdes`.
    ///
    /// The paper quotes 10 W per CPU from public dissipation figures but its
    /// 8,400 kg single-SP&R figure for the GA102 implies the full machine
    /// (CPUs, 192 GB DRAM, cooling) is charged to the job; the default of
    /// 78 W reproduces that calibration.
    pub machine_power: Power,
    /// Number of design iterations `Ndes` (100 in Table I).
    pub iterations: u32,
    /// Ratio of verification compute time to the iterated SP&R + analysis
    /// time. 1.0 means verification doubles the total compute.
    pub verification_ratio: f64,
    /// Analysis (STA, power, EM/IR) compute time as a fraction of one SP&R
    /// run.
    pub analysis_ratio: f64,
    /// Energy source of the design compute farm, `Cdes,src`.
    pub source: EnergySource,
    /// SP&R CPU-hours per million gates at `ηEDA = 1` (calibrated so that a
    /// 700 k-gate block in 7 nm takes ≈ 24 CPU-hours).
    pub spr_hours_per_mgate: f64,
}

impl Default for DesignConfig {
    fn default() -> Self {
        Self {
            machine_power: Power::from_watts(78.0),
            iterations: 100,
            verification_ratio: 0.25,
            analysis_ratio: 0.5,
            source: EnergySource::Coal,
            // 24 h for 0.7 Mgates at ηEDA(7 nm) = 0.65:
            // 24 / 0.7 * 0.65 = 22.29 h per Mgate at ηEDA = 1.
            spr_hours_per_mgate: 22.29,
        }
    }
}

/// Per-design cost figures produced by [`DesignEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignCost {
    /// CPU time of a single SP&R iteration.
    pub spr_time: TimeSpan,
    /// Total design compute time `tdes` (verification + iterated SP&R +
    /// analysis).
    pub total_time: TimeSpan,
    /// CFP of a single SP&R iteration.
    pub single_iteration_cfp: Carbon,
    /// CFP of the full design effort (not yet amortised over volume).
    pub total_cfp: Carbon,
}

impl fmt::Display for DesignCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design: {} total ({} per SP&R iteration)",
            self.total_cfp, self.single_iteration_cfp
        )
    }
}

/// Manufacturing / shipping volumes used for amortisation (Eq. 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeScenario {
    /// Number of units manufactured of each chiplet, `NMi`.
    pub chiplet_volume: u64,
    /// Number of systems shipped, `NS`.
    pub system_volume: u64,
}

impl Default for VolumeScenario {
    /// The paper's headline scenario: `NMi = NS = 100 000`.
    fn default() -> Self {
        Self {
            chiplet_volume: 100_000,
            system_volume: 100_000,
        }
    }
}

impl VolumeScenario {
    /// Scenario where chiplets are reused across `reuse_factor` different
    /// systems: `NMi = reuse_factor × NS`.
    pub fn with_reuse(system_volume: u64, reuse_factor: f64) -> Self {
        let chiplet_volume = ((system_volume as f64) * reuse_factor).round().max(1.0) as u64;
        Self {
            chiplet_volume,
            system_volume: system_volume.max(1),
        }
    }

    /// The reuse ratio `NMi / NS` plotted in Fig. 12.
    pub fn reuse_ratio(&self) -> f64 {
        self.chiplet_volume as f64 / self.system_volume.max(1) as f64
    }
}

/// The design-CFP estimator.
#[derive(Debug, Clone, Copy)]
pub struct DesignEstimator<'a> {
    db: &'a TechDb,
    config: DesignConfig,
}

impl<'a> DesignEstimator<'a> {
    /// Create an estimator over the given technology database.
    pub fn new(db: &'a TechDb, config: DesignConfig) -> Self {
        Self { db, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// CPU time of a single SP&R run of `gates` logic gates targeting `node`
    /// (`tSP&R,i` in Eq. 13).
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn spr_hours(&self, gates: f64, node: TechNode) -> Result<TimeSpan, TechDbError> {
        let params = self.db.node(node)?;
        let mgates = (gates / 1.0e6).max(0.0);
        let hours = mgates * self.config.spr_hours_per_mgate / params.eda_productivity;
        Ok(TimeSpan::from_hours(hours))
    }

    /// Full design cost of a block with `gates` logic gates targeting `node`
    /// (Eqs. 12–13 before amortisation).
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn design_cost(&self, gates: f64, node: TechNode) -> Result<DesignCost, TechDbError> {
        let spr = self.spr_hours(gates, node)?;
        let per_iteration = spr.hours() * (1.0 + self.config.analysis_ratio.max(0.0));
        let iterated = per_iteration * f64::from(self.config.iterations.max(1));
        let verification = iterated * self.config.verification_ratio.max(0.0);
        let total = TimeSpan::from_hours(iterated + verification);

        let intensity = self.config.source.carbon_intensity();
        let single_iteration_cfp =
            intensity * (self.config.machine_power * TimeSpan::from_hours(per_iteration));
        let total_cfp = intensity * (self.config.machine_power * total);
        Ok(DesignCost {
            spr_time: spr,
            total_time: total,
            single_iteration_cfp,
            total_cfp,
        })
    }

    /// Design CFP of one chiplet amortised over the number of chiplets
    /// manufactured (`Cdes,i / NMi` in Eq. 12).
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn amortized_chiplet_cfp(
        &self,
        gates: f64,
        node: TechNode,
        volumes: &VolumeScenario,
    ) -> Result<Carbon, TechDbError> {
        let cost = self.design_cost(gates, node)?;
        Ok(cost.total_cfp / volumes.chiplet_volume.max(1) as f64)
    }

    /// Amortised design CFP of the inter-die communication logic
    /// (`Cdes,comm / NS` in Eq. 12). The communication fabric is
    /// system-specific, so it amortises over the system volume.
    ///
    /// # Errors
    ///
    /// Returns [`TechDbError::MissingNode`] for unknown nodes.
    pub fn amortized_comm_cfp(
        &self,
        comm_gates: f64,
        node: TechNode,
        volumes: &VolumeScenario,
    ) -> Result<Carbon, TechDbError> {
        let cost = self.design_cost(comm_gates, node)?;
        Ok(cost.total_cfp / volumes.system_volume.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_techdb::TechDb;
    use proptest::prelude::*;

    fn db() -> TechDb {
        TechDb::default()
    }

    fn estimator(db: &TechDb) -> DesignEstimator<'_> {
        DesignEstimator::new(db, DesignConfig::default())
    }

    #[test]
    fn gates_conversion() {
        // The GA102-class 28 B transistors map to roughly the paper's
        // "over 4.5 B logic gates".
        assert!((gates_from_transistors(28.3e9) - 28.3e9 / 6.0).abs() < 1.0);
        assert!(gates_from_transistors(28.3e9) > 4.0e9);
        assert_eq!(gates_from_transistors(0.0), 0.0);
    }

    #[test]
    fn spr_anchor_point_from_the_paper() {
        // 700k gates in 7 nm ≈ 24 CPU-hours.
        let db = db();
        let est = estimator(&db);
        let hours = est.spr_hours(700_000.0, TechNode::N7).unwrap().hours();
        assert!((hours - 24.0).abs() / 24.0 < 0.05, "got {hours} h");
    }

    #[test]
    fn ga102_scale_matches_paper_magnitudes() {
        // 4.5 B gates in 7 nm: ~1.5e5 CPU-hours per SP&R and a single
        // iteration in the vicinity of 8,400 kg CO2e (paper, Section V-A(2)).
        let db = db();
        let est = estimator(&db);
        let cost = est.design_cost(4.5e9, TechNode::N7).unwrap();
        let spr_hours = cost.spr_time.hours();
        assert!(
            (1.2e5..2.0e5).contains(&spr_hours),
            "SP&R hours {spr_hours}"
        );
        let single = cost.single_iteration_cfp.kg();
        assert!(
            (5_000.0..15_000.0).contains(&single),
            "single SP&R {single} kg"
        );
        // Full design effort exceeds 1,000 tons of CO2e ("over 2,000,000 kg").
        assert!(cost.total_cfp.tons() > 1_000.0);
        assert!(!cost.to_string().is_empty());
    }

    #[test]
    fn older_node_designs_are_cheaper() {
        // Fig. 7(b): EDA-tool scaling makes older-node designs cheaper.
        let db = db();
        let est = estimator(&db);
        let gates = 1.0e9;
        let c7 = est.design_cost(gates, TechNode::N7).unwrap().total_cfp;
        let c14 = est.design_cost(gates, TechNode::N14).unwrap().total_cfp;
        let c65 = est.design_cost(gates, TechNode::N65).unwrap().total_cfp;
        assert!(c14.kg() < c7.kg());
        assert!(c65.kg() < c14.kg());
    }

    #[test]
    fn amortization_divides_by_volume() {
        let db = db();
        let est = estimator(&db);
        let gates = 2.0e9;
        let full = est.design_cost(gates, TechNode::N7).unwrap().total_cfp;
        let volumes = VolumeScenario::default();
        let per_part = est
            .amortized_chiplet_cfp(gates, TechNode::N7, &volumes)
            .unwrap();
        assert!((per_part.kg() - full.kg() / 100_000.0).abs() < 1e-9);
        let comm = est
            .amortized_comm_cfp(1.0e6, TechNode::N65, &volumes)
            .unwrap();
        assert!(comm.kg() > 0.0);
        assert!(comm.kg() < per_part.kg());
    }

    #[test]
    fn reuse_lowers_amortized_design_cfp() {
        // Fig. 12(a): larger NMi/NS ratios lower the per-system design CFP.
        let db = db();
        let est = estimator(&db);
        let gates = 1.0e9;
        let base = VolumeScenario::with_reuse(100_000, 1.0);
        let reused = VolumeScenario::with_reuse(100_000, 10.0);
        assert!((reused.reuse_ratio() - 10.0).abs() < 1e-9);
        let c_base = est
            .amortized_chiplet_cfp(gates, TechNode::N7, &base)
            .unwrap();
        let c_reused = est
            .amortized_chiplet_cfp(gates, TechNode::N7, &reused)
            .unwrap();
        assert!(c_reused.kg() < c_base.kg() / 5.0);
    }

    #[test]
    fn greener_design_compute_lowers_cfp() {
        let db = db();
        let coal = DesignEstimator::new(&db, DesignConfig::default());
        let wind = DesignEstimator::new(
            &db,
            DesignConfig {
                source: EnergySource::Wind,
                ..DesignConfig::default()
            },
        );
        let gates = 1.0e9;
        let c_coal = coal.design_cost(gates, TechNode::N7).unwrap().total_cfp;
        let c_wind = wind.design_cost(gates, TechNode::N7).unwrap().total_cfp;
        assert!(c_wind.kg() < c_coal.kg() / 20.0);
        assert_eq!(wind.config().source, EnergySource::Wind);
    }

    #[test]
    fn zero_gates_cost_nothing() {
        let db = db();
        let est = estimator(&db);
        let cost = est.design_cost(0.0, TechNode::N7).unwrap();
        assert_eq!(cost.total_cfp.kg(), 0.0);
        assert_eq!(cost.spr_time.hours(), 0.0);
    }

    #[test]
    fn missing_node_is_an_error() {
        let empty = ecochip_techdb::TechDbBuilder::new().build();
        let est = DesignEstimator::new(&empty, DesignConfig::default());
        assert!(est.design_cost(1.0e9, TechNode::N7).is_err());
        assert!(est.spr_hours(1.0e9, TechNode::N7).is_err());
    }

    #[test]
    fn volume_scenario_guards_against_zero() {
        let v = VolumeScenario {
            chiplet_volume: 0,
            system_volume: 0,
        };
        assert!(v.reuse_ratio().is_finite());
        let db = db();
        let est = estimator(&db);
        let c = est.amortized_chiplet_cfp(1.0e9, TechNode::N7, &v).unwrap();
        assert!(c.kg().is_finite());
        let w = VolumeScenario::with_reuse(0, 2.0);
        assert!(w.system_volume >= 1);
    }

    proptest! {
        #[test]
        fn design_cfp_is_monotone_in_gates(
            gates in 1.0e6f64..1.0e10,
            extra in 1.0e6f64..1.0e9,
        ) {
            let db = db();
            let est = estimator(&db);
            let small = est.design_cost(gates, TechNode::N7).unwrap().total_cfp;
            let large = est.design_cost(gates + extra, TechNode::N7).unwrap().total_cfp;
            prop_assert!(large.kg() > small.kg());
        }

        #[test]
        fn iterations_scale_total_linearly(
            gates in 1.0e7f64..1.0e9,
            iterations in 1u32..200,
        ) {
            let db = db();
            let one = DesignEstimator::new(&db, DesignConfig { iterations: 1, ..DesignConfig::default() });
            let many = DesignEstimator::new(&db, DesignConfig { iterations, ..DesignConfig::default() });
            let c1 = one.design_cost(gates, TechNode::N10).unwrap().total_cfp;
            let cn = many.design_cost(gates, TechNode::N10).unwrap().total_cfp;
            prop_assert!((cn.kg() / c1.kg() - f64::from(iterations)).abs() < 1e-6);
        }
    }
}
