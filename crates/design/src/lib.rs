//! # ecochip-design
//!
//! Design-phase carbon-footprint model (Section III-E, Eqs. 12–13 of the
//! ECO-CHIP paper).
//!
//! Designing a chip consumes CPU-time on EDA compute farms: synthesis, place
//! and route (SP&R), analysis runs repeated over `Ndes` iterations, plus
//! verification which dominates product development time. The model is
//! anchored to the paper's measurement — 24 CPU-hours for a 700 k-gate block
//! in a 7 nm commercial flow — and scales with the gate count, the EDA
//! productivity factor `ηEDA` of the target node, the iteration count and the
//! design-machine power.
//!
//! The resulting per-chiplet design CFP is amortised over the number of parts
//! manufactured (`NMi`) and systems shipped (`NS`) — the quantitative basis of
//! the "reuse" argument (Fig. 12).
//!
//! # Example
//!
//! ```
//! use ecochip_techdb::{TechDb, TechNode};
//! use ecochip_design::{DesignConfig, DesignEstimator};
//!
//! let db = TechDb::default();
//! let estimator = DesignEstimator::new(&db, DesignConfig::default());
//! // A single SP&R iteration of a 700k-gate block in 7 nm is ~24 CPU-hours.
//! let hours = estimator.spr_hours(700_000.0, TechNode::N7)?.hours();
//! assert!((hours - 24.0).abs() / 24.0 < 0.05);
//! # Ok::<(), ecochip_techdb::TechDbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod estimator;

pub use estimator::{
    gates_from_transistors, DesignConfig, DesignCost, DesignEstimator, VolumeScenario,
};
