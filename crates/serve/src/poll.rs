//! A hand-rolled readiness-polling layer for the event-loop server.
//!
//! The build environment has no package registry, so the server cannot pull
//! in mio/tokio — the same constraint that made the workspace hand-roll its
//! serde shims and HTTP layer. This module wraps the two syscall families
//! the event loop needs behind one [`Poller`] type:
//!
//! * **`epoll` on Linux** — O(ready) readiness delivery, so ten thousand
//!   idle keep-alive connections cost nothing per wakeup.
//! * **`poll(2)` everywhere else on Unix** — O(registered) per wait, but
//!   portable. On Linux the fallback can be forced with
//!   `ECOCHIP_POLL_BACKEND=poll` (the unit tests exercise both backends).
//!
//! Both backends are level-triggered: an event keeps firing until the
//! condition is consumed, so the loop never needs the re-arm bookkeeping of
//! edge-triggered notification.
//!
//! The poller owns a **self-pipe [`Waker`]**: a nonblocking pipe whose read
//! end is registered like any other descriptor. Any thread holding a waker
//! clone can interrupt a blocked [`Poller::wait`] with one `write(2)` —
//! this is how shutdown and handler-pool completions nudge the event loop,
//! replacing the old "dial a throwaway TCP connection at ourselves" hack.
//!
//! This is the one module in the crate allowed to use `unsafe`: the raw
//! syscall bindings are confined here behind a safe API, and the crate root
//! holds the line with `#![deny(unsafe_code)]`.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// The token [`Poller::wait`] reports when the built-in [`Waker`] fired.
pub const WAKER_TOKEN: u64 = u64::MAX;

/// Which readiness conditions a registered descriptor is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only (the steady state of a parked keep-alive connection).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only (a connection draining its response backlog; reads are
    /// paused so a pipelining peer gets TCP backpressure instead of
    /// unbounded server-side buffering).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with ([`WAKER_TOKEN`] for
    /// the self-pipe).
    pub token: u64,
    /// Reading will not block: data, EOF, or a pending socket error.
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state; the
    /// connection is done once any readable data is drained.
    pub closed: bool,
}

/// Raw syscall bindings. Everything below is `unsafe` FFI; the rest of the
/// module wraps it in owned-descriptor types so no raw fd outlives its
/// owner.
mod sys {
    #[cfg(not(target_os = "linux"))]
    use std::ffi::c_uint;
    #[cfg(target_os = "linux")]
    use std::ffi::c_ulong;
    use std::ffi::{c_int, c_short, c_void};
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    // `epoll_event` carries a 32-bit mask and 64-bit user data. On x86-64
    // the kernel ABI packs the struct (no padding between the fields);
    // everywhere else it is laid out naturally.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;

    #[cfg(target_os = "linux")]
    type NFds = c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = c_uint;

    extern "C" {
        #[cfg(target_os = "linux")]
        fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    }

    fn check(result: c_int) -> io::Result<c_int> {
        if result < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(result)
        }
    }

    /// Create the epoll instance as an owned descriptor.
    #[cfg(target_os = "linux")]
    pub fn epoll_create() -> io::Result<OwnedFd> {
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: `epoll_create1` returned a fresh descriptor we own.
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    #[cfg(target_os = "linux")]
    pub fn epoll_control(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        // SAFETY: `event` outlives the call; the kernel copies it.
        check(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    /// Wait for events; returns how many entries of `events` were filled.
    #[cfg(target_os = "linux")]
    pub fn epoll_wait_on(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        // SAFETY: the buffer pointer/length describe a live mutable slice.
        let n = check(unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
        })?;
        Ok(n as usize)
    }

    /// `poll(2)` over a caller-built descriptor set; returns the number of
    /// descriptors with events.
    pub fn poll_on(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: the buffer pointer/length describe a live mutable slice.
        let n = check(unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) })?;
        Ok(n as usize)
    }

    /// A nonblocking anonymous pipe as `(read end, write end)`.
    pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a live two-element buffer for the syscall.
        check(unsafe { pipe(fds.as_mut_ptr()) })?;
        // SAFETY: `pipe` returned two fresh descriptors we own.
        let (r, w) = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        for fd in [fds[0], fds[1]] {
            // SAFETY: plain fcntl flag read/update on descriptors we own.
            let flags = check(unsafe { fcntl(fd, F_GETFL) })?;
            check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
        }
        Ok((r, w))
    }

    /// Write one byte; `Ok(false)` when the pipe is full (a wake-up is
    /// already pending, which is all the caller wanted).
    pub fn write_byte(fd: RawFd) -> io::Result<bool> {
        let byte = 1u8;
        // SAFETY: one-byte write from a live stack buffer.
        let n = unsafe { write(fd, (&raw const byte).cast(), 1) };
        if n == 1 {
            return Ok(true);
        }
        let error = io::Error::last_os_error();
        match error.kind() {
            io::ErrorKind::WouldBlock => Ok(false),
            io::ErrorKind::Interrupted => Ok(false),
            _ => Err(error),
        }
    }

    /// Drain every pending byte from a nonblocking pipe's read end.
    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a live stack buffer of the stated length.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }

    /// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
    pub fn nofile_limit() -> Option<(u64, u64)> {
        let mut limit = RLimit { cur: 0, max: 0 };
        // SAFETY: `limit` is a live out-parameter for the syscall.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } == 0 {
            Some((limit.cur, limit.max))
        } else {
            None
        }
    }
}

/// The process's open-file-descriptor limit as `(soft, hard)`, when the
/// platform exposes it. File descriptors are the event-loop server's only
/// per-connection resource, so benches and tests use this to size
/// connection floods to what the environment allows.
pub fn nofile_limit() -> Option<(u64, u64)> {
    sys::nofile_limit()
}

/// A cloneable handle that interrupts a blocked [`Poller::wait`] from any
/// thread (self-pipe pattern: one nonblocking `write(2)` on the pipe's
/// write end; a full pipe already has a wake-up pending and counts as
/// success).
#[derive(Debug, Clone)]
pub struct Waker {
    pipe_write: Arc<OwnedFd>,
}

impl Waker {
    /// Nudge the poller awake. Infallible by design: the only non-success
    /// case that matters (pipe full) means a wake-up is already queued.
    pub fn wake(&self) {
        let _ = sys::write_byte(self.pipe_write.as_raw_fd());
    }
}

/// Backend selection for [`Poller::new`].
enum Backend {
    /// Linux `epoll`: readiness delivery costs O(ready events).
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: OwnedFd,
        /// Reusable kernel-event buffer for `epoll_wait`.
        events: Vec<sys::EpollEvent>,
    },
    /// Portable `poll(2)`: the registration list is rebuilt into a
    /// `pollfd` array per wait — O(registered), fine as a fallback.
    Poll { entries: Vec<PollEntry> },
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct PollEntry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// A readiness poller over registered file descriptors, with a built-in
/// self-pipe waker. See the module docs for backend selection.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    pipe_read: OwnedFd,
    waker: Waker,
}

fn interest_epoll_mask(interest: Interest) -> u32 {
    let mut mask = sys::EPOLLRDHUP;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round sub-millisecond timeouts up so a short deadline never
        // degenerates into a busy spin.
        Some(t) => t.as_millis().clamp(1, i32::MAX as u128) as i32,
        None => -1,
    }
}

impl Poller {
    /// A poller on the platform's best backend: `epoll` on Linux (unless
    /// `ECOCHIP_POLL_BACKEND=poll` forces the fallback), `poll(2)`
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates backend-creation and self-pipe syscall failures.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let forced = std::env::var_os("ECOCHIP_POLL_BACKEND")
                .is_some_and(|v| v.eq_ignore_ascii_case("poll"));
            if !forced {
                return Self::with_backend(Backend::Epoll {
                    epfd: sys::epoll_create()?,
                    events: vec![sys::EpollEvent::default(); 1024],
                });
            }
        }
        Self::new_poll_fallback()
    }

    /// A poller on the portable `poll(2)` backend, regardless of platform
    /// (unit tests cover both backends on Linux through this).
    ///
    /// # Errors
    ///
    /// Propagates self-pipe syscall failures.
    pub fn new_poll_fallback() -> io::Result<Self> {
        Self::with_backend(Backend::Poll {
            entries: Vec::new(),
        })
    }

    fn with_backend(backend: Backend) -> io::Result<Self> {
        let (pipe_read, pipe_write) = sys::nonblocking_pipe()?;
        let mut poller = Poller {
            backend,
            pipe_read,
            waker: Waker {
                pipe_write: Arc::new(pipe_write),
            },
        };
        poller.register(poller.pipe_read.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    /// The backend in use (`"epoll"` or `"poll"`), for banners and tests.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// A cloneable waker for this poller.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Start watching `fd`; events report back with `token`. The caller
    /// keeps the descriptor open for as long as it is registered.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (the `poll` backend cannot fail).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => sys::epoll_control(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                interest_epoll_mask(interest),
                token,
            ),
            Backend::Poll { entries } => {
                entries.push(PollEntry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Change the interest set (and token) of a registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures; the `poll` backend reports an
    /// unregistered descriptor as [`io::ErrorKind::NotFound`].
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => sys::epoll_control(
                epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                interest_epoll_mask(interest),
                token,
            ),
            Backend::Poll { entries } => {
                let entry = entries
                    .iter_mut()
                    .find(|entry| entry.fd == fd)
                    .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
        }
    }

    /// Stop watching `fd`. Must happen before the descriptor is closed or
    /// handed to a blocking handler thread.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (the `poll` backend cannot fail).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                sys::epoll_control(epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
            }
            Backend::Poll { entries } => {
                entries.retain(|entry| entry.fd != fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered descriptor is ready, the waker
    /// fires, or `timeout` expires (`None` waits indefinitely). Events are
    /// appended to `out` (cleared first); a timeout or signal interruption
    /// returns `Ok` with `out` empty. Waker bytes are drained here, so one
    /// [`Event`] with [`WAKER_TOKEN`] coalesces any number of `wake` calls.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait`/`poll` failures other than `EINTR`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, events } => {
                let filled = match sys::epoll_wait_on(epfd.as_raw_fd(), events, timeout) {
                    Ok(filled) => filled,
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => 0,
                    Err(error) => return Err(error),
                };
                for event in &events[..filled] {
                    let mask = event.events;
                    out.push(Event {
                        token: event.data,
                        readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        closed: mask & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    });
                }
                // Readiness overflow (more ready fds than the buffer holds)
                // is not lost: level-triggered epoll re-reports the
                // remainder on the next wait.
            }
            Backend::Poll { entries } => {
                let mut fds: Vec<sys::PollFd> = entries
                    .iter()
                    .map(|entry| {
                        let mut events = 0;
                        if entry.interest.readable {
                            events |= sys::POLLIN;
                        }
                        if entry.interest.writable {
                            events |= sys::POLLOUT;
                        }
                        sys::PollFd {
                            fd: entry.fd,
                            events,
                            revents: 0,
                        }
                    })
                    .collect();
                match sys::poll_on(&mut fds, timeout) {
                    Ok(_) => {}
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => return Ok(()),
                    Err(error) => return Err(error),
                }
                for (entry, fd) in entries.iter().zip(&fds) {
                    let revents = fd.revents;
                    if revents == 0 {
                        continue;
                    }
                    out.push(Event {
                        token: entry.token,
                        readable: revents & (sys::POLLIN | sys::POLLHUP) != 0,
                        writable: revents & sys::POLLOUT != 0,
                        closed: revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                    });
                }
            }
        }
        if out.iter().any(|event| event.token == WAKER_TOKEN) {
            sys::drain(self.pipe_read.as_raw_fd());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn both_backends() -> Vec<Poller> {
        let fallback = Poller::new_poll_fallback().unwrap();
        assert_eq!(fallback.backend_name(), "poll");
        // The platform default is epoll on Linux — unless the environment
        // forces the fallback, in which case both entries exercise poll(2).
        vec![fallback, Poller::new().unwrap()]
    }

    #[test]
    fn readiness_and_interest_changes_on_both_backends() {
        for mut poller in both_backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 7, Interest::READ)
                .unwrap();

            // Nothing to read yet: the wait times out empty.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|event| event.token != 7));

            // Bytes arrive: readable fires with our token.
            client.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let event = events.iter().find(|event| event.token == 7).unwrap();
            assert!(event.readable && !event.writable);

            // Level-triggered: unconsumed input keeps firing.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|event| event.token == 7));

            // Switch to write interest: an idle socket is instantly
            // writable, and the pending readable no longer reports.
            poller
                .modify(server.as_raw_fd(), 9, Interest::WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let event = events.iter().find(|event| event.token == 9).unwrap();
            assert!(event.writable && !event.readable);
            assert!(events.iter().all(|event| event.token != 7));

            poller.deregister(server.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{:?}", poller.backend_name());
        }
    }

    #[test]
    fn peer_hangup_reports_closed() {
        for mut poller in both_backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 3, Interest::READ)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let event = events.iter().find(|event| event.token == 3).unwrap();
            assert!(
                event.closed || event.readable,
                "hangup must surface as closed or readable-EOF"
            );
            poller.deregister(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_coalesces() {
        for mut poller in both_backends() {
            let waker = poller.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                // Multiple wakes before the drain coalesce into one event.
                waker.wake();
                waker.wake();
                waker.wake();
            });
            let mut events = Vec::new();
            let started = std::time::Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert!(started.elapsed() < Duration::from_secs(10));
            assert!(events.iter().any(|event| event.token == WAKER_TOKEN));
            handle.join().unwrap();

            // Drained: the next wait times out with no waker event.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|event| event.token != WAKER_TOKEN));
        }
    }

    #[test]
    fn nofile_limit_reports_something_sane() {
        let (soft, hard) = nofile_limit().expect("unix exposes RLIMIT_NOFILE");
        assert!(soft >= 64, "soft fd limit {soft} too small to serve");
        assert!(hard >= soft);
    }
}
