//! A small hand-rolled Prometheus registry for the HTTP server.
//!
//! The build environment has no package registry, so — like the rest of
//! this crate — the metrics surface is hand-rolled on `std`: atomic
//! counters, a fixed-bucket latency histogram per route, and a renderer
//! that emits the Prometheus text exposition format (`# HELP` / `# TYPE`
//! comment lines followed by `name{labels} value` samples). The registry
//! records the HTTP-layer signals (requests by route and status, in-flight
//! gauge, connections, per-route latency); the estimation-layer signals
//! (memo hits/misses/evictions, sweep points, estimates) are pulled from
//! [`ecochip_core::EcoChipService`] at render time, so `/metrics` is always
//! a consistent snapshot of the same counters `/v1/stats` reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ecochip_core::EcoChipService;
use ecochip_trace::Stage;

use crate::api::SweepFormat;

/// The toolchain label baked in by `build.rs` (the output of
/// `rustc --version` at compile time), surfaced by the
/// `ecochip_build_info` gauge.
pub const TOOLCHAIN: &str = match option_env!("ECOCHIP_RUSTC_VERSION") {
    Some(version) => version,
    None => "unknown",
};

/// The crate version surfaced by the `ecochip_build_info` gauge.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The sweep-stream encodings tracked per-format (label values of the
/// `ecochip_sweep_stream_*` series).
const FORMATS: [SweepFormat; 2] = [SweepFormat::NdJson, SweepFormat::Frames];

fn format_index(format: SweepFormat) -> usize {
    match format {
        SweepFormat::NdJson => 0,
        SweepFormat::Frames => 1,
    }
}

/// The route labels the registry tracks. Unknown paths collapse into
/// `"other"` so a path-scanning client cannot grow the label space.
pub const ROUTES: [&str; 13] = [
    "healthz",
    "stats",
    "testcases",
    "estimate",
    "estimate_batch",
    "sweep",
    "optimize",
    "memo_export",
    "memo_import",
    "metrics",
    "trace",
    "shutdown",
    "other",
];

/// Histogram bucket upper bounds, in seconds (an implicit `+Inf` bucket
/// follows). Spans sub-millisecond health probes to multi-second sweeps.
const BUCKETS: [f64; 7] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0];

/// Admission-control rejection reasons (label values of the
/// `ecochip_http_rejected_total` series): a new connection refused at the
/// open-connection cap, or a heavy request refused at the in-flight cap.
pub const REJECT_REASONS: [&str; 2] = ["max_connections", "max_inflight"];

fn reject_index(reason: &str) -> usize {
    REJECT_REASONS
        .iter()
        .position(|&r| r == reason)
        .unwrap_or(0)
}

/// Map a request to its route label (the label space is fixed; see
/// [`ROUTES`]).
pub fn route_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        (_, "/v1/healthz") => "healthz",
        (_, "/v1/stats") => "stats",
        (_, "/v1/testcases") => "testcases",
        (_, "/v1/estimate") => "estimate",
        (_, "/v1/sweep") => "sweep",
        (_, "/v1/optimize") => "optimize",
        ("GET", "/v1/memo") => "memo_export",
        (_, "/v1/memo") => "memo_import",
        (_, "/metrics") => "metrics",
        (_, "/v1/trace") => "trace",
        (_, "/v1/shutdown") => "shutdown",
        _ => "other",
    }
}

/// Whether an estimate request body is the batch form (a JSON array of
/// requests). The first non-whitespace byte is decisive — a JSON document
/// starting with `[` can only be an array — so the router and the metrics
/// label agree without parsing the body twice.
pub fn is_batch_estimate_body(body: &[u8]) -> bool {
    body.iter()
        .find(|byte| !byte.is_ascii_whitespace())
        .is_some_and(|&byte| byte == b'[')
}

/// Map a request to its route label, distinguishing the batch form of
/// `POST /v1/estimate` (a JSON array body) from the single form so the two
/// latency profiles — one estimate vs. N per round-trip — stay separable.
pub fn route_label_for(method: &str, path: &str, body: &[u8]) -> &'static str {
    if method == "POST" && path == "/v1/estimate" && is_batch_estimate_body(body) {
        return "estimate_batch";
    }
    route_label(method, path)
}

/// Cumulative request-latency observations of one route.
#[derive(Debug, Default)]
struct Histogram {
    /// Observations at or below each [`BUCKETS`] bound (cumulative, as
    /// Prometheus histograms are).
    buckets: [AtomicU64; BUCKETS.len()],
    /// Total observed time in microseconds (rendered as seconds).
    sum_micros: AtomicU64,
    /// Total observations (the implicit `+Inf` bucket).
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, elapsed: Duration) {
        let seconds = elapsed.as_secs_f64();
        // Update order matters for scrape consistency: bump the total
        // first, then the buckets from widest to narrowest, so a
        // concurrent render always sees a monotone cumulative histogram
        // (every bucket ≤ the next wider bucket ≤ `+Inf`).
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        for (bucket, bound) in self.buckets.iter().zip(BUCKETS).rev() {
            if seconds > bound {
                // Bounds descend from here on; none of the rest apply.
                break;
            }
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) of the observed latencies by
    /// linear interpolation within the histogram buckets — the same
    /// estimate Prometheus's `histogram_quantile` would compute from the
    /// exported series. Returns `None` with no observations; observations
    /// past the widest bucket clamp to its bound.
    fn quantile(&self, q: f64) -> Option<f64> {
        // Buckets before the total, as in `render`: keeps rank ≤ +Inf.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let rank = (q * count as f64).ceil().clamp(1.0, count as f64) as u64;
        let mut previous_bound = 0.0;
        let mut previous_cumulative = 0u64;
        for (cumulative, bound) in buckets.iter().zip(BUCKETS) {
            if *cumulative >= rank {
                let in_bucket = cumulative - previous_cumulative;
                let fraction = if in_bucket == 0 {
                    1.0
                } else {
                    (rank - previous_cumulative) as f64 / in_bucket as f64
                };
                return Some(previous_bound + (bound - previous_bound) * fraction);
            }
            previous_bound = bound;
            previous_cumulative = *cumulative;
        }
        Some(previous_bound)
    }
}

/// The server's metrics registry: HTTP-layer counters plus a latency
/// histogram per route. One instance lives in the server state; handler
/// threads record into it lock-free (the per-status counter map is the one
/// mutex, taken once per request).
#[derive(Debug)]
pub struct Metrics {
    /// TCP connections accepted by the handler pool.
    connections: AtomicU64,
    /// Requests currently being handled.
    in_flight: AtomicU64,
    /// Requests served, keyed by `(route index, status code)`. A `BTreeMap`
    /// keeps the render order deterministic.
    requests: Mutex<BTreeMap<(usize, u16), u64>>,
    /// Per-route request latency.
    latency: [Histogram; ROUTES.len()],
    /// Sweep-stream payload bytes sent, per encoding ([`FORMATS`] order).
    sweep_bytes: [AtomicU64; FORMATS.len()],
    /// Sweep-stream wall time, per encoding ([`FORMATS`] order).
    sweep_streams: [Histogram; FORMATS.len()],
    /// Accumulated per-stage sweep time ([`Stage::ALL`] order), observed
    /// once per instrumented sweep request per stage.
    stage_durations: [Histogram; Stage::ALL.len()],
    /// Open connections parked in the event loop (gauge).
    idle_connections: AtomicU64,
    /// Open connections checked out to the handler pool (gauge).
    active_connections: AtomicU64,
    /// 429 rejections, by reason ([`REJECT_REASONS`] order).
    rejected: [AtomicU64; REJECT_REASONS.len()],
    /// Event-loop wakeups (returns from the readiness wait, including
    /// timeout ticks and self-pipe nudges).
    wakeups: AtomicU64,
    /// When this registry was created (server start), for the uptime gauge.
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// One route's latency digest for `GET /v1/stats`: observation count plus
/// bucket-interpolated p50/p99 (see [`Metrics::latency_summaries`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteLatencySummary {
    /// The route label (one of [`ROUTES`]).
    pub route: &'static str,
    /// Requests observed on this route.
    pub count: u64,
    /// Estimated median latency, seconds.
    pub p50_seconds: f64,
    /// Estimated 99th-percentile latency, seconds.
    pub p99_seconds: f64,
}

impl Metrics {
    /// A fresh registry with every counter at zero and the uptime clock
    /// starting now.
    pub fn new() -> Self {
        Self {
            connections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            requests: Mutex::new(BTreeMap::new()),
            latency: Default::default(),
            sweep_bytes: Default::default(),
            sweep_streams: Default::default(),
            stage_durations: Default::default(),
            idle_connections: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            rejected: Default::default(),
            wakeups: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Seconds since this registry (the server) started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Record one sweep request's accumulated time in `stage` (the
    /// per-request [`ecochip_trace::StageTimings`] total, not per point —
    /// so the histogram answers "where did this request's time go").
    pub fn observe_stage(&self, stage: Stage, seconds: f64) {
        let index = Stage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage in Stage::ALL");
        self.stage_durations[index].observe(Duration::from_secs_f64(seconds.max(0.0)));
    }

    /// Per-route latency digests (count, p50, p99) for every route that
    /// has served at least one request, in [`ROUTES`] order.
    pub fn latency_summaries(&self) -> Vec<RouteLatencySummary> {
        ROUTES
            .iter()
            .zip(&self.latency)
            .filter_map(|(route, histogram)| {
                let count = histogram.count.load(Ordering::Relaxed);
                let p50 = histogram.quantile(0.50)?;
                let p99 = histogram.quantile(0.99)?;
                Some(RouteLatencySummary {
                    route,
                    count,
                    p50_seconds: p50,
                    p99_seconds: p99,
                })
            })
            .collect()
    }

    /// Record an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total connections accepted so far (tests assert keep-alive reuse by
    /// comparing this against the request count).
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Mark one request as in flight (pair with [`Metrics::observe`]).
    pub fn request_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the event loop's connection census: how many open
    /// connections are parked in the loop (idle) vs. checked out to a
    /// handler thread (active).
    pub fn set_connection_gauges(&self, idle: u64, active: u64) {
        self.idle_connections.store(idle, Ordering::Relaxed);
        self.active_connections.store(active, Ordering::Relaxed);
    }

    /// Open connections parked in the event loop right now.
    pub fn idle_connections(&self) -> u64 {
        self.idle_connections.load(Ordering::Relaxed)
    }

    /// Open connections checked out to the handler pool right now.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// Record a 429 rejection (`reason` is one of [`REJECT_REASONS`]).
    pub fn rejected(&self, reason: &str) {
        self.rejected[reject_index(reason)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total 429 rejections across every reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected
            .iter()
            .map(|counter| counter.load(Ordering::Relaxed))
            .sum()
    }

    /// Record one event-loop wakeup (a return from the readiness wait).
    pub fn wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Total event-loop wakeups so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Record a finished sweep response stream: how many payload bytes the
    /// encoding put on the wire (NDJSON lines or ECOF header+frames, not
    /// counting the HTTP chunked-transfer framing) and how long the stream
    /// took end to end.
    pub fn sweep_stream_finished(&self, format: SweepFormat, bytes: u64, elapsed: Duration) {
        let index = format_index(format);
        self.sweep_bytes[index].fetch_add(bytes, Ordering::Relaxed);
        self.sweep_streams[index].observe(elapsed);
    }

    /// Record a finished request: status, latency, and the in-flight
    /// decrement.
    pub fn observe(&self, route: &'static str, status: u16, elapsed: Duration) {
        let index = ROUTES
            .iter()
            .position(|&r| r == route)
            .unwrap_or(ROUTES.len() - 1);
        self.latency[index].observe(elapsed);
        *self
            .requests
            .lock()
            .expect("request counters")
            .entry((index, status))
            .or_insert(0) += 1;
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Render the registry (plus the service's memo and request counters)
    /// in the Prometheus text exposition format. Every line is either a
    /// `# HELP` / `# TYPE` comment or a `name{labels} value` sample.
    pub fn render(&self, service: &EcoChipService) -> String {
        let mut out = String::with_capacity(4096);
        let mut sample = |line: String| {
            out.push_str(&line);
            out.push('\n');
        };

        sample(
            "# HELP ecochip_build_info Build metadata (constant 1; the info is in the labels)."
                .into(),
        );
        sample("# TYPE ecochip_build_info gauge".into());
        sample(format!(
            "ecochip_build_info{{version=\"{VERSION}\",toolchain=\"{}\"}} 1",
            TOOLCHAIN.replace('"', "'")
        ));

        sample("# HELP ecochip_uptime_seconds Seconds since the server started.".into());
        sample("# TYPE ecochip_uptime_seconds gauge".into());
        sample(format!(
            "ecochip_uptime_seconds {:.3}",
            self.uptime_seconds()
        ));

        sample("# HELP ecochip_http_connections_total TCP connections accepted.".into());
        sample("# TYPE ecochip_http_connections_total counter".into());
        sample(format!(
            "ecochip_http_connections_total {}",
            self.connections.load(Ordering::Relaxed)
        ));

        sample(
            "# HELP ecochip_http_connections_open Open connections, by state (idle = parked in \
             the event loop, active = checked out to a handler)."
                .into(),
        );
        sample("# TYPE ecochip_http_connections_open gauge".into());
        sample(format!(
            "ecochip_http_connections_open{{state=\"idle\"}} {}",
            self.idle_connections.load(Ordering::Relaxed)
        ));
        sample(format!(
            "ecochip_http_connections_open{{state=\"active\"}} {}",
            self.active_connections.load(Ordering::Relaxed)
        ));

        sample(
            "# HELP ecochip_http_rejected_total Connections and requests refused with 429 Too \
             Many Requests, by reason."
                .into(),
        );
        sample("# TYPE ecochip_http_rejected_total counter".into());
        for reason in REJECT_REASONS {
            sample(format!(
                "ecochip_http_rejected_total{{reason=\"{reason}\"}} {}",
                self.rejected[reject_index(reason)].load(Ordering::Relaxed)
            ));
        }

        sample("# HELP ecochip_event_loop_wakeups_total Event-loop readiness-wait returns.".into());
        sample("# TYPE ecochip_event_loop_wakeups_total counter".into());
        sample(format!(
            "ecochip_event_loop_wakeups_total {}",
            self.wakeups.load(Ordering::Relaxed)
        ));

        sample("# HELP ecochip_http_requests_in_flight Requests currently being handled.".into());
        sample("# TYPE ecochip_http_requests_in_flight gauge".into());
        sample(format!(
            "ecochip_http_requests_in_flight {}",
            self.in_flight.load(Ordering::Relaxed)
        ));

        sample("# HELP ecochip_http_requests_total Requests served, by route and status.".into());
        sample("# TYPE ecochip_http_requests_total counter".into());
        for ((route, status), count) in self.requests.lock().expect("request counters").iter() {
            sample(format!(
                "ecochip_http_requests_total{{route=\"{}\",status=\"{status}\"}} {count}",
                ROUTES[*route]
            ));
        }

        sample("# HELP ecochip_http_request_duration_seconds Request latency, by route.".into());
        sample("# TYPE ecochip_http_request_duration_seconds histogram".into());
        for (index, histogram) in self.latency.iter().enumerate() {
            // Load the buckets *before* the total: the writer bumps the
            // total first (see `Histogram::observe`), so a total loaded
            // after the buckets is ≥ every bucket value read here and the
            // rendered cumulative histogram stays monotone under
            // concurrent observations.
            let buckets: Vec<u64> = histogram
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect();
            let count = histogram.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let route = ROUTES[index];
            for (value, bound) in buckets.iter().zip(BUCKETS) {
                sample(format!(
                    "ecochip_http_request_duration_seconds_bucket{{route=\"{route}\",le=\"{bound}\"}} {value}"
                ));
            }
            sample(format!(
                "ecochip_http_request_duration_seconds_bucket{{route=\"{route}\",le=\"+Inf\"}} {count}"
            ));
            sample(format!(
                "ecochip_http_request_duration_seconds_sum{{route=\"{route}\"}} {}",
                histogram.sum_micros.load(Ordering::Relaxed) as f64 / 1.0e6
            ));
            sample(format!(
                "ecochip_http_request_duration_seconds_count{{route=\"{route}\"}} {count}"
            ));
        }

        sample(
            "# HELP ecochip_sweep_stream_bytes_total Sweep-stream payload bytes sent, by encoding."
                .into(),
        );
        sample("# TYPE ecochip_sweep_stream_bytes_total counter".into());
        for format in FORMATS {
            sample(format!(
                "ecochip_sweep_stream_bytes_total{{format=\"{}\"}} {}",
                format.label(),
                self.sweep_bytes[format_index(format)].load(Ordering::Relaxed)
            ));
        }

        sample(
            "# HELP ecochip_sweep_stream_duration_seconds Sweep-stream wall time, by encoding."
                .into(),
        );
        sample("# TYPE ecochip_sweep_stream_duration_seconds histogram".into());
        for format in FORMATS {
            let histogram = &self.sweep_streams[format_index(format)];
            // Same load ordering as the request-latency histogram: buckets
            // before the total keeps the rendered cumulative histogram
            // monotone under concurrent observations.
            let buckets: Vec<u64> = histogram
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect();
            let count = histogram.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let label = format.label();
            for (value, bound) in buckets.iter().zip(BUCKETS) {
                sample(format!(
                    "ecochip_sweep_stream_duration_seconds_bucket{{format=\"{label}\",le=\"{bound}\"}} {value}"
                ));
            }
            sample(format!(
                "ecochip_sweep_stream_duration_seconds_bucket{{format=\"{label}\",le=\"+Inf\"}} {count}"
            ));
            sample(format!(
                "ecochip_sweep_stream_duration_seconds_sum{{format=\"{label}\"}} {}",
                histogram.sum_micros.load(Ordering::Relaxed) as f64 / 1.0e6
            ));
            sample(format!(
                "ecochip_sweep_stream_duration_seconds_count{{format=\"{label}\"}} {count}"
            ));
        }

        sample(
            "# HELP ecochip_sweep_stage_duration_seconds Accumulated per-stage time of \
             instrumented sweep requests, by stage."
                .into(),
        );
        sample("# TYPE ecochip_sweep_stage_duration_seconds histogram".into());
        for (stage, histogram) in Stage::ALL.iter().zip(&self.stage_durations) {
            // Same load ordering as the other histograms: buckets before
            // the total keeps the rendered cumulative histogram monotone.
            let buckets: Vec<u64> = histogram
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect();
            let count = histogram.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let label = stage.label();
            for (value, bound) in buckets.iter().zip(BUCKETS) {
                sample(format!(
                    "ecochip_sweep_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"{bound}\"}} {value}"
                ));
            }
            sample(format!(
                "ecochip_sweep_stage_duration_seconds_bucket{{stage=\"{label}\",le=\"+Inf\"}} {count}"
            ));
            sample(format!(
                "ecochip_sweep_stage_duration_seconds_sum{{stage=\"{label}\"}} {}",
                histogram.sum_micros.load(Ordering::Relaxed) as f64 / 1.0e6
            ));
            sample(format!(
                "ecochip_sweep_stage_duration_seconds_count{{stage=\"{label}\"}} {count}"
            ));
        }

        let service_stats = service.service_stats();
        sample("# HELP ecochip_estimates_total Single-system estimates served.".into());
        sample("# TYPE ecochip_estimates_total counter".into());
        sample(format!(
            "ecochip_estimates_total {}",
            service_stats.estimates
        ));
        sample("# HELP ecochip_sweep_points_total Sweep points evaluated and emitted.".into());
        sample("# TYPE ecochip_sweep_points_total counter".into());
        sample(format!(
            "ecochip_sweep_points_total {}",
            service_stats.sweep_points
        ));

        let stats = service.stats();
        let caches = [
            (
                "floorplan",
                stats.floorplan_hits,
                stats.floorplan_misses,
                stats.floorplan_evictions,
                service.context().floorplan_entries(),
            ),
            (
                "manufacturing",
                stats.manufacturing_hits,
                stats.manufacturing_misses,
                stats.manufacturing_evictions,
                service.context().manufacturing_entries(),
            ),
        ];
        sample("# HELP ecochip_memo_hits_total Memo entries served from the cache.".into());
        sample("# TYPE ecochip_memo_hits_total counter".into());
        for (cache, hits, ..) in caches {
            sample(format!(
                "ecochip_memo_hits_total{{cache=\"{cache}\"}} {hits}"
            ));
        }
        sample("# HELP ecochip_memo_misses_total Memo entries computed from scratch.".into());
        sample("# TYPE ecochip_memo_misses_total counter".into());
        for (cache, _, misses, ..) in caches {
            sample(format!(
                "ecochip_memo_misses_total{{cache=\"{cache}\"}} {misses}"
            ));
        }
        sample(
            "# HELP ecochip_memo_evictions_total Memo entries evicted by the capacity bound."
                .into(),
        );
        sample("# TYPE ecochip_memo_evictions_total counter".into());
        for (cache, _, _, evictions, _) in caches {
            sample(format!(
                "ecochip_memo_evictions_total{{cache=\"{cache}\"}} {evictions}"
            ));
        }
        sample("# HELP ecochip_memo_entries Memo entries currently cached.".into());
        sample("# TYPE ecochip_memo_entries gauge".into());
        for (cache, .., entries) in caches {
            sample(format!(
                "ecochip_memo_entries{{cache=\"{cache}\"}} {entries}"
            ));
        }
        out
    }
}

/// Validate one line of Prometheus text format: a `# HELP` / `# TYPE`
/// comment or a `name{labels} value` sample. Shared by the unit tests here
/// and the e2e tests, and mirrors the check CI applies with `awk`.
pub fn is_valid_metrics_line(line: &str) -> bool {
    if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
        return true;
    }
    let Some((name_part, value)) = line.rsplit_once(' ') else {
        return false;
    };
    let name = match name_part.split_once('{') {
        Some((name, labels)) => {
            if !labels.ends_with('}') {
                return false;
            }
            name
        }
        None => name_part,
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return false;
    }
    value.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_core::{EcoChip, EcoChipService};

    #[test]
    fn route_labels_cover_the_api_surface() {
        assert_eq!(route_label("GET", "/v1/healthz"), "healthz");
        assert_eq!(route_label("POST", "/v1/sweep"), "sweep");
        assert_eq!(route_label("POST", "/v1/optimize"), "optimize");
        assert_eq!(route_label("GET", "/v1/memo"), "memo_export");
        assert_eq!(route_label("POST", "/v1/memo"), "memo_import");
        assert_eq!(route_label("GET", "/metrics"), "metrics");
        assert_eq!(route_label("GET", "/v2/nope"), "other");
        for route in [
            route_label("GET", "/v1/stats"),
            route_label("GET", "/v1/testcases"),
            route_label("POST", "/v1/estimate"),
            route_label("POST", "/v1/shutdown"),
        ] {
            assert!(ROUTES.contains(&route));
        }
    }

    #[test]
    fn batch_estimate_bodies_get_their_own_route_label() {
        assert!(is_batch_estimate_body(b"[{\"testcase\":\"ga102\"}]"));
        assert!(is_batch_estimate_body(b"  \n\t[]"));
        assert!(!is_batch_estimate_body(b"{\"testcase\":\"ga102\"}"));
        assert!(!is_batch_estimate_body(b""));
        assert_eq!(
            route_label_for("POST", "/v1/estimate", b"[{}]"),
            "estimate_batch"
        );
        assert_eq!(route_label_for("POST", "/v1/estimate", b"{}"), "estimate");
        // Only the estimate endpoint sniffs its body.
        assert_eq!(route_label_for("POST", "/v1/sweep", b"[]"), "sweep");
        assert_eq!(route_label_for("GET", "/v1/healthz", b""), "healthz");
        assert!(ROUTES.contains(&"estimate_batch"));
    }

    #[test]
    fn rendered_output_is_valid_prometheus_text_format() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.request_started();
        metrics.observe("estimate", 200, Duration::from_micros(750));
        metrics.request_started();
        metrics.observe("estimate", 400, Duration::from_millis(30));
        metrics.request_started();
        metrics.observe("sweep", 200, Duration::from_secs(20));
        metrics.request_started();
        metrics.observe("estimate_batch", 200, Duration::from_millis(3));

        let service = EcoChipService::new(EcoChip::default());
        let text = metrics.render(&service);
        for line in text.lines() {
            assert!(is_valid_metrics_line(line), "invalid metrics line: {line}");
        }

        // Histogram consistency, per rendered route: cumulative buckets are
        // monotone non-decreasing in `le`, the `+Inf` bucket equals `_count`,
        // and the by-status request counters sum to the same `_count`.
        let bucket_values = |route: &str| -> Vec<u64> {
            let prefix =
                format!("ecochip_http_request_duration_seconds_bucket{{route=\"{route}\",le=\"");
            text.lines()
                .filter(|line| line.starts_with(&prefix))
                .map(|line| line.rsplit(' ').next().unwrap().parse().unwrap())
                .collect()
        };
        let counter = |name: &str, labels: &str| -> u64 {
            text.lines()
                .filter(|line| line.starts_with(&format!("{name}{{{labels}")))
                .map(|line| line.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        for route in ["estimate", "estimate_batch", "sweep"] {
            let buckets = bucket_values(route);
            assert_eq!(buckets.len(), BUCKETS.len() + 1, "route {route}");
            assert!(
                buckets.windows(2).all(|pair| pair[0] <= pair[1]),
                "route {route} buckets not monotone: {buckets:?}"
            );
            let count = counter(
                "ecochip_http_request_duration_seconds_count",
                &format!("route=\"{route}\"}}"),
            );
            assert_eq!(
                *buckets.last().unwrap(),
                count,
                "route {route} +Inf bucket must equal _count"
            );
            let by_status = counter(
                "ecochip_http_requests_total",
                &format!("route=\"{route}\","),
            );
            assert_eq!(
                by_status, count,
                "route {route} status counters must sum to _count"
            );
        }
        assert!(text.contains("ecochip_http_connections_total 1"));
        assert!(text.contains("ecochip_http_requests_in_flight 0"));
        assert!(text.contains("ecochip_http_requests_total{route=\"estimate\",status=\"200\"} 1"));
        assert!(text.contains("ecochip_http_requests_total{route=\"estimate\",status=\"400\"} 1"));
        // The 750µs observation lands in every bucket from 1ms up; the 20s
        // one only in +Inf.
        assert!(text.contains(
            "ecochip_http_request_duration_seconds_bucket{route=\"estimate\",le=\"0.001\"} 1"
        ));
        assert!(text
            .contains("ecochip_http_request_duration_seconds_bucket{route=\"sweep\",le=\"10\"} 0"));
        assert!(text.contains(
            "ecochip_http_request_duration_seconds_bucket{route=\"sweep\",le=\"+Inf\"} 1"
        ));
        assert!(text.contains("ecochip_http_request_duration_seconds_count{route=\"estimate\"} 2"));
        assert!(text.contains("ecochip_memo_hits_total{cache=\"floorplan\"} 0"));
        assert!(text.contains("ecochip_memo_entries{cache=\"manufacturing\"} 0"));
    }

    #[test]
    fn sweep_stream_series_render_per_format_and_validate() {
        let metrics = Metrics::new();
        // Nothing streamed yet: byte counters render at zero, histograms
        // are suppressed until they have observations.
        let service = EcoChipService::new(EcoChip::default());
        let idle = metrics.render(&service);
        assert!(idle.contains("ecochip_sweep_stream_bytes_total{format=\"ndjson\"} 0"));
        assert!(idle.contains("ecochip_sweep_stream_bytes_total{format=\"frames\"} 0"));
        assert!(!idle.contains("ecochip_sweep_stream_duration_seconds_bucket"));

        metrics.sweep_stream_finished(SweepFormat::NdJson, 1024, Duration::from_millis(12));
        metrics.sweep_stream_finished(SweepFormat::NdJson, 2048, Duration::from_millis(700));
        metrics.sweep_stream_finished(SweepFormat::Frames, 768, Duration::from_micros(400));

        let text = metrics.render(&service);
        for line in text.lines() {
            assert!(is_valid_metrics_line(line), "invalid metrics line: {line}");
        }
        assert!(text.contains("ecochip_sweep_stream_bytes_total{format=\"ndjson\"} 3072"));
        assert!(text.contains("ecochip_sweep_stream_bytes_total{format=\"frames\"} 768"));
        assert!(text.contains("ecochip_sweep_stream_duration_seconds_count{format=\"ndjson\"} 2"));
        assert!(text.contains("ecochip_sweep_stream_duration_seconds_count{format=\"frames\"} 1"));
        // The 400µs frames stream lands in the 1ms bucket; the 700ms ndjson
        // stream only from the 2.5s bucket up.
        assert!(text.contains(
            "ecochip_sweep_stream_duration_seconds_bucket{format=\"frames\",le=\"0.001\"} 1"
        ));
        assert!(text.contains(
            "ecochip_sweep_stream_duration_seconds_bucket{format=\"ndjson\",le=\"0.5\"} 1"
        ));
        assert!(text.contains(
            "ecochip_sweep_stream_duration_seconds_bucket{format=\"ndjson\",le=\"2.5\"} 2"
        ));
        // Cumulative buckets stay monotone per format.
        for format in ["ndjson", "frames"] {
            let prefix =
                format!("ecochip_sweep_stream_duration_seconds_bucket{{format=\"{format}\",le=\"");
            let buckets: Vec<u64> = text
                .lines()
                .filter(|line| line.starts_with(&prefix))
                .map(|line| line.rsplit(' ').next().unwrap().parse().unwrap())
                .collect();
            assert_eq!(buckets.len(), BUCKETS.len() + 1, "format {format}");
            assert!(
                buckets.windows(2).all(|pair| pair[0] <= pair[1]),
                "format {format} buckets not monotone: {buckets:?}"
            );
        }
    }

    #[test]
    fn event_loop_series_render_and_validate() {
        let metrics = Metrics::new();
        let service = EcoChipService::new(EcoChip::default());

        // Fresh registry: gauges and counters render at zero (the series
        // exist even before the first connection, so dashboards never see
        // a missing metric).
        let idle = metrics.render(&service);
        assert!(idle.contains("ecochip_http_connections_open{state=\"idle\"} 0"));
        assert!(idle.contains("ecochip_http_connections_open{state=\"active\"} 0"));
        assert!(idle.contains("ecochip_http_rejected_total{reason=\"max_connections\"} 0"));
        assert!(idle.contains("ecochip_http_rejected_total{reason=\"max_inflight\"} 0"));
        assert!(idle.contains("ecochip_event_loop_wakeups_total 0"));

        metrics.set_connection_gauges(10_000, 3);
        metrics.rejected("max_inflight");
        metrics.rejected("max_inflight");
        metrics.rejected("max_connections");
        for _ in 0..5 {
            metrics.wakeup();
        }

        let text = metrics.render(&service);
        for line in text.lines() {
            assert!(is_valid_metrics_line(line), "invalid metrics line: {line}");
        }
        assert!(text.contains("ecochip_http_connections_open{state=\"idle\"} 10000"));
        assert!(text.contains("ecochip_http_connections_open{state=\"active\"} 3"));
        assert!(text.contains("ecochip_http_rejected_total{reason=\"max_inflight\"} 2"));
        assert!(text.contains("ecochip_http_rejected_total{reason=\"max_connections\"} 1"));
        assert!(text.contains("ecochip_event_loop_wakeups_total 5"));
        assert_eq!(metrics.rejected_total(), 3);
        assert_eq!(metrics.wakeups(), 5);
        assert_eq!(metrics.idle_connections(), 10_000);
        assert_eq!(metrics.active_connections(), 3);

        // Gauges are set-not-accumulate: a fresh census replaces the old.
        metrics.set_connection_gauges(2, 0);
        let text = metrics.render(&service);
        assert!(text.contains("ecochip_http_connections_open{state=\"idle\"} 2"));
        assert!(text.contains("ecochip_http_connections_open{state=\"active\"} 0"));
    }

    #[test]
    fn metrics_line_validator_rejects_garbage() {
        assert!(is_valid_metrics_line("# HELP x y"));
        assert!(is_valid_metrics_line("# TYPE x counter"));
        assert!(is_valid_metrics_line("ecochip_up 1"));
        assert!(is_valid_metrics_line("a_b{route=\"x\",le=\"+Inf\"} 12.5"));
        assert!(!is_valid_metrics_line(""));
        assert!(!is_valid_metrics_line("# comment"));
        assert!(!is_valid_metrics_line("no-value"));
        assert!(!is_valid_metrics_line("name{unclosed 1"));
        assert!(!is_valid_metrics_line("name one"));
        assert!(!is_valid_metrics_line("1leading_digit 2"));
        assert!(!is_valid_metrics_line("bad name 1"));
    }
}
