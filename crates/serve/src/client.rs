//! A minimal blocking HTTP/1.1 client for the estimation service.
//!
//! Exactly the counterpart of the server's wire subset: `Content-Length`
//! request bodies, fixed-length or chunked responses, and persistent
//! connections. A [`Connection`] keeps one TCP socket open across requests
//! (HTTP/1.1 keep-alive), transparently reconnecting when the server
//! closed it in the meantime (idle timeout, requests-per-connection
//! bound); the module-level [`get`]/[`post_json`]/[`post_ndjson`] helpers
//! are one-shot conveniences that ask the server to close after the
//! response. Chunked NDJSON responses can be consumed line-by-line as the
//! chunks arrive ([`post_ndjson`], [`Connection::post_ndjson`]), which is
//! how the remote orchestrator merges worker streams without buffering
//! them. [`Connection::post_json_pipelined`] writes a whole batch of
//! requests before reading any response (HTTP/1.1 pipelining), matching
//! the server's pipelining-aware request parser.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::ServeError;

/// Socket timeout for client connections.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Upper bound on any single allocation driven by wire-supplied sizes
/// (chunk sizes, `Content-Length`, buffered bodies) — the client-side
/// mirror of the server's request-body cap. Streamed NDJSON responses are
/// unbounded in *total* but hold at most one chunk + one pending line.
const MAX_BUFFERED_BODY: usize = crate::http::MAX_BODY_BYTES;

/// Upper bound on one status/header/chunk-size line — the client-side
/// mirror of the server's head cap, so a peer streaming newline-free bytes
/// cannot grow a line buffer without limit.
const MAX_LINE_BYTES: usize = crate::http::MAX_HEAD_BYTES;

/// Upper bound on the number of response headers.
const MAX_RESPONSE_HEADERS: usize = 256;

/// A decoded HTTP response: status, lowercased header names, body. For
/// [`post_ndjson`] the body is empty — lines go to the callback instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code of the response.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body (empty in streaming mode).
    pub body: Vec<u8>,
}

impl Response {
    /// The value of the first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        crate::http::header_lookup(&self.headers, name)
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Http`] when the body is not valid UTF-8.
    pub fn text(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::Http("response body is not valid UTF-8".into()))
    }
}

/// Normalize `addr` ("host:port", "http://host:port", trailing slash ok)
/// into the host:port to connect to.
fn host_port(addr: &str) -> &str {
    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    addr.trim_end_matches('/')
}

/// `GET path` from the server at `addr` (one-shot: asks the server to
/// close the connection after the response).
///
/// # Errors
///
/// Returns [`ServeError::InvalidAddr`] for unresolvable addresses,
/// [`ServeError::Io`] for socket failures and [`ServeError::Http`] for
/// malformed responses.
pub fn get(addr: &str, path: &str) -> Result<Response, ServeError> {
    one_shot(addr, "GET", path, None, &mut None)
}

/// `POST path` with a JSON body, returning the buffered response
/// (one-shot).
///
/// # Errors
///
/// As [`get`].
pub fn post_json(addr: &str, path: &str, json: &str) -> Result<Response, ServeError> {
    one_shot(addr, "POST", path, Some(json.as_bytes()), &mut None)
}

/// `POST path` with a JSON body, delivering each NDJSON line of the
/// response to `on_line` as it arrives (lines are passed without their
/// trailing newline). Non-2xx responses are buffered normally instead, so
/// callers can read the error body from the returned [`Response`].
///
/// # Errors
///
/// As [`get`]; additionally propagates the first error returned by
/// `on_line`.
pub fn post_ndjson<F>(
    addr: &str,
    path: &str,
    json: &str,
    mut on_line: F,
) -> Result<Response, ServeError>
where
    F: FnMut(&str) -> Result<(), ServeError>,
{
    let mut callback: Option<LineSink<'_>> = Some(&mut on_line);
    one_shot(addr, "POST", path, Some(json.as_bytes()), &mut callback)
}

/// A borrowed NDJSON line consumer (one level of indirection keeps the
/// streaming plumbing object-safe).
type LineSink<'a> = &'a mut dyn FnMut(&str) -> Result<(), ServeError>;

/// A persistent connection to one server: requests issued through it reuse
/// the TCP socket (HTTP/1.1 keep-alive), so a fleet client pays the
/// connect cost once instead of per request.
///
/// The server may close the socket between requests (idle timeout,
/// requests-per-connection bound, restart); the next request detects the
/// stale socket and transparently reconnects — but only when the socket
/// had already served a response (so the failure is attributable to an
/// idle close, not to the server crashing on this request) and no part of
/// the new response was consumed yet. A mid-stream failure or a
/// first-request failure is never papered over.
#[derive(Debug)]
pub struct Connection {
    target: String,
    reader: Option<BufReader<TcpStream>>,
    /// Whether the current socket has served at least one response — only
    /// then can a failure mean "the server idle-closed it under us".
    served: bool,
    /// Trace ID attached to every request as `X-Ecochip-Trace` (see
    /// [`Connection::set_trace`]).
    trace: Option<String>,
}

impl Connection {
    /// Open a connection to the server at `addr` ("host:port",
    /// "http://host:port" and a trailing slash are all accepted).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidAddr`] for unresolvable addresses and
    /// [`ServeError::Io`] when the connect fails.
    pub fn open(addr: &str) -> Result<Self, ServeError> {
        let mut connection = Self {
            target: host_port(addr).to_owned(),
            reader: None,
            served: false,
            trace: None,
        };
        connection.ensure_connected()?;
        Ok(connection)
    }

    /// The `host:port` this connection talks to.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Attach a trace ID: every subsequent request carries it in the
    /// `X-Ecochip-Trace` header (and the server echoes it back), so one
    /// orchestrated sweep is greppable across every worker it touched.
    /// `None` detaches.
    pub fn set_trace(&mut self, trace: Option<String>) {
        self.trace = trace;
    }

    /// The trace ID attached with [`Connection::set_trace`], if any.
    pub fn trace(&self) -> Option<&str> {
        self.trace.as_deref()
    }

    /// `GET path`, reusing the socket.
    ///
    /// # Errors
    ///
    /// As [`get`].
    pub fn get(&mut self, path: &str) -> Result<Response, ServeError> {
        self.request("GET", path, None, &mut None)
    }

    /// `POST path` with a JSON body, reusing the socket.
    ///
    /// # Errors
    ///
    /// As [`get`].
    pub fn post_json(&mut self, path: &str, json: &str) -> Result<Response, ServeError> {
        self.request("POST", path, Some(json.as_bytes()), &mut None)
    }

    /// `POST /v1/estimate` with a batch of requests, returning the per-item
    /// results in request order. One HTTP round-trip replaces N single
    /// requests; each item resolves to its own response or error object
    /// exactly as the single form would have.
    ///
    /// # Errors
    ///
    /// As [`get`] for transport failures; [`ServeError::Api`] when the
    /// server rejects the batch as a whole (malformed top-level JSON) or
    /// [`ServeError::Http`] when the response body cannot be decoded.
    pub fn estimate_batch(
        &mut self,
        requests: &[crate::api::EstimateRequest],
    ) -> Result<Vec<crate::api::BatchEstimateItem>, ServeError> {
        let json = serde_json::to_string(&requests)
            .map_err(|e| ServeError::Api(format!("serializing batch request: {e}")))?;
        let response = self.post_json("/v1/estimate", &json)?;
        if response.status != 200 {
            return Err(ServeError::Api(format!(
                "batch estimate failed with status {}: {}",
                response.status,
                response.text().unwrap_or("<non-utf8 body>").trim_end()
            )));
        }
        serde_json::from_str(response.text()?)
            .map_err(|e| ServeError::Http(format!("decoding batch response: {e}")))
    }

    /// `POST path` once per body, **pipelined**: every request goes out in
    /// one buffered write before any response is read, then the responses
    /// are decoded in order (HTTP/1.1 guarantees the server answers in
    /// request order). One round-trip's latency is paid once instead of
    /// per request, without any batching support server-side.
    ///
    /// Unlike [`Connection::post_json`] there is no transparent
    /// stale-socket retry: requests were already written when a failure
    /// surfaces, so replaying them is not safe to do silently. Callers
    /// treat any error as "position unknown; reconnect and decide".
    ///
    /// # Errors
    ///
    /// As [`get`] for transport failures; [`ServeError::Http`] when the
    /// server closes the connection before all responses arrived
    /// ("connection closed mid-pipeline"), e.g. its
    /// requests-per-connection bound was hit partway through the batch.
    pub fn post_json_pipelined<S: AsRef<str>>(
        &mut self,
        path: &str,
        bodies: &[S],
    ) -> Result<Vec<Response>, ServeError> {
        if bodies.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_connected()?;
        let outcome = {
            let reader = self.reader.as_mut().expect("connected reader");
            pipeline(reader, &self.target, path, bodies, self.trace.as_deref())
        };
        match outcome {
            Ok((responses, keep_open)) => {
                self.served = true;
                if !keep_open {
                    self.reader = None;
                }
                Ok(responses)
            }
            Err(error) => {
                self.reader = None;
                Err(error)
            }
        }
    }

    /// `POST path` with a JSON body, streaming NDJSON response lines to
    /// `on_line`, reusing the socket.
    ///
    /// # Errors
    ///
    /// As [`post_ndjson`].
    pub fn post_ndjson<F>(
        &mut self,
        path: &str,
        json: &str,
        mut on_line: F,
    ) -> Result<Response, ServeError>
    where
        F: FnMut(&str) -> Result<(), ServeError>,
    {
        let mut callback: Option<LineSink<'_>> = Some(&mut on_line);
        self.request("POST", path, Some(json.as_bytes()), &mut callback)
    }

    fn ensure_connected(&mut self) -> Result<(), ServeError> {
        if self.reader.is_some() {
            return Ok(());
        }
        self.reader = Some(BufReader::new(connect(&self.target)?));
        self.served = false;
        Ok(())
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        on_line: &mut Option<LineSink<'_>>,
    ) -> Result<Response, ServeError> {
        // A transparent retry is only safe when the socket already served a
        // response: then a failure is attributable to the server having
        // idle-closed it, not to this request crashing the server. A fresh
        // socket (including the one `open` eagerly connects) never retries.
        let reused = self.reader.is_some() && self.served;
        self.ensure_connected()?;
        // Guard the retry below: only a failure with *zero* delivered lines
        // may transparently reconnect — once `on_line` observed output,
        // retrying would duplicate it.
        let delivered = std::cell::Cell::new(false);
        let outcome = {
            let reader = self.reader.as_mut().expect("connected reader");
            match on_line.as_mut() {
                Some(inner) => {
                    let mut wrapper = |line: &str| {
                        delivered.set(true);
                        (**inner)(line)
                    };
                    let mut sink: Option<LineSink<'_>> = Some(&mut wrapper);
                    perform(
                        reader,
                        &self.target,
                        method,
                        path,
                        body,
                        true,
                        self.trace.as_deref(),
                        &mut sink,
                    )
                }
                None => perform(
                    reader,
                    &self.target,
                    method,
                    path,
                    body,
                    true,
                    self.trace.as_deref(),
                    &mut None,
                ),
            }
        };
        match self.settle(outcome) {
            Err(error) if reused && !delivered.get() && stale_connection_error(&error) => {
                // The server closed the idle socket under us before the
                // request went out; retry it once on a fresh connection.
                self.ensure_connected()?;
                let reader = self.reader.as_mut().expect("connected reader");
                let retried = perform(
                    reader,
                    &self.target,
                    method,
                    path,
                    body,
                    true,
                    self.trace.as_deref(),
                    on_line,
                );
                self.settle(retried)
            }
            settled => settled,
        }
    }

    /// Apply one attempt's outcome to the connection state: a response
    /// marks the socket as having served (enabling the transparent retry
    /// for *later* requests) and is dropped if the server announced a
    /// close; any failure leaves the socket in an unknown state, so it is
    /// never reused.
    fn settle(
        &mut self,
        outcome: Result<(Response, bool), ServeError>,
    ) -> Result<Response, ServeError> {
        match outcome {
            Ok((response, keep_open)) => {
                self.served = true;
                if !keep_open {
                    self.reader = None;
                }
                Ok(response)
            }
            Err(error) => {
                self.reader = None;
                Err(error)
            }
        }
    }
}

/// Whether an error is consistent with the server having closed an idle
/// keep-alive socket under us — the only failure a [`Connection`] retries
/// transparently (and only with zero delivered lines, see
/// [`Connection::request`]). The close can surface three ways depending on
/// timing: the request write fails, the status-line read sees a clean EOF,
/// or the read fails outright (e.g. `ECONNRESET` when the peer answered
/// the buffered write with RST).
fn stale_connection_error(error: &ServeError) -> bool {
    match error {
        ServeError::Io(message) => {
            message.starts_with("sending request") || message.starts_with("reading response")
        }
        ServeError::Http(message) => message == "connection closed before the status line",
        _ => false,
    }
}

/// Resolve and connect to `target` with the client timeouts applied.
fn connect(target: &str) -> Result<TcpStream, ServeError> {
    let resolved = target
        .to_socket_addrs()
        .map_err(|e| ServeError::InvalidAddr(format!("{target}: {e}")))?
        .next()
        .ok_or_else(|| ServeError::InvalidAddr(format!("{target} resolves to nothing")))?;
    let stream = TcpStream::connect(resolved)
        .map_err(|e| ServeError::Io(format!("connecting {target}: {e}")))?;
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
    // Request heads and bodies go out as one buffered write, so Nagle's
    // algorithm buys nothing here — disabling it avoids the Nagle ×
    // delayed-ACK stall (tens of milliseconds per request) on the
    // keep-alive request/response ping-pong.
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// One request on a fresh connection, asking the server to close after the
/// response.
fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    on_line: &mut Option<LineSink<'_>>,
) -> Result<Response, ServeError> {
    let target = host_port(addr);
    let mut reader = BufReader::new(connect(target)?);
    perform(
        &mut reader,
        target,
        method,
        path,
        body,
        false,
        None,
        on_line,
    )
    .map(|(response, _)| response)
}

/// Write every pipelined request in one buffered send, then decode the
/// responses in order. Returns the responses plus whether the connection
/// survived the whole pipeline (the last response's keep-alive verdict).
fn pipeline<S: AsRef<str>>(
    reader: &mut BufReader<TcpStream>,
    target: &str,
    path: &str,
    bodies: &[S],
    trace: Option<&str>,
) -> Result<(Vec<Response>, bool), ServeError> {
    let mut message = Vec::new();
    for body in bodies {
        encode_request_into(
            &mut message,
            target,
            "POST",
            path,
            Some(body.as_ref().as_bytes()),
            true,
            trace,
        );
    }
    let mut stream = reader.get_ref();
    stream
        .write_all(&message)
        .and_then(|()| stream.flush())
        .map_err(|e| ServeError::Io(format!("sending pipelined requests: {e}")))?;

    let mut responses = Vec::with_capacity(bodies.len());
    let mut keep_open = true;
    for received in 0..bodies.len() {
        if !keep_open {
            // The server advertised `Connection: close` with responses
            // still owed (its requests-per-connection bound, or shutdown):
            // the rest of the pipeline was discarded, surface it loudly.
            return Err(ServeError::Http(format!(
                "connection closed mid-pipeline: {received} of {} responses received",
                bodies.len()
            )));
        }
        let (response, open) = read_response(reader, true, &mut None)?;
        keep_open = open;
        responses.push(response);
    }
    Ok((responses, keep_open))
}

/// Append one encoded request (head + body) onto `message` — the unit the
/// single-request path writes once and the pipelined path concatenates N
/// times before one write.
fn encode_request_into(
    message: &mut Vec<u8>,
    target: &str,
    method: &str,
    path: &str,
    request_body: Option<&[u8]>,
    reuse: bool,
    trace: Option<&str>,
) {
    let body = request_body.unwrap_or_default();
    message.extend_from_slice(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {target}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
            body.len(),
            if reuse { "keep-alive" } else { "close" }
        )
        .as_bytes(),
    );
    if let Some(trace) = trace {
        message.extend_from_slice(format!("X-Ecochip-Trace: {trace}\r\n").as_bytes());
    }
    message.extend_from_slice(b"\r\n");
    message.extend_from_slice(body);
}

/// Send one request on an established connection and decode the response.
/// Returns the response plus whether the connection may serve another
/// request (the server's `Connection` header and protocol version decide).
#[allow(clippy::too_many_arguments)]
fn perform(
    reader: &mut BufReader<TcpStream>,
    target: &str,
    method: &str,
    path: &str,
    request_body: Option<&[u8]>,
    reuse: bool,
    trace: Option<&str>,
    on_line: &mut Option<LineSink<'_>>,
) -> Result<(Response, bool), ServeError> {
    {
        // Assemble the whole request into one buffer and write it with a
        // single syscall: a `write!` straight onto the socket would emit
        // one small segment per format fragment.
        let mut message = Vec::new();
        encode_request_into(
            &mut message,
            target,
            method,
            path,
            request_body,
            reuse,
            trace,
        );
        let mut stream = reader.get_ref();
        stream
            .write_all(&message)
            .and_then(|()| stream.flush())
            .map_err(|e| ServeError::Io(format!("sending request: {e}")))?;
    }
    read_response(reader, reuse, on_line)
}

/// Decode one response off the connection (status line through body).
/// Returns the response plus whether the connection may serve another one.
fn read_response(
    reader: &mut BufReader<TcpStream>,
    reuse: bool,
    on_line: &mut Option<LineSink<'_>>,
) -> Result<(Response, bool), ServeError> {
    let status_line = read_line(&mut *reader)?
        .ok_or_else(|| ServeError::Http("connection closed before the status line".into()))?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(ServeError::Http(format!(
            "malformed status line {status_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Http(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| ServeError::Http(format!("malformed status code {status:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut *reader)?
            .ok_or_else(|| ServeError::Http("connection closed inside the headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_RESPONSE_HEADERS {
            return Err(ServeError::Http(format!(
                "response exceeds {MAX_RESPONSE_HEADERS} headers"
            )));
        }
        headers.push(crate::http::parse_header_line(&line)?);
    }

    let mut response = Response {
        status,
        headers,
        body: Vec::new(),
    };
    let chunked = response
        .header("transfer-encoding")
        .is_some_and(|value| value.eq_ignore_ascii_case("chunked"));

    // Stream lines only for successful chunked responses; error bodies are
    // buffered so the caller can inspect them. Framed (`ECOF`) responses
    // are decoded back to their canonical lines here, so the caller's
    // `on_line` observes the exact bytes an NDJSON stream would have
    // delivered — the encoding is invisible above this function.
    let framed = response.header("content-type").is_some_and(|value| {
        value
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .eq_ignore_ascii_case(crate::frames::CONTENT_TYPE)
    });
    let mut stream_lines = if status / 100 == 2 {
        on_line.take()
    } else {
        None
    };
    let mut pending = Vec::new();
    let mut decoder = crate::frames::FrameDecoder::new();
    let mut consume = |data: &[u8], body: &mut Vec<u8>| -> Result<(), ServeError> {
        match &mut stream_lines {
            None => {
                // Buffered bodies (errors, fixed responses) are bounded like
                // the server bounds request bodies; streamed NDJSON holds
                // only the current line, so its total is unbounded by design.
                if body.len() + data.len() > MAX_BUFFERED_BODY {
                    return Err(ServeError::Http(format!(
                        "response body exceeds the {MAX_BUFFERED_BODY}-byte client limit"
                    )));
                }
                body.extend_from_slice(data);
            }
            Some(on_line) if framed => decoder.feed(data, &mut **on_line)?,
            Some(on_line) => {
                pending.extend_from_slice(data);
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let rest = pending.split_off(newline + 1);
                    pending.pop(); // the newline
                    let line = std::str::from_utf8(&pending)
                        .map_err(|_| ServeError::Http("NDJSON line is not UTF-8".into()))?;
                    on_line(line)?;
                    pending = rest;
                }
            }
        }
        Ok(())
    };

    let mut delimited_by_close = false;
    if chunked {
        loop {
            let size_line = read_line(&mut *reader)?
                .ok_or_else(|| ServeError::Http("connection closed inside a chunk size".into()))?;
            let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
                .map_err(|_| ServeError::Http(format!("malformed chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: read to the blank line.
                while let Some(line) = read_line(&mut *reader)? {
                    if line.is_empty() {
                        break;
                    }
                }
                break;
            }
            if size > MAX_BUFFERED_BODY {
                // Never trust a wire-supplied size enough to allocate it
                // blindly; our server's chunks are single NDJSON lines.
                return Err(ServeError::Http(format!(
                    "chunk of {size} bytes exceeds the {MAX_BUFFERED_BODY}-byte client limit"
                )));
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| ServeError::Http(format!("reading {size}-byte chunk: {e}")))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| ServeError::Http(format!("reading chunk terminator: {e}")))?;
            consume(&chunk, &mut response.body)?;
        }
    } else if let Some(length) = response.header("content-length") {
        let length: usize = length
            .trim()
            .parse()
            .map_err(|_| ServeError::Http(format!("malformed Content-Length {length:?}")))?;
        if length > MAX_BUFFERED_BODY {
            return Err(ServeError::Http(format!(
                "Content-Length of {length} bytes exceeds the {MAX_BUFFERED_BODY}-byte client limit"
            )));
        }
        let mut body = vec![0u8; length];
        reader
            .read_exact(&mut body)
            .map_err(|e| ServeError::Http(format!("reading {length}-byte body: {e}")))?;
        consume(&body, &mut response.body)?;
    } else {
        // Connection-delimited body: only the closing connection bounds it,
        // so this response can never be followed by another one.
        delimited_by_close = true;
        let mut body = Vec::new();
        reader
            .by_ref()
            .take(MAX_BUFFERED_BODY as u64 + 1)
            .read_to_end(&mut body)
            .map_err(|e| ServeError::Io(format!("reading body: {e}")))?;
        if body.len() > MAX_BUFFERED_BODY {
            return Err(ServeError::Http(format!(
                "response body exceeds the {MAX_BUFFERED_BODY}-byte client limit"
            )));
        }
        consume(&body, &mut response.body)?;
    }
    if framed && stream_lines.is_some() {
        // A framed stream must end exactly on a frame boundary; a body cut
        // inside a header or frame means the sender died mid-write.
        decoder.finish()?;
    }
    if !pending.is_empty() {
        // A final line without a trailing newline.
        let line = std::str::from_utf8(&pending)
            .map_err(|_| ServeError::Http("NDJSON line is not UTF-8".into()))?;
        if let Some(on_line) = &mut stream_lines {
            on_line(line)?;
        }
    }
    let keep_open = reuse
        && !delimited_by_close
        && crate::http::keep_alive_semantics(version, response.header("connection"));
    Ok((response, keep_open))
}

/// Read one CRLF- (or LF-) terminated line of at most [`MAX_LINE_BYTES`],
/// without the terminator. The limit is enforced *inside* the read (via
/// `take`), so an endless newline-free stream errors at the cap instead of
/// buffering unboundedly. `Ok(None)` at EOF.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ServeError> {
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
    let mut line = String::new();
    let read = limited
        .read_line(&mut line)
        .map_err(|e| ServeError::Io(format!("reading response: {e}")))?;
    if line.len() > MAX_LINE_BYTES {
        // Either a genuine oversized line or one truncated at the cap.
        return Err(ServeError::Http(format!(
            "response line exceeds the {MAX_LINE_BYTES}-byte client limit"
        )));
    }
    if read == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_port_normalizes_urls() {
        assert_eq!(host_port("127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://localhost:9/"), "localhost:9");
    }

    #[test]
    fn unresolvable_addresses_error_cleanly() {
        assert!(matches!(
            get("definitely-not-a-host.invalid:1", "/v1/healthz"),
            Err(ServeError::InvalidAddr(_) | ServeError::Io(_))
        ));
        assert!(matches!(
            get("not even an address", "/"),
            Err(ServeError::InvalidAddr(_))
        ));
    }
}
