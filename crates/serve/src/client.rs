//! A minimal blocking HTTP/1.1 client for the estimation service.
//!
//! Exactly the counterpart of the server's wire subset: one request per
//! connection, `Content-Length` request bodies, fixed-length or chunked
//! responses. Chunked NDJSON responses can be consumed line-by-line as the
//! chunks arrive ([`post_ndjson`]), which is how the remote orchestrator
//! merges worker streams without buffering them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::ServeError;

/// Socket timeout for client connections.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Upper bound on any single allocation driven by wire-supplied sizes
/// (chunk sizes, `Content-Length`, buffered bodies) — the client-side
/// mirror of the server's request-body cap. Streamed NDJSON responses are
/// unbounded in *total* but hold at most one chunk + one pending line.
const MAX_BUFFERED_BODY: usize = crate::http::MAX_BODY_BYTES;

/// Upper bound on one status/header/chunk-size line — the client-side
/// mirror of the server's head cap, so a peer streaming newline-free bytes
/// cannot grow a line buffer without limit.
const MAX_LINE_BYTES: usize = crate::http::MAX_HEAD_BYTES;

/// Upper bound on the number of response headers.
const MAX_RESPONSE_HEADERS: usize = 256;

/// A decoded HTTP response: status, lowercased header names, body. For
/// [`post_ndjson`] the body is empty — lines go to the callback instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code of the response.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body (empty in streaming mode).
    pub body: Vec<u8>,
}

impl Response {
    /// The value of the first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        crate::http::header_lookup(&self.headers, name)
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Http`] when the body is not valid UTF-8.
    pub fn text(&self) -> Result<&str, ServeError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::Http("response body is not valid UTF-8".into()))
    }
}

/// Normalize `addr` ("host:port", "http://host:port", trailing slash ok)
/// into the host:port to connect to.
fn host_port(addr: &str) -> &str {
    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    addr.trim_end_matches('/')
}

/// `GET path` from the server at `addr`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidAddr`] for unresolvable addresses,
/// [`ServeError::Io`] for socket failures and [`ServeError::Http`] for
/// malformed responses.
pub fn get(addr: &str, path: &str) -> Result<Response, ServeError> {
    request(addr, "GET", path, None, &mut None)
}

/// `POST path` with a JSON body, returning the buffered response.
///
/// # Errors
///
/// As [`get`].
pub fn post_json(addr: &str, path: &str, json: &str) -> Result<Response, ServeError> {
    request(addr, "POST", path, Some(json.as_bytes()), &mut None)
}

/// `POST path` with a JSON body, delivering each NDJSON line of the
/// response to `on_line` as it arrives (lines are passed without their
/// trailing newline). Non-2xx responses are buffered normally instead, so
/// callers can read the error body from the returned [`Response`].
///
/// # Errors
///
/// As [`get`]; additionally propagates the first error returned by
/// `on_line`.
pub fn post_ndjson<F>(
    addr: &str,
    path: &str,
    json: &str,
    mut on_line: F,
) -> Result<Response, ServeError>
where
    F: FnMut(&str) -> Result<(), ServeError>,
{
    let mut callback: Option<LineSink<'_>> = Some(&mut on_line);
    request(addr, "POST", path, Some(json.as_bytes()), &mut callback)
}

/// A borrowed NDJSON line consumer (one level of indirection keeps the
/// streaming plumbing object-safe).
type LineSink<'a> = &'a mut dyn FnMut(&str) -> Result<(), ServeError>;

fn request(
    addr: &str,
    method: &str,
    path: &str,
    request_body: Option<&[u8]>,
    on_line: &mut Option<LineSink<'_>>,
) -> Result<Response, ServeError> {
    let target = host_port(addr);
    let resolved = target
        .to_socket_addrs()
        .map_err(|e| ServeError::InvalidAddr(format!("{target}: {e}")))?
        .next()
        .ok_or_else(|| ServeError::InvalidAddr(format!("{target} resolves to nothing")))?;
    let mut stream = TcpStream::connect(resolved)
        .map_err(|e| ServeError::Io(format!("connecting {target}: {e}")))?;
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));

    let body = request_body.unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {target}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .and_then(|()| stream.write_all(body))
    .and_then(|()| stream.flush())
    .map_err(|e| ServeError::Io(format!("sending request: {e}")))?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?
        .ok_or_else(|| ServeError::Http("connection closed before the status line".into()))?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(ServeError::Http(format!(
            "malformed status line {status_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Http(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| ServeError::Http(format!("malformed status code {status:?}")))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?
            .ok_or_else(|| ServeError::Http("connection closed inside the headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_RESPONSE_HEADERS {
            return Err(ServeError::Http(format!(
                "response exceeds {MAX_RESPONSE_HEADERS} headers"
            )));
        }
        headers.push(crate::http::parse_header_line(&line)?);
    }

    let mut response = Response {
        status,
        headers,
        body: Vec::new(),
    };
    let chunked = response
        .header("transfer-encoding")
        .is_some_and(|value| value.eq_ignore_ascii_case("chunked"));

    // Stream NDJSON only for successful chunked responses; error bodies are
    // buffered so the caller can inspect them.
    let mut stream_lines = if status / 100 == 2 {
        on_line.take()
    } else {
        None
    };
    let mut pending = Vec::new();
    let mut consume = |data: &[u8], body: &mut Vec<u8>| -> Result<(), ServeError> {
        match &mut stream_lines {
            None => {
                // Buffered bodies (errors, fixed responses) are bounded like
                // the server bounds request bodies; streamed NDJSON holds
                // only the current line, so its total is unbounded by design.
                if body.len() + data.len() > MAX_BUFFERED_BODY {
                    return Err(ServeError::Http(format!(
                        "response body exceeds the {MAX_BUFFERED_BODY}-byte client limit"
                    )));
                }
                body.extend_from_slice(data);
            }
            Some(on_line) => {
                pending.extend_from_slice(data);
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let rest = pending.split_off(newline + 1);
                    pending.pop(); // the newline
                    let line = std::str::from_utf8(&pending)
                        .map_err(|_| ServeError::Http("NDJSON line is not UTF-8".into()))?;
                    on_line(line)?;
                    pending = rest;
                }
            }
        }
        Ok(())
    };

    if chunked {
        loop {
            let size_line = read_line(&mut reader)?
                .ok_or_else(|| ServeError::Http("connection closed inside a chunk size".into()))?;
            let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
                .map_err(|_| ServeError::Http(format!("malformed chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: read to the blank line.
                while let Some(line) = read_line(&mut reader)? {
                    if line.is_empty() {
                        break;
                    }
                }
                break;
            }
            if size > MAX_BUFFERED_BODY {
                // Never trust a wire-supplied size enough to allocate it
                // blindly; our server's chunks are single NDJSON lines.
                return Err(ServeError::Http(format!(
                    "chunk of {size} bytes exceeds the {MAX_BUFFERED_BODY}-byte client limit"
                )));
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| ServeError::Http(format!("reading {size}-byte chunk: {e}")))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| ServeError::Http(format!("reading chunk terminator: {e}")))?;
            consume(&chunk, &mut response.body)?;
        }
    } else if let Some(length) = response.header("content-length") {
        let length: usize = length
            .trim()
            .parse()
            .map_err(|_| ServeError::Http(format!("malformed Content-Length {length:?}")))?;
        if length > MAX_BUFFERED_BODY {
            return Err(ServeError::Http(format!(
                "Content-Length of {length} bytes exceeds the {MAX_BUFFERED_BODY}-byte client limit"
            )));
        }
        let mut body = vec![0u8; length];
        reader
            .read_exact(&mut body)
            .map_err(|e| ServeError::Http(format!("reading {length}-byte body: {e}")))?;
        consume(&body, &mut response.body)?;
    } else {
        // Connection-delimited body.
        let mut body = Vec::new();
        reader
            .by_ref()
            .take(MAX_BUFFERED_BODY as u64 + 1)
            .read_to_end(&mut body)
            .map_err(|e| ServeError::Io(format!("reading body: {e}")))?;
        if body.len() > MAX_BUFFERED_BODY {
            return Err(ServeError::Http(format!(
                "response body exceeds the {MAX_BUFFERED_BODY}-byte client limit"
            )));
        }
        consume(&body, &mut response.body)?;
    }
    if !pending.is_empty() {
        // A final line without a trailing newline.
        let line = std::str::from_utf8(&pending)
            .map_err(|_| ServeError::Http("NDJSON line is not UTF-8".into()))?;
        if let Some(on_line) = &mut stream_lines {
            on_line(line)?;
        }
    }
    Ok(response)
}

/// Read one CRLF- (or LF-) terminated line of at most [`MAX_LINE_BYTES`],
/// without the terminator. The limit is enforced *inside* the read (via
/// `take`), so an endless newline-free stream errors at the cap instead of
/// buffering unboundedly. `Ok(None)` at EOF.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ServeError> {
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
    let mut line = String::new();
    let read = limited
        .read_line(&mut line)
        .map_err(|e| ServeError::Io(format!("reading response: {e}")))?;
    if line.len() > MAX_LINE_BYTES {
        // Either a genuine oversized line or one truncated at the cap.
        return Err(ServeError::Http(format!(
            "response line exceeds the {MAX_LINE_BYTES}-byte client limit"
        )));
    }
    if read == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_port_normalizes_urls() {
        assert_eq!(host_port("127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://localhost:9/"), "localhost:9");
    }

    #[test]
    fn unresolvable_addresses_error_cleanly() {
        assert!(matches!(
            get("definitely-not-a-host.invalid:1", "/v1/healthz"),
            Err(ServeError::InvalidAddr(_) | ServeError::Io(_))
        ));
        assert!(matches!(
            get("not even an address", "/"),
            Err(ServeError::InvalidAddr(_))
        ));
    }
}
