//! A minimal HTTP/1.1 wire layer over blocking byte streams.
//!
//! Hand-rolled on purpose: the build environment has no package registry,
//! so the server cannot pull in hyper/tokio — the same constraint that made
//! the workspace hand-roll its serde shims. The subset implemented here is
//! exactly what the service needs: request parsing with `Content-Length`
//! bodies, fixed-length responses, and chunked transfer-encoding for
//! streaming NDJSON sweeps.
//!
//! Connections are persistent (HTTP/1.1 keep-alive): the parser records
//! whether the peer allows reuse ([`Request::keep_alive`], from the
//! protocol version and the `Connection` header tokens), and every response
//! writer takes a `keep_alive` flag that advertises `Connection:
//! keep-alive` or `Connection: close` accordingly. The server's
//! per-connection request loop (idle timeout, bounded requests per
//! connection) lives in [`crate::server`].

use std::io::{BufRead, Write};

use crate::ServeError;

/// Upper bound on the request line + headers, to bound memory per
/// connection.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (inline `System` descriptions are a few
/// KiB; this leaves generous headroom for large structured sweeps).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request: method, path (query string stripped), lowercased
/// header names, and the full body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path without the query string (`/v1/estimate`).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the peer allows this connection to serve another request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection` header token (`close` / `keep-alive`) overrides the
    /// default either way.
    pub keep_alive: bool,
}

impl Request {
    /// The value of the first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

/// Resolve the connection-reuse semantics of one request or response from
/// its protocol version and `Connection` header (comma-separated tokens,
/// ASCII case-insensitive) — the single definition both the server's
/// request parser and the client's response parser apply. Per RFC 9112, a
/// `close` token always wins over `keep-alive`, regardless of token order.
pub fn keep_alive_semantics(version: &str, connection_header: Option<&str>) -> bool {
    let Some(tokens) = connection_header else {
        return version != "HTTP/1.0";
    };
    let mut keep_alive = None;
    for token in tokens.split(',') {
        let token = token.trim();
        if token.eq_ignore_ascii_case("close") {
            return false;
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            keep_alive = Some(true);
        }
    }
    keep_alive.unwrap_or(version != "HTTP/1.0")
}

/// Look up the first header named `name` (ASCII case-insensitive) in a
/// parsed header list. Shared by the server's [`Request`] and the client's
/// `Response` so both sides apply identical lookup rules.
pub fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let name = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(key, _)| *key == name)
        .map(|(_, value)| value.as_str())
}

/// Parse one `Name: value` header line into a `(lowercased name, trimmed
/// value)` pair — the single definition of the wire's header syntax, used
/// by both the server's request parser and the client's response parser.
///
/// # Errors
///
/// Returns [`ServeError::Http`] when the line has no `:` separator.
pub fn parse_header_line(line: &str) -> Result<(String, String), ServeError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(ServeError::Http(format!("malformed header line {line:?}")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// Read one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending
/// anything (e.g. a liveness probe that only connects).
///
/// # Errors
///
/// Returns [`ServeError::Http`] for malformed or oversized requests and
/// [`ServeError::Io`] for socket failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let mut head = Vec::new();
    // Read header lines until the blank line terminating the head. The
    // size limit is enforced *inside* the read via `take`, so a peer
    // sending an endless newline-free byte stream cannot grow `head`
    // beyond the cap before the check runs.
    let mut limited = std::io::Read::take(&mut *reader, MAX_HEAD_BYTES as u64 + 1);
    loop {
        let start = head.len();
        let read = limited
            .read_until(b'\n', &mut head)
            .map_err(|e| ServeError::Io(format!("reading request head: {e}")))?;
        if head.len() > MAX_HEAD_BYTES {
            return Err(ServeError::Http(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        if read == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(ServeError::Http("connection closed mid-request".into()));
        }
        let line = &head[start..];
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    // `limited`'s borrow of `reader` ends here; the body reads from
    // `reader` directly below, bounded by the Content-Length check instead.
    let head = String::from_utf8(head)
        .map_err(|_| ServeError::Http("request head is not valid UTF-8".into()))?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::Http("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ServeError::Http(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Http(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(line)?);
    }

    let request = Request {
        method: method.to_owned(),
        path,
        keep_alive: keep_alive_semantics(version, header_lookup(&headers, "connection")),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ServeError::Http(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    let length = match request.header("content-length") {
        Some(value) => value
            .trim()
            .parse::<usize>()
            .map_err(|_| ServeError::Http(format!("invalid Content-Length {value:?}")))?,
        None => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(ServeError::Http(format!(
            "request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ServeError::Http(format!("reading {length}-byte body: {e}")))?;
    Ok(Some(Request { body, ..request }))
}

/// The reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// The `Connection` response-header value for a reuse decision.
fn connection_token(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Write a complete fixed-length response and flush it. `keep_alive`
/// advertises whether the server will serve another request on this
/// connection.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    // One buffer, one write: `write!` straight onto a socket would emit a
    // segment per format fragment.
    let mut message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        connection_token(keep_alive)
    )
    .into_bytes();
    message.extend_from_slice(body);
    writer.write_all(&message)?;
    writer.flush()
}

/// A chunked transfer-encoding response body: each [`ChunkedWriter::chunk`]
/// becomes one HTTP chunk flushed to the peer immediately, so NDJSON sweep
/// points arrive as they are evaluated.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

/// Start a chunked response: writes the status line and headers, returns
/// the body writer. The terminal zero-length chunk delimits the body, so
/// chunked responses compose with keep-alive.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn start_chunked<W: Write>(
    mut writer: W,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<ChunkedWriter<W>> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        reason(status),
        connection_token(keep_alive)
    )?;
    writer.flush()?;
    Ok(ChunkedWriter { writer })
}

impl<W: Write> ChunkedWriter<W> {
    /// Send one chunk (empty chunks are skipped — an empty chunk would
    /// terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        // Frame the chunk in one buffer so each NDJSON point costs one
        // write syscall, not three.
        let mut framed = format!("{:x}\r\n", data.len()).into_bytes();
        framed.extend_from_slice(data);
        framed.extend_from_slice(b"\r\n");
        self.writer.write_all(&framed)?;
        self.writer.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ServeError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse(b"POST /v1/estimate?pretty HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/estimate");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body, b"abcd");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = parse(b"GET /v1/healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
        assert_eq!(request.header("content-length"), None);
        assert!(!request.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let keep = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(keep.keep_alive);
        // `close` wins over `keep-alive` regardless of token order
        // (RFC 9112); unknown tokens fall back to the version default.
        assert!(!keep_alive_semantics("HTTP/1.1", Some("foo, Close")));
        assert!(!keep_alive_semantics("HTTP/1.0", Some("keep-alive, close")));
        assert!(!keep_alive_semantics("HTTP/1.1", Some("close, keep-alive")));
        assert!(keep_alive_semantics(
            "HTTP/1.0",
            Some("upgrade, Keep-Alive")
        ));
        assert!(keep_alive_semantics("HTTP/1.1", Some("upgrade")));
        assert!(!keep_alive_semantics("HTTP/1.0", None));
    }

    #[test]
    fn empty_connections_and_malformed_requests() {
        assert_eq!(parse(b"").unwrap(), None);
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(huge.as_bytes()), Err(ServeError::Http(_))));
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut head = String::from("GET / HTTP/1.1\r\n");
        while head.len() <= MAX_HEAD_BYTES {
            head.push_str("X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        head.push_str("\r\n");
        assert!(matches!(parse(head.as_bytes()), Err(ServeError::Http(_))));
        // A newline-free flood is rejected at the cap, never buffered whole.
        let flood = vec![b'a'; 4 * MAX_HEAD_BYTES];
        assert!(matches!(parse(&flood), Err(ServeError::Http(_))));
    }

    #[test]
    fn fixed_and_chunked_responses_serialize() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));

        let mut out = Vec::new();
        let mut chunked = start_chunked(&mut out, 200, "application/x-ndjson", true).unwrap();
        chunked.chunk(b"hello\n").unwrap();
        chunked.chunk(b"").unwrap();
        chunked.chunk(b"world\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"));
        assert_eq!(reason(500), "Internal Server Error");
        assert_eq!(reason(418), "");
    }
}
