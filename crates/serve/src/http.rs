//! A minimal HTTP/1.1 wire layer over blocking byte streams.
//!
//! Hand-rolled on purpose: the build environment has no package registry,
//! so the server cannot pull in hyper/tokio — the same constraint that made
//! the workspace hand-roll its serde shims. The subset implemented here is
//! exactly what the service needs: request parsing with `Content-Length`
//! bodies, fixed-length responses, and chunked transfer-encoding for
//! streaming NDJSON sweeps.
//!
//! Connections are persistent (HTTP/1.1 keep-alive): the parser records
//! whether the peer allows reuse ([`Request::keep_alive`], from the
//! protocol version and the `Connection` header tokens), and every response
//! writer takes a `keep_alive` flag that advertises `Connection:
//! keep-alive` or `Connection: close` accordingly. The server's
//! per-connection request loop (idle timeout, bounded requests per
//! connection) lives in [`crate::server`].

use std::io::{BufRead, Write};

use crate::ServeError;

/// Upper bound on the request line + headers, to bound memory per
/// connection.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (inline `System` descriptions are a few
/// KiB; this leaves generous headroom for large structured sweeps).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request: method, path (query string stripped), lowercased
/// header names, and the full body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path without the query string (`/v1/estimate`).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the peer allows this connection to serve another request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection` header token (`close` / `keep-alive`) overrides the
    /// default either way.
    pub keep_alive: bool,
}

impl Request {
    /// The value of the first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

/// Resolve the connection-reuse semantics of one request or response from
/// its protocol version and `Connection` header (comma-separated tokens,
/// ASCII case-insensitive) — the single definition both the server's
/// request parser and the client's response parser apply. Per RFC 9112, a
/// `close` token always wins over `keep-alive`, regardless of token order.
pub fn keep_alive_semantics(version: &str, connection_header: Option<&str>) -> bool {
    let Some(tokens) = connection_header else {
        return version != "HTTP/1.0";
    };
    let mut keep_alive = None;
    for token in tokens.split(',') {
        let token = token.trim();
        if token.eq_ignore_ascii_case("close") {
            return false;
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            keep_alive = Some(true);
        }
    }
    keep_alive.unwrap_or(version != "HTTP/1.0")
}

/// Look up the first header named `name` (ASCII case-insensitive) in a
/// parsed header list. Shared by the server's [`Request`] and the client's
/// `Response` so both sides apply identical lookup rules.
pub fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let name = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(key, _)| *key == name)
        .map(|(_, value)| value.as_str())
}

/// Parse one `Name: value` header line into a `(lowercased name, trimmed
/// value)` pair — the single definition of the wire's header syntax, used
/// by both the server's request parser and the client's response parser.
///
/// # Errors
///
/// Returns [`ServeError::Http`] when the line has no `:` separator.
pub fn parse_header_line(line: &str) -> Result<(String, String), ServeError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(ServeError::Http(format!("malformed header line {line:?}")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// Parse a complete request head (every byte up to and including the blank
/// line) into a body-less [`Request`] plus the announced `Content-Length`
/// — the single definition of the head grammar, shared by the blocking
/// [`read_request`] and the incremental [`RequestParser`].
fn parse_head(head: &str) -> Result<(Request, usize), ServeError> {
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::Http("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ServeError::Http(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Http(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(line)?);
    }

    let request = Request {
        method: method.to_owned(),
        path,
        keep_alive: keep_alive_semantics(version, header_lookup(&headers, "connection")),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ServeError::Http(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    let length = match request.header("content-length") {
        Some(value) => value
            .trim()
            .parse::<usize>()
            .map_err(|_| ServeError::Http(format!("invalid Content-Length {value:?}")))?,
        None => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(ServeError::Http(format!(
            "request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    Ok((request, length))
}

/// Read one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending
/// anything (e.g. a liveness probe that only connects).
///
/// # Errors
///
/// Returns [`ServeError::Http`] for malformed or oversized requests and
/// [`ServeError::Io`] for socket failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let mut head = Vec::new();
    // Read header lines until the blank line terminating the head. The
    // size limit is enforced *inside* the read via `take`, so a peer
    // sending an endless newline-free byte stream cannot grow `head`
    // beyond the cap before the check runs.
    let mut limited = std::io::Read::take(&mut *reader, MAX_HEAD_BYTES as u64 + 1);
    loop {
        let start = head.len();
        let read = limited
            .read_until(b'\n', &mut head)
            .map_err(|e| ServeError::Io(format!("reading request head: {e}")))?;
        if head.len() > MAX_HEAD_BYTES {
            return Err(ServeError::Http(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        if read == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(ServeError::Http("connection closed mid-request".into()));
        }
        let line = &head[start..];
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    // `limited`'s borrow of `reader` ends here; the body reads from
    // `reader` directly below, bounded by the Content-Length check instead.
    let head = String::from_utf8(head)
        .map_err(|_| ServeError::Http("request head is not valid UTF-8".into()))?;
    let (request, length) = parse_head(&head)?;
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ServeError::Http(format!("reading {length}-byte body: {e}")))?;
    Ok(Some(Request { body, ..request }))
}

/// A fully parsed head waiting for its body bytes to accumulate.
#[derive(Debug)]
struct PendingBody {
    request: Request,
    head_len: usize,
    body_len: usize,
}

/// A resumable incremental request parser for nonblocking connections.
///
/// The event-loop server appends whatever bytes a readiness event yields to
/// a per-connection buffer and asks this parser for complete requests. The
/// parser remembers how far it has scanned between calls, so a slow-loris
/// peer dribbling one byte per read costs O(1) re-work per byte instead of
/// re-scanning the head each time — and a pipelining peer that packs many
/// requests into one segment has them parsed out one [`next_request`] call
/// at a time.
///
/// Contract: `buf` always starts at the first unconsumed byte of the
/// request stream, and the caller drains exactly `consumed` bytes from the
/// front after each parsed request (the parser resets its scan state at
/// that point). Size caps ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) are
/// enforced as the bytes accumulate, never after the fact.
///
/// [`next_request`]: RequestParser::next_request
#[derive(Debug, Default)]
pub struct RequestParser {
    /// How far the head scan has advanced into the buffer (resumption
    /// point; nothing before it needs re-reading).
    scanned: usize,
    /// Start offset of the header line currently being scanned.
    line_start: usize,
    /// A parsed head whose body has not fully arrived yet.
    pending: Option<PendingBody>,
}

impl RequestParser {
    /// A parser with no buffered state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to parse one complete request from the front of `buf`.
    ///
    /// Returns `Ok(Some((request, consumed)))` when a full request (head +
    /// body) is available — the caller must drain `consumed` bytes from the
    /// front of `buf` before the next call — and `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Http`] for malformed or oversized requests;
    /// the connection's framing is unrecoverable from there on.
    pub fn next_request(&mut self, buf: &[u8]) -> Result<Option<(Request, usize)>, ServeError> {
        if self.pending.is_none() {
            let Some(head_end) = self.scan_head(buf)? else {
                return Ok(None);
            };
            let head = std::str::from_utf8(&buf[..head_end])
                .map_err(|_| ServeError::Http("request head is not valid UTF-8".into()))?;
            let (request, body_len) = parse_head(head)?;
            self.pending = Some(PendingBody {
                request,
                head_len: head_end,
                body_len,
            });
        }
        let pending = self.pending.as_ref().expect("pending head");
        let total = pending.head_len + pending.body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let pending = self.pending.take().expect("pending head");
        let mut request = pending.request;
        request.body = buf[pending.head_len..total].to_vec();
        self.scanned = 0;
        self.line_start = 0;
        Ok(Some((request, total)))
    }

    /// Advance the head scan, returning the head length (including the
    /// terminating blank line) once the blank line is in the buffer.
    fn scan_head(&mut self, buf: &[u8]) -> Result<Option<usize>, ServeError> {
        while self.scanned < buf.len() {
            let at = self.scanned;
            self.scanned += 1;
            if buf[at] != b'\n' {
                continue;
            }
            let line = &buf[self.line_start..at];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            self.line_start = self.scanned;
            if line.is_empty() {
                if self.scanned > MAX_HEAD_BYTES {
                    return Err(ServeError::Http(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                return Ok(Some(self.scanned));
            }
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::Http(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        Ok(None)
    }
}

/// The reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// The `Connection` response-header value for a reuse decision.
fn connection_token(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Write a complete fixed-length response and flush it. `keep_alive`
/// advertises whether the server will serve another request on this
/// connection.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with_headers(writer, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (name, value) ahead of
/// the body — how the admission-control path attaches `Retry-After` to its
/// `429 Too Many Requests` responses.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with_headers<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    // One buffer, one write: `write!` straight onto a socket would emit a
    // segment per format fragment.
    let mut message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        connection_token(keep_alive)
    )
    .into_bytes();
    for (name, value) in extra_headers {
        message.extend_from_slice(name.as_bytes());
        message.extend_from_slice(b": ");
        message.extend_from_slice(value.as_bytes());
        message.extend_from_slice(b"\r\n");
    }
    message.extend_from_slice(b"\r\n");
    message.extend_from_slice(body);
    writer.write_all(&message)?;
    writer.flush()
}

/// A chunked transfer-encoding response body: each [`ChunkedWriter::chunk`]
/// becomes one HTTP chunk flushed to the peer immediately, so NDJSON sweep
/// points arrive as they are evaluated.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

/// Start a chunked response: writes the status line and headers, returns
/// the body writer. The terminal zero-length chunk delimits the body, so
/// chunked responses compose with keep-alive.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn start_chunked<W: Write>(
    writer: W,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<ChunkedWriter<W>> {
    start_chunked_with_headers(writer, status, content_type, &[], keep_alive)
}

/// [`start_chunked`] with extra response headers (name, value) ahead of
/// the body — how streamed sweep responses echo `X-Ecochip-Trace`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn start_chunked_with_headers<W: Write>(
    mut writer: W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<ChunkedWriter<W>> {
    // One buffer, one write, like `write_response_with_headers`.
    let mut message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        reason(status),
        connection_token(keep_alive)
    )
    .into_bytes();
    for (name, value) in extra_headers {
        message.extend_from_slice(name.as_bytes());
        message.extend_from_slice(b": ");
        message.extend_from_slice(value.as_bytes());
        message.extend_from_slice(b"\r\n");
    }
    message.extend_from_slice(b"\r\n");
    writer.write_all(&message)?;
    writer.flush()?;
    Ok(ChunkedWriter { writer })
}

impl<W: Write> ChunkedWriter<W> {
    /// Send one chunk (empty chunks are skipped — an empty chunk would
    /// terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        // Frame the chunk in one buffer so each NDJSON point costs one
        // write syscall, not three.
        let mut framed = format!("{:x}\r\n", data.len()).into_bytes();
        framed.extend_from_slice(data);
        framed.extend_from_slice(b"\r\n");
        self.writer.write_all(&framed)?;
        self.writer.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ServeError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse(b"POST /v1/estimate?pretty HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/estimate");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body, b"abcd");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = parse(b"GET /v1/healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
        assert_eq!(request.header("content-length"), None);
        assert!(!request.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let keep = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(keep.keep_alive);
        // `close` wins over `keep-alive` regardless of token order
        // (RFC 9112); unknown tokens fall back to the version default.
        assert!(!keep_alive_semantics("HTTP/1.1", Some("foo, Close")));
        assert!(!keep_alive_semantics("HTTP/1.0", Some("keep-alive, close")));
        assert!(!keep_alive_semantics("HTTP/1.1", Some("close, keep-alive")));
        assert!(keep_alive_semantics(
            "HTTP/1.0",
            Some("upgrade, Keep-Alive")
        ));
        assert!(keep_alive_semantics("HTTP/1.1", Some("upgrade")));
        assert!(!keep_alive_semantics("HTTP/1.0", None));
    }

    #[test]
    fn empty_connections_and_malformed_requests() {
        assert_eq!(parse(b"").unwrap(), None);
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ServeError::Http(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(huge.as_bytes()), Err(ServeError::Http(_))));
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut head = String::from("GET / HTTP/1.1\r\n");
        while head.len() <= MAX_HEAD_BYTES {
            head.push_str("X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        head.push_str("\r\n");
        assert!(matches!(parse(head.as_bytes()), Err(ServeError::Http(_))));
        // A newline-free flood is rejected at the cap, never buffered whole.
        let flood = vec![b'a'; 4 * MAX_HEAD_BYTES];
        assert!(matches!(parse(&flood), Err(ServeError::Http(_))));
    }

    #[test]
    fn incremental_parser_matches_the_blocking_parser() {
        let wire: &[u8] =
            b"POST /v1/estimate?pretty HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let blocking = parse(wire).unwrap().unwrap();

        // Fed byte by byte, the incremental parser produces the identical
        // request, and only once every byte is in.
        let mut parser = RequestParser::new();
        let mut buf = Vec::new();
        for (i, byte) in wire.iter().enumerate() {
            buf.push(*byte);
            let result = parser.next_request(&buf).unwrap();
            if i + 1 < wire.len() {
                assert!(result.is_none(), "complete after {} bytes?", i + 1);
            } else {
                let (request, consumed) = result.unwrap();
                assert_eq!(consumed, wire.len());
                assert_eq!(request, blocking);
            }
        }
    }

    #[test]
    fn incremental_parser_splits_pipelined_requests_in_order() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\none");
        wire.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        wire.extend_from_slice(b"POST /c HTTP/1.1\r\nContent-Length: 5\r\n\r\nthree");

        let mut parser = RequestParser::new();
        let mut buf = wire.clone();
        let mut paths = Vec::new();
        while let Some((request, consumed)) = parser.next_request(&buf).unwrap() {
            paths.push((request.path.clone(), request.body.clone()));
            buf.drain(..consumed);
        }
        assert!(buf.is_empty(), "every byte consumed");
        assert_eq!(
            paths,
            vec![
                ("/a".into(), b"one".to_vec()),
                ("/b".into(), Vec::new()),
                ("/c".into(), b"three".to_vec()),
            ]
        );
    }

    #[test]
    fn incremental_parser_enforces_the_size_caps() {
        // A newline-free flood trips the head cap as soon as the buffer
        // exceeds it — no terminator needed.
        let mut parser = RequestParser::new();
        let flood = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            parser.next_request(&flood),
            Err(ServeError::Http(_))
        ));

        // An oversized Content-Length is rejected when the head completes,
        // before any body accumulates.
        let mut parser = RequestParser::new();
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parser.next_request(huge.as_bytes()),
            Err(ServeError::Http(_))
        ));

        // Malformed heads error exactly like the blocking parser.
        let mut parser = RequestParser::new();
        assert!(matches!(
            parser.next_request(b"GARBAGE\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
        let mut parser = RequestParser::new();
        assert!(matches!(
            parser.next_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ServeError::Http(_))
        ));
    }

    #[test]
    fn responses_can_carry_extra_headers() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn fixed_and_chunked_responses_serialize() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));

        let mut out = Vec::new();
        let mut chunked = start_chunked(&mut out, 200, "application/x-ndjson", true).unwrap();
        chunked.chunk(b"hello\n").unwrap();
        chunked.chunk(b"").unwrap();
        chunked.chunk(b"world\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"));
        assert_eq!(reason(500), "Internal Server Error");
        assert_eq!(reason(418), "");
    }
}
