//! # ecochip-serve
//!
//! A network front end for the ECO-CHIP estimator: an HTTP/1.1 JSON service
//! over [`ecochip_core::EcoChipService`] plus a shard orchestrator that
//! fans a sweep out across workers and merges their streams.
//!
//! ECO-CHIP is positioned as a *tool* other systems call — carbon-aware
//! optimisation loops, DSE drivers, dashboards — which needs a service
//! interface, not a one-shot CLI. This crate provides one with zero
//! third-party dependencies: the HTTP layer is hand-rolled on
//! [`std::net::TcpListener`] driven by a readiness event loop over raw
//! `epoll`/`poll(2)` (see [`poll`] — the build environment has no registry
//! access, so no tokio/hyper/mio, the same way the workspace's `vendor/`
//! shims hand-roll serde). Idle keep-alive connections cost a file
//! descriptor and nothing else; cheap routes are answered on the loop
//! thread (with HTTP/1.1 pipelining), heavy routes (sweeps, batches, memo
//! transfers) run on a fixed handler pool, and overload is bounded by
//! admission control (`429 Too Many Requests` + `Retry-After` instead of
//! unbounded queueing).
//!
//! ## Endpoints
//!
//! | Method | Path | Behaviour |
//! |---|---|---|
//! | `POST` | `/v1/estimate` | One design → full CFP breakdown JSON |
//! | `POST` | `/v1/estimate` (array body) | N designs in one round-trip → array of per-item results |
//! | `POST` | `/v1/sweep` | Sweep description → points streamed as NDJSON (chunked) |
//! | `POST` | `/v1/optimize` | Carbon-aware search → incumbent-improvement events streamed as NDJSON |
//! | `GET` | `/v1/testcases` | Names of the built-in test cases |
//! | `GET` | `/v1/healthz` | Liveness probe |
//! | `GET` | `/v1/stats` | Memo hit/miss/eviction + request counters + per-route latency |
//! | `GET` | `/v1/memo` | Export the warm memo as fingerprinted JSON |
//! | `POST` | `/v1/memo` | Absorb a peer's exported memo (fingerprint-validated) |
//! | `GET` | `/v1/trace` | Recent-span ring buffer (request + sweep-stage spans) as JSON |
//! | `GET` | `/metrics` | Prometheus text-format metrics |
//! | `POST` | `/v1/shutdown` | Graceful shutdown (drains, then saves the memo) |
//!
//! Every request is traced: a valid client-supplied `X-Ecochip-Trace`
//! header is adopted as the request's trace ID (anything else gets a
//! server-minted one) and echoed back on the response, the
//! [`orchestrator`] stamps one trace ID on every worker hop of a fan-out,
//! and each request's spans land in the ring buffer behind `GET
//! /v1/trace`. Structured logs (`ECOCHIP_LOG`, `--log-level` /
//! `--log-format` on the CLI) carry the same IDs — see [`ecochip_trace`].
//!
//! Connections are persistent (HTTP/1.1 keep-alive with idle timeouts and
//! a requests-per-connection bound); [`client::Connection`] reuses one
//! socket across requests and the orchestrator drives each worker over a
//! kept-alive connection.
//!
//! Sweep responses stream each [`ecochip_core::sweep::SweepPoint`] as one
//! JSON line, produced by the same serializer as the CLI's
//! `--stream jsonl`, so an HTTP sweep is **bit-for-bit identical** to the
//! equivalent in-process [`ecochip_core::sweep::SweepEngine::run`] — the
//! integration tests and CI diff the two byte streams.
//!
//! ## One warm service, many connections
//!
//! All connections share one [`ecochip_core::EcoChipService`]: its memo
//! (floorplans, per-die manufacturing CFP) warms up across requests, is
//! bounded by `--memo-max-entries` (LRU eviction) so a long-running server
//! cannot grow without limit, and persists incrementally
//! (`--memo-save-every`, atomic temp-file + rename) so a restarted server
//! starts warm.
//!
//! ## Orchestration
//!
//! [`orchestrator`] partitions a sweep with
//! [`Shard`](ecochip_core::sweep::Shard)`{i, of}` across N in-process
//! workers or N remote server URLs, merges the ordered shard streams into
//! one NDJSON stream (shards are contiguous, so merging is ordered
//! concatenation), and fingerprints the merged stream so it can be verified
//! against an unsharded run.
//!
//! ```
//! use ecochip_serve::{client, ServeConfig, Server};
//! let server = Server::bind(&ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.local_addr().to_string();
//! let handle = server.spawn();
//! let health = client::get(&addr, "/v1/healthz")?;
//! assert_eq!(health.status, 200);
//! handle.shutdown()?;
//! # Ok::<(), ecochip_serve::ServeError>(())
//! ```

// `deny` instead of `forbid`: the readiness layer ([`poll`]) is the one
// module allowed to opt back in for its raw epoll/poll/pipe bindings.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod client;
pub mod frames;
pub mod http;
pub mod metrics;
pub mod orchestrator;
pub mod poll;
pub mod server;

pub use api::{
    BatchEstimateItem, ErrorResponse, EstimateRequest, EstimateResponse, HealthResponse,
    IndexRange, MemoImportResponse, OptimizeRequest, RouteLatency, StatsResponse, SweepFormat,
    SweepRequest, SweepSlice, TestcasesResponse, TraceResponse, TraceSpan,
};
pub use client::Connection;
pub use orchestrator::{FailoverPolicy, IslandOutcome, MemoShare, OrchestratorOutcome, WorkerPool};
pub use server::{ServeConfig, Server, ServerHandle};

use std::fmt;

use ecochip_core::EcoChipError;

/// Errors produced by the HTTP service, client and orchestrator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The listen/connect address could not be parsed or resolved. Front
    /// ends treat this as a usage error (CLI exit code 2).
    InvalidAddr(String),
    /// A socket operation failed.
    Io(String),
    /// The peer violated the HTTP protocol (malformed request/response).
    Http(String),
    /// The request was well-formed HTTP but semantically invalid (bad JSON,
    /// unknown test case, conflicting fields). Maps to HTTP 400.
    Api(String),
    /// The estimator rejected the design or failed evaluating it.
    Estimator(EcoChipError),
    /// A remote worker reported an error mid-stream.
    Worker(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidAddr(msg) => write!(f, "invalid address: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::Http(msg) => write!(f, "http protocol error: {msg}"),
            ServeError::Api(msg) => write!(f, "bad request: {msg}"),
            ServeError::Estimator(e) => write!(f, "estimation failed: {e}"),
            ServeError::Worker(msg) => write!(f, "worker failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EcoChipError> for ServeError {
    fn from(error: EcoChipError) -> Self {
        ServeError::Estimator(error)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(error: std::io::Error) -> Self {
        ServeError::Io(error.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let cases = [
            ServeError::InvalidAddr("nope".into()),
            ServeError::Io("broken pipe".into()),
            ServeError::Http("bad request line".into()),
            ServeError::Api("unknown testcase".into()),
            ServeError::from(EcoChipError::InvalidSystem("empty".into())),
            ServeError::Worker("remote died".into()),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(std::error::Error::source(&cases[4]).is_some());
        assert!(std::error::Error::source(&cases[0]).is_none());
        let io: ServeError = std::io::Error::other("x").into();
        assert!(matches!(io, ServeError::Io(_)));
    }
}
