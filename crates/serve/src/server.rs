//! The HTTP server: a readiness-driven event loop in front of one warm
//! [`EcoChipService`] shared with a fixed pool of handler threads.
//!
//! Architecture: one event-loop thread owns every parked connection
//! through a [`poll::Poller`] (epoll on Linux, `poll(2)` fallback —
//! see [`crate::poll`]). Sockets are nonblocking while parked, so ten
//! thousand idle keep-alive connections cost ten thousand file
//! descriptors and nothing else — no thread, no stack, no timer each.
//! Request bytes accumulate in a per-connection buffer drained by a
//! resumable [`http::RequestParser`], which also gives HTTP/1.1
//! **pipelining** for free: every complete request in the buffer is
//! served in order, responses queue onto a per-connection write buffer,
//! and a write backlog pauses reads (TCP backpressure) instead of
//! buffering without bound.
//!
//! Routes split by weight. *Light* routes (health, stats, testcases,
//! metrics, trace dumps, single estimates, shutdown, and every error
//! reply) are
//! answered inline on the loop thread — they are memo-bound
//! microsecond work, and avoiding a thread handoff is what keeps
//! point-lookup throughput flat while thousands of idle connections
//! are parked. *Heavy* routes (sweeps, batch estimates, memo
//! export/import) are dispatched to a pool of `threads` handler
//! threads: the connection is removed from the poller, flipped back to
//! blocking, and the worker streams the response directly (so chunked
//! sweep output is byte-for-byte what the old thread-per-connection
//! server produced) before handing the connection back to the loop
//! through a completion channel plus a [`poll::Waker`] nudge.
//!
//! Admission is bounded on two axes: `max_connections` caps accepted
//! sockets (excess connections get an immediate `429` with
//! `Retry-After` and are closed), and `max_inflight` caps
//! concurrently dispatched heavy requests (excess heavy requests get
//! the same `429` on their own connection, which stays usable). An
//! overloaded server therefore degrades into fast, explicit refusals
//! instead of an unbounded queue.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) sets a flag and wakes the loop through
//! the poller's self-pipe waker — no more "dial a throwaway TCP
//! connection at ourselves". The loop stops accepting, lets dispatched
//! requests finish, flushes and closes every parked connection, and
//! only after the handler pool has drained is the memo saved — the
//! final snapshot always contains whatever an in-flight sweep
//! inserted, and cannot race a mid-sweep autosave.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use ecochip_core::opt;
use ecochip_core::sweep::{SweepEngine, SweepPoint, SweepSink};
use ecochip_core::{EcoChip, EcoChipError, EcoChipService, EstimatorConfig};
use ecochip_techdb::TechDb;
use ecochip_testcases::catalog;
use ecochip_trace::{FieldValue, Stage, StageTimings};

use crate::api::{
    BatchEstimateItem, ErrorResponse, EstimateRequest, EstimateResponse, HealthResponse,
    MemoImportResponse, OptimizeRequest, RouteLatency, StatsResponse, SweepFormat, SweepRequest,
    SweepSlice, TestcasesResponse, TraceResponse, TraceSpan,
};
use crate::frames;
use crate::http;
use crate::metrics::{self, Metrics};
use crate::poll::{self, Interest, Poller};
use crate::ServeError;

/// Socket timeout applied while a connection is checked out to a handler
/// thread in blocking mode: a peer stalling mid-read of a streamed response
/// cannot pin a pool thread forever. (Timeouts are inert while the socket
/// is nonblocking on the event loop.)
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on one event-loop wait: how long idle-timeout enforcement
/// and a missed wake-up can lag behind wall-clock time.
const IDLE_SWEEP: Duration = Duration::from_millis(100);

/// Bytes read per `read(2)` call on a ready connection.
const READ_CHUNK: usize = 16 * 1024;

/// Per-readiness-event read budget: a firehosing peer yields the loop back
/// to other connections after this many bytes (level-triggered polling
/// re-reports the remainder immediately).
const READ_BUDGET: usize = 256 * 1024;

/// The poller token of the listening socket ([`poll::WAKER_TOKEN`] is
/// `u64::MAX`; connection tokens are slab indices counting up from 0).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// `Retry-After` value (seconds) attached to admission-control 429s.
const RETRY_AFTER_SECS: &str = "1";

/// The trace-propagation header: a valid client-supplied value is adopted
/// as the request's trace ID and echoed back; anything else gets a fresh
/// server-minted ID (also echoed). One ID therefore stitches a request's
/// server-side spans and log lines — across every fleet hop that forwards
/// the header — to the client that sent it.
const TRACE_HEADER: &str = "X-Ecochip-Trace";

/// Configuration of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Sweep-engine workers per request (`None`: `ECOCHIP_JOBS`, then the
    /// machine's available parallelism).
    pub jobs: Option<usize>,
    /// Case indices a sweep worker claims per queue round-trip (`None`:
    /// `ECOCHIP_CHUNK`, then the engine default).
    pub chunk: Option<usize>,
    /// Handler-pool threads for heavy routes (sweeps, batch estimates,
    /// memo transfers); light routes run on the event loop.
    pub threads: usize,
    /// Technology database (`None` uses the built-in defaults).
    pub techdb: Option<TechDb>,
    /// Load the memo from this file at startup (if present and
    /// fingerprint-compatible) and save it on shutdown.
    pub memo_file: Option<PathBuf>,
    /// Bound the memo to this many entries per cache (LRU eviction).
    pub memo_max_entries: Option<usize>,
    /// Autosave the memo whenever this many new entries accumulated
    /// (requires `memo_file`).
    pub memo_save_every: Option<usize>,
    /// How long a keep-alive connection may sit idle between requests —
    /// or drip-feed a partial request (slow loris) — before the server
    /// closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (keeps a single immortal peer from monopolising the server;
    /// clamped to at least 1).
    pub max_requests_per_connection: usize,
    /// Heavy requests (sweep / batch estimate / memo transfer) allowed in
    /// the handler pool — dispatched plus queued — before further heavy
    /// requests are refused with `429 Too Many Requests` + `Retry-After`.
    /// Clamped to at least 1.
    pub max_inflight: usize,
    /// Connections held open at once; further accepts are answered with
    /// an immediate `429` + `Retry-After` and closed. Clamped at bind
    /// time to the process's file-descriptor limit minus headroom.
    pub max_connections: usize,
    /// Narrate memo loads/saves to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            jobs: None,
            chunk: None,
            threads: 8,
            techdb: None,
            memo_file: None,
            memo_max_entries: None,
            memo_save_every: None,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            max_inflight: 256,
            max_connections: 16_384,
            verbose: false,
        }
    }
}

/// Counters and flags shared by the event loop and every handler thread.
struct ServerState {
    service: EcoChipService,
    db: TechDb,
    addr: SocketAddr,
    memo_file: Option<PathBuf>,
    idle_timeout: Duration,
    max_requests_per_connection: usize,
    max_inflight: usize,
    max_connections: usize,
    shutdown: AtomicBool,
    requests: AtomicU64,
    metrics: Metrics,
    /// Wakes the event loop out of a blocked wait (shutdown, handler-pool
    /// completions).
    waker: poll::Waker,
}

impl ServerState {
    /// Persist the memo if a memo file is configured (used at shutdown).
    fn save_memo(&self) {
        let Some(path) = &self.memo_file else { return };
        if let Err(error) = self.service.save_memo_logged(path) {
            ecochip_trace::warn(
                "serve::server",
                "saving memo failed",
                &[
                    ("path", FieldValue::from(path.display().to_string())),
                    ("error", FieldValue::from(error.to_string())),
                ],
            );
        }
    }

    /// Trip the shutdown flag and wake the event loop (self-pipe — works
    /// from any thread, needs no connectable address).
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("addr", &self.addr)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks; [`Server::spawn`]
/// runs it on a background thread and returns a [`ServerHandle`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    poller: Poller,
    state: Arc<ServerState>,
    threads: usize,
}

impl Server {
    /// Bind the listen socket, create the readiness poller and warm up the
    /// service (estimator, memo load, capacity bound, autosave).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidAddr`] when `config.addr` does not
    /// resolve and [`ServeError::Io`] when binding or poller creation
    /// fails. A stale or malformed memo file is *not* an error — the
    /// server starts cold and warns on stderr, matching the CLI.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        let mut addrs = config
            .addr
            .to_socket_addrs()
            .map_err(|e| ServeError::InvalidAddr(format!("{}: {e}", config.addr)))?;
        let addr = addrs.next().ok_or_else(|| {
            ServeError::InvalidAddr(format!("{} resolves to nothing", config.addr))
        })?;
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("binding {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("reading bound address: {e}")))?;
        let poller = Poller::new().map_err(|e| ServeError::Io(format!("creating poller: {e}")))?;

        // `verbose` raises the structured-log threshold (never lowers an
        // explicit `ECOCHIP_LOG=debug`), so the memo-load narration below
        // and the per-request access log reach stderr.
        if config.verbose {
            ecochip_trace::raise_level(ecochip_trace::Level::Info);
        }
        let db = config.techdb.clone().unwrap_or_default();
        let estimator = EcoChip::new(EstimatorConfig::builder().techdb(db.clone()).build());
        let engine = SweepEngine::with_optional_jobs(config.jobs).with_optional_chunk(config.chunk);
        let mut service = EcoChipService::with_engine(estimator, engine);
        service.set_memo_capacity(config.memo_max_entries);
        if let Some(path) = &config.memo_file {
            service.load_memo_lenient(path);
            if let Some(every) = config.memo_save_every {
                service.save_memo_every(path, every);
            }
        }

        // Every connection is a file descriptor; cap the connection count
        // below the process limit so the listener, memo file, self-pipe and
        // poller never hit EMFILE behind a connection flood.
        let mut max_connections = config.max_connections.max(1);
        if let Some((soft, _)) = poll::nofile_limit() {
            let headroom = (soft as usize).saturating_sub(64).max(16);
            max_connections = max_connections.min(headroom);
        }

        Ok(Self {
            state: Arc::new(ServerState {
                service,
                db,
                addr,
                memo_file: config.memo_file.clone(),
                idle_timeout: config.idle_timeout.max(Duration::from_millis(1)),
                max_requests_per_connection: config.max_requests_per_connection.max(1),
                max_inflight: config.max_inflight.max(1),
                max_connections,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                metrics: Metrics::new(),
                waker: poller.waker(),
            }),
            listener,
            poller,
            threads: config.threads.max(1),
        })
    }

    /// The bound listen address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The effective sweep chunk size (points claimed per worker grab),
    /// after `ServeConfig::chunk` / `ECOCHIP_CHUNK` / default resolution.
    pub fn engine_chunk(&self) -> usize {
        self.state.service.engine().chunk()
    }

    /// The readiness backend the event loop runs on (`"epoll"` or
    /// `"poll"`), for banners and tests.
    pub fn poll_backend(&self) -> &'static str {
        self.poller.backend_name()
    }

    /// Serve until shut down (`POST /v1/shutdown` or
    /// [`ServerHandle::shutdown`]), then save the memo and return.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for listener/poller failures;
    /// individual connection errors are answered with HTTP error responses
    /// (or dropped when the peer is gone) and never stop the server.
    pub fn run(self) -> Result<(), ServeError> {
        let Server {
            listener,
            mut poller,
            state,
            threads,
        } = self;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("listener nonblocking mode: {e}")))?;
        poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .map_err(|e| ServeError::Io(format!("registering listener: {e}")))?;

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let job_rx = Mutex::new(job_rx);
        let job_rx = &job_rx;
        let state_ref: &ServerState = &state;
        let result = std::thread::scope(|scope| {
            for _ in 0..threads {
                let done_tx = done_tx.clone();
                scope.spawn(move || worker_loop(state_ref, job_rx, done_tx));
            }
            drop(done_tx);
            let mut event_loop = EventLoop {
                state: state_ref,
                listener: &listener,
                poller: &mut poller,
                job_tx,
                done_rx,
                conns: Slab::default(),
                checked_out: 0,
                draining: false,
                last_idle_scan: Instant::now(),
            };
            event_loop.run()
            // `event_loop` (and with it the job sender) drops here, so the
            // pool threads drain any queued jobs and exit; the scope then
            // joins them.
        });
        // The scope has joined every handler thread, so all in-flight
        // requests (including streaming sweeps and their incremental
        // autosaves) are fully drained: this final save is strictly ordered
        // after the last insert and cannot race a mid-sweep autosave or
        // publish a snapshot missing in-flight entries.
        state.save_memo();
        result
    }

    /// Run the server on a background thread (for tests, examples and
    /// embedding) and return a handle that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { state, thread }
    }
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<Result<(), ServeError>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Stop accepting, let in-flight requests finish, save the memo and
    /// join the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server loop's exit error, or [`ServeError::Io`] when
    /// the server thread panicked.
    pub fn shutdown(self) -> Result<(), ServeError> {
        self.state.trigger_shutdown();
        self.thread
            .join()
            .map_err(|_| ServeError::Io("server thread panicked".into()))?
    }
}

/// One parked connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed request bytes (drained as requests complete).
    buf: Vec<u8>,
    /// Resumable head/body parser over `buf` (pipelining-aware).
    parser: http::RequestParser,
    /// Queued response bytes not yet written to the socket.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has reached the socket.
    written: usize,
    /// A heavy request waiting for `write_buf` to flush before its
    /// connection can be handed to the pool (responses stay in order).
    pending_dispatch: Option<Box<Job0>>,
    /// Close once `write_buf` is flushed (error reply, `Connection:
    /// close`, shutdown, request-count bound).
    close_after_flush: bool,
    /// The peer half-closed its write side (read returned EOF).
    peer_eof: bool,
    /// Requests served on this connection (for the per-connection bound).
    served: usize,
    /// Last socket activity, for the idle timeout.
    last_activity: Instant,
    /// When the currently-incomplete request started arriving — bounds a
    /// slow-loris peer drip-feeding a header forever.
    partial_since: Option<Instant>,
    /// The interest set currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            parser: http::RequestParser::new(),
            write_buf: Vec::new(),
            written: 0,
            pending_dispatch: None,
            close_after_flush: false,
            peer_eof: false,
            served: 0,
            last_activity: now,
            partial_since: None,
            interest: Interest::READ,
        }
    }

    /// Whether every queued response byte has reached the socket.
    fn flushed(&self) -> bool {
        self.written == self.write_buf.len()
    }
}

/// A parsed heavy request without its connection (boxed inside
/// [`Conn::pending_dispatch`]).
struct Job0 {
    request: http::Request,
    keep_alive: bool,
    /// The request's resolved trace ID — minted on the event loop so the
    /// loop and the pool thread agree on it.
    trace: String,
}

/// A heavy request checked out to the handler pool, carrying its
/// connection.
struct Job {
    conn: Conn,
    request: http::Request,
    keep_alive: bool,
    trace: String,
}

/// A finished heavy request handing its connection back to the loop.
struct Done {
    conn: Conn,
    close: bool,
}

/// Slot map from poller token (index) to connection. Freed slots are
/// reused; a token is never live for two connections inside one event
/// batch (readiness events are coalesced per descriptor).
#[derive(Default)]
struct Slab {
    entries: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                self.entries[index] = Some(conn);
                index
            }
            None => {
                self.entries.push(Some(conn));
                self.entries.len() - 1
            }
        }
    }

    fn remove(&mut self, index: usize) -> Option<Conn> {
        let conn = self.entries.get_mut(index)?.take()?;
        self.free.push(index);
        self.live -= 1;
        Some(conn)
    }

    fn get_mut(&mut self, index: usize) -> Option<&mut Conn> {
        self.entries.get_mut(index)?.as_mut()
    }

    /// Indices of currently-live connections (snapshot; safe to mutate the
    /// slab while iterating the returned list).
    fn live_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_ref().map(|_| index))
            .collect()
    }
}

/// What to do with a connection after a progress pass.
enum After {
    /// Keep it parked (interest derived from its buffers).
    Keep,
    /// Hand it to the handler pool for this heavy request.
    Dispatch(Box<Job0>),
    /// Remove and drop it.
    Close,
}

/// The event loop: owns the poller, the parked-connection slab and the
/// dispatch bookkeeping for one [`Server::run`] call.
struct EventLoop<'a> {
    state: &'a ServerState,
    listener: &'a TcpListener,
    poller: &'a mut Poller,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Done>,
    conns: Slab,
    /// Connections currently checked out to the handler pool (dispatched
    /// or queued) — the `max_inflight` admission measure.
    checked_out: usize,
    /// Shutdown observed: listener deregistered, parked connections
    /// flushing out, loop exits when everything has drained.
    draining: bool,
    last_idle_scan: Instant,
}

impl EventLoop<'_> {
    fn run(&mut self) -> Result<(), ServeError> {
        let mut events: Vec<poll::Event> = Vec::new();
        let tick = self.state.idle_timeout.min(IDLE_SWEEP);
        loop {
            if !self.draining && self.state.shutting_down() {
                self.begin_drain();
            }
            if self.draining && self.checked_out == 0 && self.conns.live == 0 {
                self.state.metrics.set_connection_gauges(0, 0);
                return Ok(());
            }
            self.poller
                .wait(&mut events, Some(tick))
                .map_err(|e| ServeError::Io(format!("polling for readiness: {e}")))?;
            self.state.metrics.wakeup();
            for &event in &events {
                match event.token {
                    poll::WAKER_TOKEN => {} // completions drained below
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token as usize, event),
                }
            }
            while let Ok(done) = self.done_rx.try_recv() {
                self.reclaim(done);
            }
            if self.last_idle_scan.elapsed() >= tick {
                self.sweep_idle();
                self.last_idle_scan = Instant::now();
            }
            self.state
                .metrics
                .set_connection_gauges(self.conns.live as u64, self.checked_out as u64);
        }
    }

    /// Shutdown observed: stop accepting and push parked connections
    /// toward closure (in-flight pool work keeps running until done).
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for index in self.conns.live_indices() {
            let parked_clean = {
                let conn = self.conns.get_mut(index).expect("live index");
                conn.close_after_flush = true;
                conn.flushed() && conn.pending_dispatch.is_none()
            };
            if parked_clean {
                self.close_conn(index);
            }
        }
    }

    /// Close connections that idled out — or drip-fed a partial request —
    /// past the idle timeout.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let timeout = self.state.idle_timeout;
        for index in self.conns.live_indices() {
            let expired = {
                let conn = self.conns.get_mut(index).expect("live index");
                now.duration_since(conn.last_activity) >= timeout
                    || conn
                        .partial_since
                        .is_some_and(|since| now.duration_since(since) >= timeout)
            };
            if expired {
                self.close_conn(index);
            }
        }
    }

    /// Accept every pending connection (the listener is level-triggered
    /// and nonblocking).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.state.metrics.connection_opened();
                    if self.draining {
                        continue; // raced the drain transition: drop it
                    }
                    if self.conns.live + self.checked_out >= self.state.max_connections {
                        self.state.metrics.rejected("max_connections");
                        refuse(self.state, stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are written as single buffered messages
                    // (and NDJSON chunks must reach the peer as they are
                    // evaluated), so Nagle's algorithm only adds
                    // delayed-ACK stalls to the keep-alive ping-pong.
                    let _ = stream.set_nodelay(true);
                    // Inert until the socket goes blocking on a pool
                    // thread.
                    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                    let fd = stream.as_raw_fd();
                    let index = self.conns.insert(Conn::new(stream, Instant::now()));
                    if self
                        .poller
                        .register(fd, index as u64, Interest::READ)
                        .is_err()
                    {
                        self.conns.remove(index);
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(error) => {
                    // Transient accept failure (EMFILE under a connection
                    // flood, aborted handshake): warn and let the next
                    // readiness event retry.
                    ecochip_trace::warn(
                        "serve::server",
                        "accepting connection failed",
                        &[("error", FieldValue::from(error.to_string()))],
                    );
                    break;
                }
            }
        }
    }

    /// One readiness event for a parked connection.
    fn conn_event(&mut self, index: usize, event: poll::Event) {
        let Some(conn) = self.conns.get_mut(index) else {
            return; // closed earlier in this batch
        };
        conn.last_activity = Instant::now();
        if event.readable || event.closed {
            match read_ready(conn) {
                Ok(eof) => conn.peer_eof |= eof,
                Err(_) => {
                    self.close_conn(index);
                    return;
                }
            }
        }
        self.drive(index);
    }

    /// Run the connection's state machine and apply the outcome: re-park
    /// with the right interest, dispatch to the pool, or close.
    fn drive(&mut self, index: usize) {
        let inflight = self.checked_out;
        let outcome = {
            let Some(conn) = self.conns.get_mut(index) else {
                return;
            };
            progress(self.state, conn, inflight)
        };
        match outcome {
            After::Keep => {
                let Some(conn) = self.conns.get_mut(index) else {
                    return;
                };
                // A write backlog pauses reads: the pipelining peer gets
                // TCP backpressure instead of unbounded server buffering.
                let desired = if conn.flushed() {
                    Interest::READ
                } else {
                    Interest::WRITE
                };
                if desired != conn.interest {
                    let fd = conn.stream.as_raw_fd();
                    if self.poller.modify(fd, index as u64, desired).is_err() {
                        self.close_conn(index);
                        return;
                    }
                    if let Some(conn) = self.conns.get_mut(index) {
                        conn.interest = desired;
                    }
                }
            }
            After::Dispatch(job) => {
                let Some(conn) = self.conns.remove(index) else {
                    return;
                };
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
                if conn.stream.set_nonblocking(false).is_err() {
                    return; // connection dies; nothing to hand the pool
                }
                self.checked_out += 1;
                let Job0 {
                    request,
                    keep_alive,
                    trace,
                } = *job;
                // The pool threads outlive the loop (they exit only when
                // the job sender drops), so this send cannot fail here.
                let _ = self.job_tx.send(Job {
                    conn,
                    request,
                    keep_alive,
                    trace,
                });
            }
            After::Close => self.close_conn(index),
        }
    }

    /// A handler thread finished with a connection: repark it (and serve
    /// any pipelined bytes it buffered) or close it.
    fn reclaim(&mut self, done: Done) {
        self.checked_out -= 1;
        if done.close || self.draining {
            return; // drop: the worker advertised `Connection: close`
        }
        let mut conn = done.conn;
        if conn.stream.set_nonblocking(true).is_err() {
            return;
        }
        conn.last_activity = Instant::now();
        conn.interest = Interest::READ;
        let fd = conn.stream.as_raw_fd();
        let index = self.conns.insert(conn);
        if self
            .poller
            .register(fd, index as u64, Interest::READ)
            .is_err()
        {
            self.conns.remove(index);
            return;
        }
        // The peer may have pipelined more requests while the worker was
        // streaming; serve whatever is already buffered.
        self.drive(index);
    }

    fn close_conn(&mut self, index: usize) {
        if let Some(conn) = self.conns.remove(index) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
    }
}

/// Drain every readable byte (bounded by [`READ_BUDGET`]) into the
/// connection's parse buffer. `Ok(true)` means the peer reached EOF.
fn read_ready(conn: &mut Conn) -> std::io::Result<bool> {
    let mut chunk = [0u8; READ_CHUNK];
    let mut total = 0;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Ok(true),
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                total += n;
                if total >= READ_BUDGET {
                    return Ok(false);
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(error),
        }
    }
}

/// Write as much of the queued response bytes as the socket accepts.
/// Returns `false` when the socket failed (close the connection).
fn flush_write(conn: &mut Conn) -> bool {
    while conn.written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return false,
            Ok(n) => conn.written += n,
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.flushed() {
        conn.write_buf.clear();
        conn.written = 0;
    }
    true
}

/// The per-connection state machine: serve every complete pipelined
/// request in order (light routes inline, heavy routes via
/// [`After::Dispatch`]), then flush and decide how the connection parks.
fn progress(state: &ServerState, conn: &mut Conn, inflight: usize) -> After {
    loop {
        if conn.close_after_flush {
            break;
        }
        if conn.pending_dispatch.is_some() {
            if conn.flushed() {
                let job = conn.pending_dispatch.take().expect("pending dispatch");
                return After::Dispatch(job);
            }
            break; // earlier responses must hit the wire first
        }
        match conn.parser.next_request(&conn.buf) {
            Ok(Some((request, consumed))) => {
                conn.buf.drain(..consumed);
                conn.partial_since = None;
                conn.served += 1;
                state.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = request.keep_alive
                    && conn.served < state.max_requests_per_connection
                    && !state.shutting_down();
                // One trace ID per request, resolved on the loop so the
                // admission path, the pool thread and the response echo
                // all agree on it.
                let trace = resolve_trace(&request);
                if is_offloaded(&request) {
                    if inflight >= state.max_inflight {
                        // Admission control: refuse the heavy request but
                        // keep the connection usable.
                        let route =
                            metrics::route_label_for(&request.method, &request.path, &request.body);
                        state.metrics.rejected("max_inflight");
                        state.metrics.request_started();
                        let started = Instant::now();
                        let _trace = ecochip_trace::set_current_trace(trace);
                        respond_overloaded(
                            &mut conn.write_buf,
                            "server is at its in-flight request limit; retry later",
                            keep_alive,
                        );
                        state.metrics.observe(route, 429, started.elapsed());
                        access_log(&request, route, 429, started.elapsed());
                        if !keep_alive {
                            conn.close_after_flush = true;
                        }
                        continue;
                    }
                    let job = Box::new(Job0 {
                        request,
                        keep_alive,
                        trace,
                    });
                    if conn.flushed() {
                        return After::Dispatch(job);
                    }
                    conn.pending_dispatch = Some(job);
                    continue;
                }
                let route = metrics::route_label_for(&request.method, &request.path, &request.body);
                state.metrics.request_started();
                let started = Instant::now();
                let (status, close_after) = {
                    let _trace = ecochip_trace::set_current_trace(trace);
                    let span = ecochip_trace::span(format!("request:{route}"));
                    let outcome = route_light(state, &request, &mut conn.write_buf, keep_alive);
                    drop(span);
                    access_log(&request, route, outcome.0, started.elapsed());
                    outcome
                };
                state.metrics.observe(route, status, started.elapsed());
                if close_after || !keep_alive {
                    conn.close_after_flush = true;
                }
            }
            Ok(None) => break, // need more bytes
            Err(error) => {
                // The request framing is unreliable from here on; answer
                // and close.
                state.metrics.request_started();
                let started = Instant::now();
                let status = respond_error_into(&mut conn.write_buf, &error, false);
                state.metrics.observe("other", status, started.elapsed());
                conn.close_after_flush = true;
            }
        }
    }
    if !conn.buf.is_empty() && conn.partial_since.is_none() {
        conn.partial_since = Some(Instant::now());
    }
    if !flush_write(conn) {
        return After::Close;
    }
    if !conn.flushed() {
        return After::Keep; // parks with write interest
    }
    if let Some(job) = conn.pending_dispatch.take() {
        // The flush above emptied the queue, so the held-back heavy
        // request can go out now instead of waiting for a socket event
        // that may never come (its bytes are already in our buffer).
        return After::Dispatch(job);
    }
    if conn.close_after_flush || conn.peer_eof {
        // Everything owed has hit the wire; EOF with nothing buffered is
        // the silent probe-connection close.
        return After::Close;
    }
    After::Keep
}

/// Whether a request runs on the handler pool (streaming or bulk work)
/// instead of inline on the event loop. Wrong-method requests on these
/// paths stay inline (405).
fn is_offloaded(request: &http::Request) -> bool {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sweep") => true,
        ("POST", "/v1/optimize") => true,
        ("POST", "/v1/estimate") => metrics::is_batch_estimate_body(&request.body),
        ("GET" | "POST", "/v1/memo") => true,
        _ => false,
    }
}

/// A handler-pool thread: serve heavy requests off the shared queue until
/// the event loop drops the sender.
fn worker_loop(state: &ServerState, jobs: &Mutex<mpsc::Receiver<Job>>, done: mpsc::Sender<Done>) {
    loop {
        let job = {
            let receiver = jobs.lock().expect("job queue");
            receiver.recv()
        };
        let Ok(Job {
            mut conn,
            request,
            keep_alive,
            trace,
        }) = job
        else {
            break; // event loop ended
        };
        let route = metrics::route_label_for(&request.method, &request.path, &request.body);
        state.metrics.request_started();
        let started = Instant::now();
        let status = {
            let _trace = ecochip_trace::set_current_trace(trace);
            let span = ecochip_trace::span(format!("request:{route}"));
            let status = route_offloaded(state, &request, &mut conn.stream, keep_alive, &span);
            drop(span);
            access_log(&request, route, status, started.elapsed());
            status
        };
        state.metrics.observe(route, status, started.elapsed());
        // 499: the peer vanished mid-stream — nothing left to keep alive.
        let close = !keep_alive || status == 499;
        let _ = done.send(Done { conn, close });
        state.waker.wake();
    }
}

/// Resolve a request's trace ID: adopt a valid client-supplied
/// `X-Ecochip-Trace` header, otherwise mint a fresh process-unique ID.
fn resolve_trace(request: &http::Request) -> String {
    match request.header(TRACE_HEADER) {
        Some(id) if ecochip_trace::is_valid_trace_id(id) => id.to_string(),
        _ => ecochip_trace::mint_trace_id(),
    }
}

/// One Info-level access-log event per served request. Must run inside
/// the request's trace guard so the line carries the trace ID — the CI
/// chaos step greps a worker's JSON log for the orchestrator's ID.
fn access_log(request: &http::Request, route: &'static str, status: u16, elapsed: Duration) {
    ecochip_trace::info(
        "serve::server",
        "request",
        &[
            ("method", FieldValue::from(request.method.as_str())),
            ("path", FieldValue::from(request.path.as_str())),
            ("route", FieldValue::from(route)),
            ("status", FieldValue::from(u64::from(status))),
            ("duration_secs", FieldValue::from(elapsed.as_secs_f64())),
        ],
    );
}

/// Write a response body with the request's trace ID echoed as an
/// `X-Ecochip-Trace` header (when a trace guard is active — every routed
/// request; `refuse` runs outside one and echoes nothing).
fn write_traced<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    match ecochip_trace::current_trace() {
        Some(trace) => {
            let _ = http::write_response_with_headers(
                writer,
                status,
                content_type,
                &[(TRACE_HEADER, &trace)],
                body,
                keep_alive,
            );
        }
        None => {
            let _ = http::write_response(writer, status, content_type, body, keep_alive);
        }
    }
}

/// Serialize a response body; the wire types cannot fail serialization, so
/// a failure is a programming error surfaced as a 500 body.
fn body<T: Serialize>(value: &T) -> Vec<u8> {
    match serde_json::to_string(value) {
        Ok(mut json) => {
            json.push('\n');
            json.into_bytes()
        }
        Err(error) => format!("{{\"error\":\"serializing response: {error}\"}}\n").into_bytes(),
    }
}

/// Write a JSON response, returning the status for metrics. The writer is
/// either a connection's in-memory response queue (infallible) or a
/// checked-out socket whose peer may already be gone — nothing useful to
/// do about a write failure either way.
fn respond<W: Write, T: Serialize>(
    writer: &mut W,
    status: u16,
    value: &T,
    keep_alive: bool,
) -> u16 {
    write_traced(writer, status, "application/json", &body(value), keep_alive);
    status
}

fn respond_error<W: Write>(writer: &mut W, error: &ServeError, keep_alive: bool) -> u16 {
    let status = match error {
        ServeError::Io(_) => 500,
        _ => 400,
    };
    respond(
        writer,
        status,
        &ErrorResponse {
            error: error.to_string(),
        },
        keep_alive,
    )
}

/// [`respond_error`] onto a connection's response queue.
fn respond_error_into(out: &mut Vec<u8>, error: &ServeError, keep_alive: bool) -> u16 {
    respond_error(out, error, keep_alive)
}

/// Queue an admission-control refusal: `429 Too Many Requests` with a
/// `Retry-After` hint.
fn respond_overloaded(out: &mut Vec<u8>, message: &str, keep_alive: bool) {
    let trace = ecochip_trace::current_trace();
    let mut headers: Vec<(&str, &str)> = vec![("Retry-After", RETRY_AFTER_SECS)];
    if let Some(trace) = trace.as_deref() {
        headers.push((TRACE_HEADER, trace));
    }
    let _ = http::write_response_with_headers(
        out,
        429,
        "application/json",
        &headers,
        &body(&ErrorResponse {
            error: message.into(),
        }),
        keep_alive,
    );
}

/// Refuse a connection over the `max_connections` bound: best-effort
/// blocking 429 write (bounded by a short timeout), then drop.
fn refuse(state: &ServerState, mut stream: TcpStream) {
    let _ = state; // reserved for future per-refusal narration
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_nodelay(true);
    let mut message = Vec::new();
    respond_overloaded(
        &mut message,
        "server is at its connection limit; retry later",
        false,
    );
    let _ = stream.write_all(&message);
}

/// Route a light request straight onto the connection's response queue.
/// Returns the response status and whether the connection must close
/// regardless of the negotiated keep-alive (the shutdown endpoint).
fn route_light(
    state: &ServerState,
    request: &http::Request,
    out: &mut Vec<u8>,
    keep_alive: bool,
) -> (u16, bool) {
    let status = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => respond(
            out,
            200,
            &HealthResponse {
                status: "ok".into(),
                service: "ecochip-serve".into(),
                jobs: state.service.engine().jobs(),
            },
            keep_alive,
        ),
        ("GET", "/v1/stats") => respond(
            out,
            200,
            &StatsResponse::new(
                state.service.stats(),
                state.service.context().floorplan_entries(),
                state.service.context().manufacturing_entries(),
                state.service.memo_capacity(),
                state.service.context().dirty_entries(),
                crate::api::ServeTotals {
                    requests: state.requests.load(Ordering::Relaxed),
                    points_streamed: state.service.service_stats().sweep_points,
                    chunk: state.service.engine().chunk(),
                    idle_connections: state.metrics.idle_connections(),
                    active_connections: state.metrics.active_connections(),
                    rejected: state.metrics.rejected_total(),
                    uptime_seconds: state.metrics.uptime_seconds(),
                },
                state
                    .metrics
                    .latency_summaries()
                    .into_iter()
                    .map(|summary| RouteLatency {
                        route: summary.route.to_string(),
                        count: summary.count,
                        p50_seconds: summary.p50_seconds,
                        p99_seconds: summary.p99_seconds,
                    })
                    .collect(),
            ),
            keep_alive,
        ),
        ("GET", "/v1/trace") => respond(
            out,
            200,
            &TraceResponse {
                spans: ecochip_trace::recent_spans()
                    .iter()
                    .map(TraceSpan::from)
                    .collect(),
            },
            keep_alive,
        ),
        ("GET", "/v1/testcases") => respond(
            out,
            200,
            &TestcasesResponse {
                testcases: catalog::names(),
            },
            keep_alive,
        ),
        ("GET", "/metrics") => {
            let text = state.metrics.render(&state.service);
            write_traced(
                out,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                keep_alive,
            );
            200
        }
        ("POST", "/v1/estimate") => match estimate(state, &request.body) {
            Ok(response) => respond(out, 200, &response, keep_alive),
            Err(error) => respond_error(out, &error, keep_alive),
        },
        ("POST", "/v1/shutdown") => {
            respond(
                out,
                200,
                &HealthResponse {
                    status: "shutting down".into(),
                    service: "ecochip-serve".into(),
                    jobs: state.service.engine().jobs(),
                },
                false,
            );
            state.trigger_shutdown();
            return (200, true);
        }
        (
            _,
            "/v1/healthz" | "/v1/stats" | "/v1/testcases" | "/v1/estimate" | "/v1/sweep"
            | "/v1/optimize" | "/v1/memo" | "/v1/shutdown" | "/v1/trace" | "/metrics",
        ) => respond(
            out,
            405,
            &ErrorResponse {
                error: format!("method {} not allowed on {}", request.method, request.path),
            },
            keep_alive,
        ),
        (_, path) => respond(
            out,
            404,
            &ErrorResponse {
                error: format!(
                    "unknown path {path:?}; endpoints: /v1/estimate /v1/sweep /v1/optimize \
                     /v1/testcases /v1/memo /v1/healthz /v1/stats /v1/trace /v1/shutdown /metrics"
                ),
            },
            keep_alive,
        ),
    };
    (status, false)
}

/// Route a heavy request on a handler-pool thread, writing the response
/// (streamed for sweeps) directly to the checked-out blocking socket.
fn route_offloaded(
    state: &ServerState,
    request: &http::Request,
    stream: &mut TcpStream,
    keep_alive: bool,
    span: &ecochip_trace::SpanGuard,
) -> u16 {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sweep") => sweep(state, &request.body, stream, keep_alive, span),
        ("POST", "/v1/optimize") => optimize(state, &request.body, stream, keep_alive, span),
        ("POST", "/v1/estimate") => match estimate_batch(state, &request.body) {
            Ok(items) => respond(stream, 200, &items, keep_alive),
            Err(error) => respond_error(stream, &error, keep_alive),
        },
        ("GET", "/v1/memo") => match state.service.export_memo_json() {
            Ok(json) => {
                write_traced(stream, 200, "application/json", json.as_bytes(), keep_alive);
                200
            }
            Err(error) => respond_error(stream, &ServeError::Estimator(error), keep_alive),
        },
        ("POST", "/v1/memo") => match import_memo(state, &request.body) {
            Ok(response) => respond(stream, 200, &response, keep_alive),
            Err(error) => respond_error(stream, &error, keep_alive),
        },
        _ => respond(
            stream,
            500,
            &ErrorResponse {
                error: "request misrouted to the handler pool".into(),
            },
            false,
        ),
    }
}

/// Handle `POST /v1/memo`: absorb a peer's exported memo into the warm
/// service, validated by the stale-memo machinery (wrong fingerprint or
/// format version → typed 400, nothing absorbed).
fn import_memo(state: &ServerState, request_body: &[u8]) -> Result<MemoImportResponse, ServeError> {
    let json = std::str::from_utf8(request_body)
        .map_err(|_| ServeError::Api("memo body is not valid UTF-8".into()))?;
    let imported = state.service.import_memo_json(json)?;
    Ok(MemoImportResponse {
        imported_floorplans: imported.floorplans,
        imported_manufacturing: imported.manufacturing,
        floorplan_entries: state.service.context().floorplan_entries(),
        manufacturing_entries: state.service.context().manufacturing_entries(),
    })
}

fn parse_body<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ServeError::Api("request body is not valid UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| ServeError::Api(e.to_string()))
}

fn estimate(state: &ServerState, request_body: &[u8]) -> Result<EstimateResponse, ServeError> {
    let request: EstimateRequest = parse_body(request_body)?;
    estimate_one(state, &request)
}

/// Estimate one resolved request — shared by the single and batch forms of
/// `POST /v1/estimate` so both produce identical bytes for the same design.
fn estimate_one(
    state: &ServerState,
    request: &EstimateRequest,
) -> Result<EstimateResponse, ServeError> {
    let system = request.resolve(&state.db)?;
    let report = state.service.estimate(&system)?;
    Ok(EstimateResponse {
        system: system.name.clone(),
        embodied_fraction: report.embodied_fraction(),
        report,
    })
}

/// Handle the batch form of `POST /v1/estimate`: a JSON array of requests,
/// estimated in order within one HTTP round-trip. Each element resolves to
/// its own response or its own error object (the same `{"error": …}` body
/// the request would have produced on its own) — one bad item never fails
/// the batch. Only a malformed top-level body is a request-level error.
fn estimate_batch(
    state: &ServerState,
    request_body: &[u8],
) -> Result<Vec<BatchEstimateItem>, ServeError> {
    let requests: Vec<EstimateRequest> = parse_body(request_body)?;
    Ok(requests
        .iter()
        .map(|request| match estimate_one(state, request) {
            Ok(response) => BatchEstimateItem::Ok(response),
            Err(error) => BatchEstimateItem::Err(ErrorResponse {
                error: error.to_string(),
            }),
        })
        .collect())
}

/// The streaming sink behind `POST /v1/sweep`: every point is encoded into
/// one reusable line buffer (no per-point `String` allocation), and a whole
/// engine batch is flushed as a single transfer chunk — one buffered write
/// per chunk of K points instead of per point. NDJSON concatenates the
/// `\n`-terminated lines; `ECOF` frames the same lines with a binary length
/// prefix (see [`crate::frames`]), so both encodings carry byte-identical
/// canonical lines.
struct SweepStreamSink<'a, W: Write> {
    chunked: &'a mut http::ChunkedWriter<W>,
    format: SweepFormat,
    /// Per-request stage clocks (serialize/emit recorded here; the engine
    /// records estimate into the same accumulator).
    timings: &'a StageTimings,
    /// Reusable per-line JSON encode buffer.
    line: String,
    /// Reusable per-batch wire buffer (lines or frames).
    wire: Vec<u8>,
    /// Whether the `ECOF` stream header has been sent.
    header_sent: bool,
    /// Payload bytes put on the wire (for the per-format counter).
    bytes: u64,
}

impl<W: Write> SweepStreamSink<'_, W> {
    /// Encode one point onto `self.wire` in the negotiated format.
    fn encode(&mut self, point: &SweepPoint) -> Result<(), EcoChipError> {
        let started = Instant::now();
        self.line.clear();
        serde_json::to_string_into(point, &mut self.line)
            .map_err(|e| EcoChipError::Io(format!("serializing sweep point: {e}")))?;
        match self.format {
            SweepFormat::NdJson => {
                self.wire.extend_from_slice(self.line.as_bytes());
                self.wire.push(b'\n');
            }
            SweepFormat::Frames => frames::push_frame(&mut self.wire, &self.line),
        }
        self.timings.record(Stage::Serialize, started.elapsed());
        Ok(())
    }

    /// Send everything buffered on `self.wire` as one transfer chunk.
    fn flush_wire(&mut self) -> Result<(), EcoChipError> {
        if self.wire.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        self.bytes += self.wire.len() as u64;
        let result = self.chunked.chunk(&self.wire);
        self.wire.clear();
        self.timings.record(Stage::Emit, started.elapsed());
        result.map_err(|e| EcoChipError::Io(format!("streaming sweep point: {e}")))
    }

    /// Queue the `ECOF` stream header ahead of the first frame.
    fn prepare(&mut self) {
        if self.format == SweepFormat::Frames && !self.header_sent {
            self.wire.extend_from_slice(&frames::header());
            self.header_sent = true;
        }
    }

    /// Send the in-band terminal error object (the same `{"error": …}`
    /// line NDJSON clients split off the stream, framed when negotiated).
    fn emit_error(&mut self, error: &EcoChipError) {
        self.prepare();
        match serde_json::to_string(&ErrorResponse {
            error: error.to_string(),
        }) {
            Ok(line) => match self.format {
                SweepFormat::NdJson => {
                    self.wire.extend_from_slice(line.as_bytes());
                    self.wire.push(b'\n');
                }
                SweepFormat::Frames => frames::push_frame(&mut self.wire, &line),
            },
            Err(error) => {
                // The wire types cannot fail serialization; surfaced for
                // completeness, mirroring `body`.
                let fallback = format!("{{\"error\":\"serializing response: {error}\"}}");
                match self.format {
                    SweepFormat::NdJson => {
                        self.wire.extend_from_slice(fallback.as_bytes());
                        self.wire.push(b'\n');
                    }
                    SweepFormat::Frames => frames::push_frame(&mut self.wire, &fallback),
                }
            }
        }
        let _ = self.flush_wire();
    }
}

impl<W: Write> SweepSink for SweepStreamSink<'_, W> {
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
        self.prepare();
        self.encode(&point)?;
        self.flush_wire()
    }

    fn accept_batch(&mut self, points: Vec<SweepPoint>) -> Result<(), EcoChipError> {
        self.prepare();
        for point in &points {
            self.encode(point)?;
        }
        self.flush_wire()
    }
}

/// Handle `POST /v1/sweep`: resolve, then stream points over chunked
/// transfer-encoding — NDJSON by default, `ECOF` binary frames when the
/// request negotiates `"format":"frames"`. Each line is produced by the
/// same serializer as the CLI's `--stream jsonl`, so the byte stream (after
/// frame decoding, when framed) diffs clean against an in-process run.
/// Returns the response status for metrics.
fn sweep(
    state: &ServerState,
    request_body: &[u8],
    writer: &mut TcpStream,
    keep_alive: bool,
    span: &ecochip_trace::SpanGuard,
) -> u16 {
    let timings = StageTimings::new();
    let decode_started = Instant::now();
    let resolved = parse_body::<SweepRequest>(request_body).and_then(|request| {
        let format = request.negotiated_format()?;
        let (spec, slice) = request.resolve(&state.db)?;
        Ok((format, spec, slice))
    });
    let (format, spec, slice) = match resolved {
        Ok(resolved) => resolved,
        Err(error) => return respond_error(writer, &error, keep_alive),
    };
    // Validate an explicit range before committing to the 200 status line,
    // so a malformed resume request gets a clean 400 instead of an in-band
    // stream error. The bounds rule is the engine's (`validate_case_range`),
    // checked early here.
    if let SweepSlice::Range(range) = &slice {
        let checked = spec
            .try_len()
            .and_then(|total| ecochip_core::sweep::validate_case_range(total, range));
        if let Err(error) = checked {
            return respond_error(writer, &ServeError::Estimator(error), keep_alive);
        }
    }
    timings.record(Stage::Decode, decode_started.elapsed());
    let trace = ecochip_trace::current_trace();
    let mut extra_headers: Vec<(&str, &str)> = Vec::new();
    if let Some(trace) = trace.as_deref() {
        extra_headers.push((TRACE_HEADER, trace));
    }
    let mut chunked = match http::start_chunked_with_headers(
        &mut *writer,
        200,
        format.content_type(),
        &extra_headers,
        keep_alive,
    ) {
        Ok(chunked) => chunked,
        // Peer gone before any response byte was written: record the
        // nginx-convention 499 ("client closed request") so aborted
        // sweeps don't count as fast successes in the metrics.
        Err(_) => return 499,
    };
    let started = Instant::now();
    let mut sink = SweepStreamSink {
        chunked: &mut chunked,
        format,
        timings: &timings,
        line: String::new(),
        wire: Vec::new(),
        header_sent: false,
        bytes: 0,
    };
    let result = match slice {
        SweepSlice::Shard(shard) => {
            state
                .service
                .run_streaming_timed(&spec, shard, Some(&timings), &mut sink)
        }
        SweepSlice::Range(range) => {
            state
                .service
                .run_streaming_range_timed(&spec, range, Some(&timings), &mut sink)
        }
    };
    match result {
        Ok(_) => {
            // A zero-point framed sweep still sends the stream header so
            // clients can tell "empty stream" from "wrong format".
            sink.prepare();
            let _ = sink.flush_wire();
        }
        Err(error) => {
            // The status line is long gone; signal the failure in-band with
            // a terminal error object (no valid point line starts with
            // `{"error"`) and end the stream cleanly so clients detect it.
            sink.emit_error(&error);
        }
    }
    let bytes = sink.bytes;
    // Surface the accumulated stage clocks: once per request per stage
    // into the Prometheus histograms, plus synthetic child spans under
    // this request's span so `/v1/trace` carries the breakdown. Stage
    // spans hold *accumulated* worker time (estimate can exceed wall
    // clock on a parallel sweep); consumers nest by parent linkage, not
    // interval containment.
    for stage in Stage::ALL {
        if timings.count(stage) == 0 {
            continue;
        }
        let seconds = timings.seconds(stage);
        state.metrics.observe_stage(stage, seconds);
        ecochip_trace::record_span(
            format!("stage:{}", stage.label()),
            trace.clone(),
            Some(span.id()),
            span.start_unix(),
            seconds,
        );
    }
    // Account the stream before the terminal chunk: a client that sees
    // end-of-stream and immediately polls `/metrics` (answered on the
    // event loop, not this thread) must find the counters already bumped.
    state
        .metrics
        .sweep_stream_finished(format, bytes, started.elapsed());
    let _ = chunked.finish();
    200
}

/// Handle `POST /v1/optimize`: resolve, then run the requested search
/// method streaming [`opt::OptEvent`] NDJSON lines over chunked
/// transfer-encoding — every incumbent/frontier improvement as it is
/// found, then the terminal `done` event with the full frontier. Each
/// line is produced by the same serializer as the CLI's `--optimize`, so
/// seeded runs diff clean across front ends. Returns the response status
/// for metrics.
fn optimize(
    state: &ServerState,
    request_body: &[u8],
    writer: &mut TcpStream,
    keep_alive: bool,
    span: &ecochip_trace::SpanGuard,
) -> u16 {
    let timings = StageTimings::new();
    let decode_started = Instant::now();
    let resolved =
        parse_body::<OptimizeRequest>(request_body).and_then(|request| request.resolve(&state.db));
    let (spec, shard, config) = match resolved {
        Ok(resolved) => resolved,
        Err(error) => return respond_error(writer, &error, keep_alive),
    };
    timings.record(Stage::Decode, decode_started.elapsed());
    let trace = ecochip_trace::current_trace();
    let mut extra_headers: Vec<(&str, &str)> = Vec::new();
    if let Some(trace) = trace.as_deref() {
        extra_headers.push((TRACE_HEADER, trace));
    }
    let mut chunked = match http::start_chunked_with_headers(
        &mut *writer,
        200,
        "application/x-ndjson",
        &extra_headers,
        keep_alive,
    ) {
        Ok(chunked) => chunked,
        // Peer gone before any response byte was written (see `sweep`).
        Err(_) => return 499,
    };
    let result = {
        // Improvements are sparse (unlike sweep points), so each event is
        // flushed as its own transfer chunk for responsive streaming; the
        // line buffer is still reused across events.
        let chunked = &mut chunked;
        let timings = &timings;
        let mut line = String::new();
        opt::optimize(
            state.service.estimator(),
            state.service.engine(),
            &spec,
            shard,
            state.service.context(),
            Some(timings),
            &config,
            move |event: &opt::OptEvent| {
                let started = Instant::now();
                line.clear();
                serde_json::to_string_into(event, &mut line)
                    .map_err(|e| EcoChipError::Io(format!("serializing optimize event: {e}")))?;
                line.push('\n');
                timings.record(Stage::Serialize, started.elapsed());
                let started = Instant::now();
                let sent = chunked.chunk(line.as_bytes());
                timings.record(Stage::Emit, started.elapsed());
                sent.map_err(|e| EcoChipError::Io(format!("streaming optimize event: {e}")))
            },
        )
    };
    if let Err(error) = result {
        // The status line is long gone; signal the failure in-band with a
        // terminal error object (no event line starts with `{"error"`) and
        // end the stream cleanly so clients detect it.
        let mut line = serde_json::to_string(&ErrorResponse {
            error: error.to_string(),
        })
        .unwrap_or_else(|e| format!("{{\"error\":\"serializing response: {e}\"}}"));
        line.push('\n');
        let _ = chunked.chunk(line.as_bytes());
    }
    // Surface the accumulated stage clocks exactly as `sweep` does.
    for stage in Stage::ALL {
        if timings.count(stage) == 0 {
            continue;
        }
        let seconds = timings.seconds(stage);
        state.metrics.observe_stage(stage, seconds);
        ecochip_trace::record_span(
            format!("stage:{}", stage.label()),
            trace.clone(),
            Some(span.id()),
            span.start_unix(),
            seconds,
        );
    }
    let _ = chunked.finish();
    200
}
