//! The HTTP server: one warm [`EcoChipService`] shared across a fixed pool
//! of connection-handler threads.
//!
//! Architecture: an accept loop pushes connections into a channel drained
//! by `threads` handler threads (the sweep engine parallelises *within* a
//! request too, with `jobs` workers per sweep). All handlers share one
//! [`EcoChipService`], so the floorplan/manufacturing memo warms up across
//! requests and clients benefit from each other's work — while every
//! response stays bit-for-bit identical to a cold in-process run.
//!
//! Connections are persistent: each handler thread runs a per-connection
//! request loop that serves requests until the peer asks for `Connection:
//! close`, the idle timeout expires between requests, the
//! requests-per-connection bound is reached, or shutdown begins. The idle
//! wait polls in short slices so a fleet-wide shutdown never hangs behind
//! an idle keep-alive peer.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) sets a flag and nudges the accept loop with
//! a wake-up connection; in-flight requests finish (the connection loops
//! observe the flag and close), and only after every handler thread has
//! drained is the memo saved — the final snapshot therefore always contains
//! whatever an in-flight sweep inserted, and cannot race a mid-sweep
//! autosave.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use ecochip_core::sweep::{SweepEngine, SweepPoint, SweepSink};
use ecochip_core::{EcoChip, EcoChipError, EcoChipService, EstimatorConfig};
use ecochip_techdb::TechDb;
use ecochip_testcases::catalog;

use crate::api::{
    BatchEstimateItem, ErrorResponse, EstimateRequest, EstimateResponse, HealthResponse,
    MemoImportResponse, StatsResponse, SweepFormat, SweepRequest, SweepSlice, TestcasesResponse,
};
use crate::frames;
use crate::http;
use crate::metrics::{self, Metrics};
use crate::ServeError;

/// Per-request socket timeout: a peer stalling mid-request (or mid-read of
/// a response) cannot pin a handler thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on the idle-wait poll slice: how long a parked keep-alive
/// connection can delay noticing the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// Configuration of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Sweep-engine workers per request (`None`: `ECOCHIP_JOBS`, then the
    /// machine's available parallelism).
    pub jobs: Option<usize>,
    /// Case indices a sweep worker claims per queue round-trip (`None`:
    /// `ECOCHIP_CHUNK`, then the engine default).
    pub chunk: Option<usize>,
    /// Connection-handler threads (each serves one request at a time).
    pub threads: usize,
    /// Technology database (`None` uses the built-in defaults).
    pub techdb: Option<TechDb>,
    /// Load the memo from this file at startup (if present and
    /// fingerprint-compatible) and save it on shutdown.
    pub memo_file: Option<PathBuf>,
    /// Bound the memo to this many entries per cache (LRU eviction).
    pub memo_max_entries: Option<usize>,
    /// Autosave the memo whenever this many new entries accumulated
    /// (requires `memo_file`).
    pub memo_save_every: Option<usize>,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (keeps a single immortal peer from pinning a handler thread
    /// forever; clamped to at least 1).
    pub max_requests_per_connection: usize,
    /// Narrate memo loads/saves to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            jobs: None,
            chunk: None,
            threads: 8,
            techdb: None,
            memo_file: None,
            memo_max_entries: None,
            memo_save_every: None,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            verbose: false,
        }
    }
}

/// Counters and flags shared by every handler thread.
struct ServerState {
    service: EcoChipService,
    db: TechDb,
    addr: SocketAddr,
    memo_file: Option<PathBuf>,
    idle_timeout: Duration,
    max_requests_per_connection: usize,
    verbose: bool,
    shutdown: AtomicBool,
    requests: AtomicU64,
    metrics: Metrics,
}

impl ServerState {
    /// Persist the memo if a memo file is configured (used at shutdown).
    fn save_memo(&self) {
        let Some(path) = &self.memo_file else { return };
        if let Err(error) = self.service.save_memo_verbose(path, self.verbose) {
            eprintln!("warning: saving memo {}: {error}", path.display());
        }
    }

    /// Trip the shutdown flag and nudge the accept loop awake.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a throwaway connection
        // makes it re-check the flag. A wildcard bind (0.0.0.0 / ::) is not
        // connectable on every platform, so aim the wake-up at loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(if wake.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        let _ = TcpStream::connect(wake);
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("addr", &self.addr)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks; [`Server::spawn`]
/// runs it on a background thread and returns a [`ServerHandle`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    threads: usize,
}

impl Server {
    /// Bind the listen socket and warm up the service (estimator, memo
    /// load, capacity bound, autosave).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidAddr`] when `config.addr` does not
    /// resolve and [`ServeError::Io`] when binding fails. A stale or
    /// malformed memo file is *not* an error — the server starts cold and
    /// warns on stderr, matching the CLI.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        let mut addrs = config
            .addr
            .to_socket_addrs()
            .map_err(|e| ServeError::InvalidAddr(format!("{}: {e}", config.addr)))?;
        let addr = addrs.next().ok_or_else(|| {
            ServeError::InvalidAddr(format!("{} resolves to nothing", config.addr))
        })?;
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("binding {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("reading bound address: {e}")))?;

        let db = config.techdb.clone().unwrap_or_default();
        let estimator = EcoChip::new(EstimatorConfig::builder().techdb(db.clone()).build());
        let engine = SweepEngine::with_optional_jobs(config.jobs).with_optional_chunk(config.chunk);
        let mut service = EcoChipService::with_engine(estimator, engine);
        service.set_memo_capacity(config.memo_max_entries);
        if let Some(path) = &config.memo_file {
            service.load_memo_lenient(path, config.verbose);
            if let Some(every) = config.memo_save_every {
                service.save_memo_every(path, every);
            }
        }

        Ok(Self {
            listener,
            state: Arc::new(ServerState {
                service,
                db,
                addr,
                memo_file: config.memo_file.clone(),
                idle_timeout: config.idle_timeout.max(Duration::from_millis(1)),
                max_requests_per_connection: config.max_requests_per_connection.max(1),
                verbose: config.verbose,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                metrics: Metrics::new(),
            }),
            threads: config.threads.max(1),
        })
    }

    /// The bound listen address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The effective sweep chunk size (points claimed per worker grab),
    /// after `ServeConfig::chunk` / `ECOCHIP_CHUNK` / default resolution.
    pub fn engine_chunk(&self) -> usize {
        self.state.service.engine().chunk()
    }

    /// Serve until shut down (`POST /v1/shutdown` or
    /// [`ServerHandle::shutdown`]), then save the memo and return.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] only for accept-loop failures; individual
    /// connection errors are answered with HTTP error responses (or dropped
    /// when the peer is gone) and never stop the server.
    pub fn run(self) -> Result<(), ServeError> {
        let state = &self.state;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Mutex::new(receiver);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| loop {
                    let connection = {
                        let receiver = receiver.lock().expect("connection queue");
                        receiver.recv()
                    };
                    match connection {
                        Ok(stream) => handle_connection(state, stream),
                        Err(_) => break, // accept loop ended
                    }
                });
            }
            for connection in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match connection {
                    Ok(stream) => {
                        // The pool threads only exit when the sender drops,
                        // so this send cannot fail while we are looping.
                        let _ = sender.send(stream);
                    }
                    Err(error) => {
                        eprintln!("warning: accepting connection: {error}");
                    }
                }
            }
            drop(sender);
        });
        // The scope has joined every handler thread, so all in-flight
        // requests (including streaming sweeps and their incremental
        // autosaves) are fully drained: this final save is strictly ordered
        // after the last insert and cannot race a mid-sweep autosave or
        // publish a snapshot missing in-flight entries.
        state.save_memo();
        Ok(())
    }

    /// Run the server on a background thread (for tests, examples and
    /// embedding) and return a handle that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { state, thread }
    }
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<Result<(), ServeError>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Stop accepting, let in-flight requests finish, save the memo and
    /// join the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server loop's exit error, or [`ServeError::Io`] when
    /// the server thread panicked.
    pub fn shutdown(self) -> Result<(), ServeError> {
        self.state.trigger_shutdown();
        self.thread
            .join()
            .map_err(|_| ServeError::Io("server thread panicked".into()))?
    }
}

/// Serialize a response body; the wire types cannot fail serialization, so
/// a failure is a programming error surfaced as a 500 body.
fn body<T: Serialize>(value: &T) -> Vec<u8> {
    match serde_json::to_string(value) {
        Ok(mut json) => {
            json.push('\n');
            json.into_bytes()
        }
        Err(error) => format!("{{\"error\":\"serializing response: {error}\"}}\n").into_bytes(),
    }
}

/// Write a JSON response, returning the status for metrics. The peer may
/// already be gone; nothing useful to do about a write failure.
fn respond<T: Serialize>(stream: &mut TcpStream, status: u16, value: &T, keep_alive: bool) -> u16 {
    let _ = http::write_response(stream, status, "application/json", &body(value), keep_alive);
    status
}

fn respond_error(stream: &mut TcpStream, error: &ServeError, keep_alive: bool) -> u16 {
    let status = match error {
        ServeError::Io(_) => 500,
        _ => 400,
    };
    respond(
        stream,
        status,
        &ErrorResponse {
            error: error.to_string(),
        },
        keep_alive,
    )
}

/// Why the idle wait between requests ended.
enum Wait {
    /// Request bytes are buffered; go parse them.
    Ready,
    /// Peer gone, idle timeout expired, shutdown began, or the socket
    /// failed — close the connection.
    Close,
}

/// Park between requests until the peer sends the next request head, it
/// disconnects, the idle timeout expires, or shutdown begins. Polls in
/// [`SHUTDOWN_POLL`] slices so a fleet-wide shutdown is never stuck behind
/// an idle keep-alive connection.
fn wait_for_request(state: &ServerState, reader: &mut BufReader<TcpStream>) -> Wait {
    let poll = state.idle_timeout.min(SHUTDOWN_POLL);
    let mut idle = Duration::ZERO;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return Wait::Close;
        }
        if reader.get_ref().set_read_timeout(Some(poll)).is_err() {
            return Wait::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return Wait::Close, // peer closed
            Ok(_) => {
                // Request bytes arrived (nothing consumed); switch to the
                // per-request timeout for the actual parse.
                let _ = reader.get_ref().set_read_timeout(Some(SOCKET_TIMEOUT));
                return Wait::Ready;
            }
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle += poll;
                if idle >= state.idle_timeout {
                    return Wait::Close;
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Wait::Close,
        }
    }
}

/// Serve one connection: a keep-alive request loop. Each iteration waits
/// for the next request (bounded by the idle timeout and the shutdown
/// flag), parses and routes it, and records latency/status metrics; the
/// loop ends when the peer asks for `Connection: close`, the
/// requests-per-connection bound is hit, shutdown begins, or the socket
/// fails.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    state.metrics.connection_opened();
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    // Responses are written as single buffered messages (and NDJSON chunks
    // must reach the peer as they are evaluated), so Nagle's algorithm only
    // adds delayed-ACK stalls to the keep-alive ping-pong.
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    while let Wait::Ready = wait_for_request(state, &mut reader) {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break, // probe/wake-up connection
            Err(error) => {
                // The request framing is unreliable from here on; answer
                // and close.
                state.metrics.request_started();
                let started = Instant::now();
                let status = respond_error(&mut writer, &error, false);
                state.metrics.observe("other", status, started.elapsed());
                break;
            }
        };
        served += 1;
        state.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive
            && served < state.max_requests_per_connection
            && !state.shutdown.load(Ordering::SeqCst);

        let route = metrics::route_label_for(&request.method, &request.path, &request.body);
        state.metrics.request_started();
        let started = Instant::now();
        let (status, close_after) = route_request(state, &request, &mut writer, keep_alive);
        state.metrics.observe(route, status, started.elapsed());
        if close_after || !keep_alive {
            break;
        }
    }
}

/// Route one parsed request. Returns the response status and whether the
/// connection must close regardless of the negotiated keep-alive (the
/// shutdown endpoint).
fn route_request(
    state: &ServerState,
    request: &http::Request,
    writer: &mut TcpStream,
    keep_alive: bool,
) -> (u16, bool) {
    let status = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => respond(
            writer,
            200,
            &HealthResponse {
                status: "ok".into(),
                service: "ecochip-serve".into(),
                jobs: state.service.engine().jobs(),
            },
            keep_alive,
        ),
        ("GET", "/v1/stats") => respond(
            writer,
            200,
            &StatsResponse::new(
                state.service.stats(),
                state.service.context().floorplan_entries(),
                state.service.context().manufacturing_entries(),
                state.service.memo_capacity(),
                state.service.context().dirty_entries(),
                crate::api::ServeTotals {
                    requests: state.requests.load(Ordering::Relaxed),
                    points_streamed: state.service.service_stats().sweep_points,
                    chunk: state.service.engine().chunk(),
                },
            ),
            keep_alive,
        ),
        ("GET", "/v1/testcases") => respond(
            writer,
            200,
            &TestcasesResponse {
                testcases: catalog::names(),
            },
            keep_alive,
        ),
        ("GET", "/metrics") => {
            let text = state.metrics.render(&state.service);
            let _ = http::write_response(
                writer,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                keep_alive,
            );
            200
        }
        ("GET", "/v1/memo") => match state.service.export_memo_json() {
            Ok(json) => {
                let _ = http::write_response(
                    writer,
                    200,
                    "application/json",
                    json.as_bytes(),
                    keep_alive,
                );
                200
            }
            Err(error) => respond_error(writer, &ServeError::Estimator(error), keep_alive),
        },
        ("POST", "/v1/memo") => match import_memo(state, &request.body) {
            Ok(response) => respond(writer, 200, &response, keep_alive),
            Err(error) => respond_error(writer, &error, keep_alive),
        },
        ("POST", "/v1/estimate") if metrics::is_batch_estimate_body(&request.body) => {
            match estimate_batch(state, &request.body) {
                Ok(items) => respond(writer, 200, &items, keep_alive),
                Err(error) => respond_error(writer, &error, keep_alive),
            }
        }
        ("POST", "/v1/estimate") => match estimate(state, &request.body) {
            Ok(response) => respond(writer, 200, &response, keep_alive),
            Err(error) => respond_error(writer, &error, keep_alive),
        },
        ("POST", "/v1/sweep") => sweep(state, &request.body, writer, keep_alive),
        ("POST", "/v1/shutdown") => {
            respond(
                writer,
                200,
                &HealthResponse {
                    status: "shutting down".into(),
                    service: "ecochip-serve".into(),
                    jobs: state.service.engine().jobs(),
                },
                false,
            );
            let _ = writer.flush();
            state.trigger_shutdown();
            return (200, true);
        }
        (
            _,
            "/v1/healthz" | "/v1/stats" | "/v1/testcases" | "/v1/estimate" | "/v1/sweep"
            | "/v1/memo" | "/v1/shutdown" | "/metrics",
        ) => respond(
            writer,
            405,
            &ErrorResponse {
                error: format!("method {} not allowed on {}", request.method, request.path),
            },
            keep_alive,
        ),
        (_, path) => respond(
            writer,
            404,
            &ErrorResponse {
                error: format!(
                    "unknown path {path:?}; endpoints: /v1/estimate /v1/sweep /v1/testcases \
                     /v1/memo /v1/healthz /v1/stats /v1/shutdown /metrics"
                ),
            },
            keep_alive,
        ),
    };
    (status, false)
}

/// Handle `POST /v1/memo`: absorb a peer's exported memo into the warm
/// service, validated by the stale-memo machinery (wrong fingerprint or
/// format version → typed 400, nothing absorbed).
fn import_memo(state: &ServerState, request_body: &[u8]) -> Result<MemoImportResponse, ServeError> {
    let json = std::str::from_utf8(request_body)
        .map_err(|_| ServeError::Api("memo body is not valid UTF-8".into()))?;
    let imported = state.service.import_memo_json(json)?;
    Ok(MemoImportResponse {
        imported_floorplans: imported.floorplans,
        imported_manufacturing: imported.manufacturing,
        floorplan_entries: state.service.context().floorplan_entries(),
        manufacturing_entries: state.service.context().manufacturing_entries(),
    })
}

fn parse_body<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ServeError::Api("request body is not valid UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| ServeError::Api(e.to_string()))
}

fn estimate(state: &ServerState, request_body: &[u8]) -> Result<EstimateResponse, ServeError> {
    let request: EstimateRequest = parse_body(request_body)?;
    estimate_one(state, &request)
}

/// Estimate one resolved request — shared by the single and batch forms of
/// `POST /v1/estimate` so both produce identical bytes for the same design.
fn estimate_one(
    state: &ServerState,
    request: &EstimateRequest,
) -> Result<EstimateResponse, ServeError> {
    let system = request.resolve(&state.db)?;
    let report = state.service.estimate(&system)?;
    Ok(EstimateResponse {
        system: system.name.clone(),
        embodied_fraction: report.embodied_fraction(),
        report,
    })
}

/// Handle the batch form of `POST /v1/estimate`: a JSON array of requests,
/// estimated in order within one HTTP round-trip. Each element resolves to
/// its own response or its own error object (the same `{"error": …}` body
/// the request would have produced on its own) — one bad item never fails
/// the batch. Only a malformed top-level body is a request-level error.
fn estimate_batch(
    state: &ServerState,
    request_body: &[u8],
) -> Result<Vec<BatchEstimateItem>, ServeError> {
    let requests: Vec<EstimateRequest> = parse_body(request_body)?;
    Ok(requests
        .iter()
        .map(|request| match estimate_one(state, request) {
            Ok(response) => BatchEstimateItem::Ok(response),
            Err(error) => BatchEstimateItem::Err(ErrorResponse {
                error: error.to_string(),
            }),
        })
        .collect())
}

/// The streaming sink behind `POST /v1/sweep`: every point is encoded into
/// one reusable line buffer (no per-point `String` allocation), and a whole
/// engine batch is flushed as a single transfer chunk — one buffered write
/// per chunk of K points instead of per point. NDJSON concatenates the
/// `\n`-terminated lines; `ECOF` frames the same lines with a binary length
/// prefix (see [`crate::frames`]), so both encodings carry byte-identical
/// canonical lines.
struct SweepStreamSink<'a, W: Write> {
    chunked: &'a mut http::ChunkedWriter<W>,
    format: SweepFormat,
    /// Reusable per-line JSON encode buffer.
    line: String,
    /// Reusable per-batch wire buffer (lines or frames).
    wire: Vec<u8>,
    /// Whether the `ECOF` stream header has been sent.
    header_sent: bool,
    /// Payload bytes put on the wire (for the per-format counter).
    bytes: u64,
}

impl<W: Write> SweepStreamSink<'_, W> {
    /// Encode one point onto `self.wire` in the negotiated format.
    fn encode(&mut self, point: &SweepPoint) -> Result<(), EcoChipError> {
        self.line.clear();
        serde_json::to_string_into(point, &mut self.line)
            .map_err(|e| EcoChipError::Io(format!("serializing sweep point: {e}")))?;
        match self.format {
            SweepFormat::NdJson => {
                self.wire.extend_from_slice(self.line.as_bytes());
                self.wire.push(b'\n');
            }
            SweepFormat::Frames => frames::push_frame(&mut self.wire, &self.line),
        }
        Ok(())
    }

    /// Send everything buffered on `self.wire` as one transfer chunk.
    fn flush_wire(&mut self) -> Result<(), EcoChipError> {
        if self.wire.is_empty() {
            return Ok(());
        }
        self.bytes += self.wire.len() as u64;
        let result = self.chunked.chunk(&self.wire);
        self.wire.clear();
        result.map_err(|e| EcoChipError::Io(format!("streaming sweep point: {e}")))
    }

    /// Queue the `ECOF` stream header ahead of the first frame.
    fn prepare(&mut self) {
        if self.format == SweepFormat::Frames && !self.header_sent {
            self.wire.extend_from_slice(&frames::header());
            self.header_sent = true;
        }
    }

    /// Send the in-band terminal error object (the same `{"error": …}`
    /// line NDJSON clients split off the stream, framed when negotiated).
    fn emit_error(&mut self, error: &EcoChipError) {
        self.prepare();
        match serde_json::to_string(&ErrorResponse {
            error: error.to_string(),
        }) {
            Ok(line) => match self.format {
                SweepFormat::NdJson => {
                    self.wire.extend_from_slice(line.as_bytes());
                    self.wire.push(b'\n');
                }
                SweepFormat::Frames => frames::push_frame(&mut self.wire, &line),
            },
            Err(error) => {
                // The wire types cannot fail serialization; surfaced for
                // completeness, mirroring `body`.
                let fallback = format!("{{\"error\":\"serializing response: {error}\"}}");
                match self.format {
                    SweepFormat::NdJson => {
                        self.wire.extend_from_slice(fallback.as_bytes());
                        self.wire.push(b'\n');
                    }
                    SweepFormat::Frames => frames::push_frame(&mut self.wire, &fallback),
                }
            }
        }
        let _ = self.flush_wire();
    }
}

impl<W: Write> SweepSink for SweepStreamSink<'_, W> {
    fn emit(&mut self, point: SweepPoint) -> Result<(), EcoChipError> {
        self.prepare();
        self.encode(&point)?;
        self.flush_wire()
    }

    fn accept_batch(&mut self, points: Vec<SweepPoint>) -> Result<(), EcoChipError> {
        self.prepare();
        for point in &points {
            self.encode(point)?;
        }
        self.flush_wire()
    }
}

/// Handle `POST /v1/sweep`: resolve, then stream points over chunked
/// transfer-encoding — NDJSON by default, `ECOF` binary frames when the
/// request negotiates `"format":"frames"`. Each line is produced by the
/// same serializer as the CLI's `--stream jsonl`, so the byte stream (after
/// frame decoding, when framed) diffs clean against an in-process run.
/// Returns the response status for metrics.
fn sweep(
    state: &ServerState,
    request_body: &[u8],
    writer: &mut TcpStream,
    keep_alive: bool,
) -> u16 {
    let resolved = parse_body::<SweepRequest>(request_body).and_then(|request| {
        let format = request.negotiated_format()?;
        let (spec, slice) = request.resolve(&state.db)?;
        Ok((format, spec, slice))
    });
    let (format, spec, slice) = match resolved {
        Ok(resolved) => resolved,
        Err(error) => return respond_error(writer, &error, keep_alive),
    };
    // Validate an explicit range before committing to the 200 status line,
    // so a malformed resume request gets a clean 400 instead of an in-band
    // stream error. The bounds rule is the engine's (`validate_case_range`),
    // checked early here.
    if let SweepSlice::Range(range) = &slice {
        let checked = spec
            .try_len()
            .and_then(|total| ecochip_core::sweep::validate_case_range(total, range));
        if let Err(error) = checked {
            return respond_error(writer, &ServeError::Estimator(error), keep_alive);
        }
    }
    let mut chunked =
        match http::start_chunked(&mut *writer, 200, format.content_type(), keep_alive) {
            Ok(chunked) => chunked,
            // Peer gone before any response byte was written: record the
            // nginx-convention 499 ("client closed request") so aborted
            // sweeps don't count as fast successes in the metrics.
            Err(_) => return 499,
        };
    let started = Instant::now();
    let mut sink = SweepStreamSink {
        chunked: &mut chunked,
        format,
        line: String::new(),
        wire: Vec::new(),
        header_sent: false,
        bytes: 0,
    };
    let result = match slice {
        SweepSlice::Shard(shard) => state.service.run_streaming(&spec, shard, &mut sink),
        SweepSlice::Range(range) => state.service.run_streaming_range(&spec, range, &mut sink),
    };
    match result {
        Ok(_) => {
            // A zero-point framed sweep still sends the stream header so
            // clients can tell "empty stream" from "wrong format".
            sink.prepare();
            let _ = sink.flush_wire();
        }
        Err(error) => {
            // The status line is long gone; signal the failure in-band with
            // a terminal error object (no valid point line starts with
            // `{"error"`) and end the stream cleanly so clients detect it.
            sink.emit_error(&error);
        }
    }
    let bytes = sink.bytes;
    let _ = chunked.finish();
    state
        .metrics
        .sweep_stream_finished(format, bytes, started.elapsed());
    200
}
