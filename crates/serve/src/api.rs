//! The JSON wire types of the estimation service.
//!
//! Requests name a design either by built-in test case
//! (`{"testcase": "ga102"}`, resolved through
//! [`ecochip_testcases::catalog`]) or inline
//! (`{"system": { … }}`, the same JSON schema
//! [`ecochip_testcases::io`] reads and writes). Sweep requests add either a
//! named axis (`{"axis": "lifetime"}`, resolved through
//! [`ecochip_core::dse::named_sweep_axis`] — the CLI's `--sweep` values) or
//! fully structured axes (`{"axes": [{"Lifetimes": […]}]}`, the serialized
//! [`SweepAxis`] form), plus an optional `"shard": "I/N"` selector.
//!
//! Every front end resolves names through the same shared helpers, so a
//! sweep described by name over HTTP, by flag on the CLI, or structurally
//! in code produces the *same* [`SweepSpec`] — and therefore bit-for-bit
//! identical output.

use serde::{Deserialize, Serialize};

use ecochip_core::sweep::{Shard, SweepAxis, SweepSpec, SweepStats};
use ecochip_core::{dse, opt, CarbonReport, System};
use ecochip_techdb::TechDb;
use ecochip_testcases::catalog::{self, CatalogError};

use crate::ServeError;

fn resolve_base(
    testcase: &Option<String>,
    system: &Option<System>,
    db: &TechDb,
) -> Result<System, ServeError> {
    match (testcase, system) {
        (Some(_), Some(_)) => Err(ServeError::Api(
            "pass either \"testcase\" or \"system\", not both".into(),
        )),
        (None, None) => Err(ServeError::Api(
            "pass a design: \"testcase\" (a built-in name, see GET /v1/testcases) \
             or \"system\" (an inline description)"
                .into(),
        )),
        (Some(name), None) => catalog::build(db, name).map_err(|error| match error {
            CatalogError::UnknownTestcase(_) => ServeError::Api(error.to_string()),
            CatalogError::Build(inner) => ServeError::Estimator(inner),
        }),
        (None, Some(system)) => Ok(system.clone()),
    }
}

/// `POST /v1/estimate`: one design to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateRequest {
    /// A built-in test-case name (see `GET /v1/testcases`).
    pub testcase: Option<String>,
    /// An inline system description (mutually exclusive with `testcase`).
    pub system: Option<System>,
}

impl EstimateRequest {
    /// Resolve the request into the system to estimate.
    ///
    /// # Errors
    ///
    /// [`ServeError::Api`] when neither/both design fields are present or
    /// the test-case name is unknown; [`ServeError::Estimator`] when a known
    /// test case fails to build against `db`.
    pub fn resolve(&self, db: &TechDb) -> Result<System, ServeError> {
        resolve_base(&self.testcase, &self.system, db)
    }
}

/// `POST /v1/estimate` response: the evaluated system plus its full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateResponse {
    /// Name of the evaluated system.
    pub system: String,
    /// The full carbon breakdown.
    pub report: CarbonReport,
    /// Embodied share of the total CFP, `0.0..=1.0`.
    pub embodied_fraction: f64,
}

/// One element of a batch `POST /v1/estimate` response: each request in the
/// posted array resolves, in request order, to either its full estimate or
/// its own error object — one bad item never fails the whole batch.
///
/// The wire form of an element is exactly the body the same request would
/// have produced as a single `POST /v1/estimate`: a successful element
/// serializes as an [`EstimateResponse`] object, a failed one as an
/// [`ErrorResponse`] (`{"error": …}`). Batched and sequential estimation
/// are therefore bit-for-bit interchangeable.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchEstimateItem {
    /// The item estimated successfully.
    Ok(EstimateResponse),
    /// The item failed; the other items of the batch are unaffected.
    Err(ErrorResponse),
}

impl Serialize for BatchEstimateItem {
    fn to_value(&self) -> serde::Value {
        match self {
            Self::Ok(response) => response.to_value(),
            Self::Err(error) => error.to_value(),
        }
    }
}

impl Deserialize for BatchEstimateItem {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let Some(fields) = v.as_object() else {
            return Err(serde::Error::type_mismatch("object", v.kind()));
        };
        // The two wire forms share no keys, so the error marker is decisive.
        if fields.iter().any(|(key, _)| key == "error") {
            ErrorResponse::from_value(v).map(Self::Err)
        } else {
            EstimateResponse::from_value(v).map(Self::Ok)
        }
    }
}

/// `POST /v1/sweep`: a sweep description; the response streams one
/// [`ecochip_core::sweep::SweepPoint`] JSON object per line (NDJSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRequest {
    /// A built-in test-case name for the base system.
    pub testcase: Option<String>,
    /// An inline base system (mutually exclusive with `testcase`).
    pub system: Option<System>,
    /// A named axis (`nodes|packaging|volume|lifetime|energy`), resolved
    /// exactly like the CLI's `--sweep`.
    pub axis: Option<String>,
    /// Structured axes (serialized [`SweepAxis`] values), for sweeps beyond
    /// the named ones. Mutually exclusive with `axis`; omitting both sweeps
    /// the bare base system (a single point).
    pub axes: Option<Vec<SweepAxis>>,
    /// Evaluate only shard `"I/N"` of the sweep's index space.
    pub shard: Option<String>,
    /// Evaluate only the explicit case-index range `[start, end)`.
    /// Mutually exclusive with `shard`. This is the orchestrator's failover
    /// resume form: shards are contiguous, so the unemitted suffix of a
    /// dead worker's shard is exactly an index range.
    pub range: Option<IndexRange>,
    /// Stream encoding: `"ndjson"` (the default, one JSON object per
    /// line) or `"frames"` (the `ECOF` length-prefixed binary framing of
    /// the *same* canonical lines, see [`crate::frames`]). The
    /// orchestrator requests frames for worker-internal shard streams;
    /// decoded frame payloads are byte-identical to the NDJSON lines, so
    /// fingerprints are format-independent.
    pub format: Option<String>,
}

/// The negotiated encoding of a sweep response stream (the resolved form
/// of [`SweepRequest::format`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFormat {
    /// One canonical JSON object per `\n`-terminated line — the external
    /// default.
    NdJson,
    /// `ECOF` length-prefixed binary frames around the same canonical
    /// lines (see [`crate::frames`]).
    Frames,
}

impl SweepFormat {
    /// The Prometheus label value (and wire name) of this format.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SweepFormat::NdJson => "ndjson",
            SweepFormat::Frames => "frames",
        }
    }

    /// The response content type this format streams as.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            SweepFormat::NdJson => "application/x-ndjson",
            SweepFormat::Frames => crate::frames::CONTENT_TYPE,
        }
    }
}

/// An explicit half-open case-index range `[start, end)` of a sweep's index
/// space (the wire form of [`SweepRequest::range`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexRange {
    /// First case index (inclusive).
    pub start: usize,
    /// One past the last case index (exclusive).
    pub end: usize,
}

/// The slice of a sweep's index space one worker evaluates: a balanced
/// [`Shard`] selector or an explicit index range (resume form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepSlice {
    /// Shard `index`/`of` of the case space ([`Shard::range`] decides the
    /// concrete indices).
    Shard(Shard),
    /// An explicit half-open index range.
    Range(std::ops::Range<usize>),
}

impl SweepRequest {
    /// A request naming a test case and a named axis — the common case.
    pub fn named(testcase: impl Into<String>, axis: impl Into<String>) -> Self {
        Self {
            testcase: Some(testcase.into()),
            system: None,
            axis: Some(axis.into()),
            axes: None,
            shard: None,
            range: None,
            format: None,
        }
    }

    /// This request with the stream encoding pinned (`"ndjson"` or
    /// `"frames"`).
    #[must_use]
    pub fn with_format(&self, format: SweepFormat) -> Self {
        Self {
            format: Some(format.label().to_string()),
            ..self.clone()
        }
    }

    /// Resolve the requested stream encoding (`None` defaults to NDJSON).
    ///
    /// # Errors
    ///
    /// [`ServeError::Api`] for an unknown format name.
    pub fn negotiated_format(&self) -> Result<SweepFormat, ServeError> {
        match self.format.as_deref() {
            None | Some("ndjson") => Ok(SweepFormat::NdJson),
            Some("frames") => Ok(SweepFormat::Frames),
            Some(other) => Err(ServeError::Api(format!(
                "unknown sweep stream format {other:?}; pass \"ndjson\" or \"frames\""
            ))),
        }
    }

    /// This request restricted to shard `index`/`of` (used by the
    /// orchestrator to fan one request out across workers).
    #[must_use]
    pub fn with_shard(&self, index: usize, of: usize) -> Self {
        Self {
            shard: Some(format!("{index}/{of}")),
            range: None,
            ..self.clone()
        }
    }

    /// This request restricted to the explicit case range `[start, end)`
    /// (used by the orchestrator to re-dispatch the unemitted suffix of a
    /// dead worker's shard).
    #[must_use]
    pub fn with_range(&self, start: usize, end: usize) -> Self {
        Self {
            shard: None,
            range: Some(IndexRange { start, end }),
            ..self.clone()
        }
    }

    /// Resolve the request into the spec to evaluate and the slice of it
    /// this worker owns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Api`] for missing/conflicting fields, unknown
    /// test-case or axis names and malformed shard selectors;
    /// [`ServeError::Estimator`] when a known test case fails to build.
    pub fn resolve(&self, db: &TechDb) -> Result<(SweepSpec, SweepSlice), ServeError> {
        let base = resolve_base(&self.testcase, &self.system, db)?;
        let mut spec = SweepSpec::new(base);
        match (&self.axis, &self.axes) {
            (Some(_), Some(_)) => {
                return Err(ServeError::Api(
                    "pass either \"axis\" (a named axis) or \"axes\" (structured), not both".into(),
                ))
            }
            (Some(name), None) => {
                let axis = dse::named_sweep_axis(name, spec.base())
                    .map_err(|e| ServeError::Api(e.to_string()))?;
                spec = spec.axis(axis);
            }
            (None, Some(axes)) => {
                for axis in axes {
                    spec = spec.axis(axis.clone());
                }
            }
            (None, None) => {}
        }
        let slice = match (&self.shard, &self.range) {
            (Some(_), Some(_)) => {
                return Err(ServeError::Api(
                    "pass either \"shard\" (I/N) or \"range\" ([start, end)), not both".into(),
                ))
            }
            (Some(selector), None) => SweepSlice::Shard(
                selector
                    .parse::<Shard>()
                    .map_err(|e| ServeError::Api(e.to_string()))?,
            ),
            (None, Some(range)) => SweepSlice::Range(range.start..range.end),
            (None, None) => SweepSlice::Shard(Shard::FULL),
        };
        Ok((spec, slice))
    }
}

/// `POST /v1/optimize`: a carbon-aware optimization run over a sweep
/// space; the response streams one [`ecochip_core::opt::OptEvent`] JSON
/// object per line (NDJSON): every incumbent/frontier improvement, then a
/// terminal `done` event carrying the full Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// A built-in test-case name for the base system.
    pub testcase: Option<String>,
    /// An inline base system (mutually exclusive with `testcase`).
    pub system: Option<System>,
    /// A named axis (`nodes|packaging|volume|lifetime|energy`), resolved
    /// exactly like the CLI's `--sweep`.
    pub axis: Option<String>,
    /// Structured axes (serialized [`SweepAxis`] values). Mutually
    /// exclusive with `axis`.
    pub axes: Option<Vec<SweepAxis>>,
    /// Explore only shard `"I/N"` of the index space (island-model
    /// workers each own one shard).
    pub shard: Option<String>,
    /// Search method: `"pareto"` (default), `"anneal"` or `"genetic"`.
    pub method: Option<String>,
    /// Evaluation budget for the heuristic explorers (default
    /// [`opt::DEFAULT_BUDGET`]).
    pub budget: Option<usize>,
    /// RNG seed (default [`opt::DEFAULT_SEED`]); seeded runs are
    /// byte-identical.
    pub seed: Option<u64>,
    /// Comma-separated objective list (`embodied|operational|cost|area`),
    /// default `"embodied,operational"`.
    pub objectives: Option<String>,
    /// Island index stamped into emitted events, for island-model runs.
    pub island: Option<usize>,
    /// Frontier points seeding the archive before exploration — the
    /// island-model frontier exchange: the orchestrator posts the merged
    /// global frontier back to each island every round.
    pub frontier: Option<Vec<opt::FrontierPoint>>,
}

impl OptimizeRequest {
    /// A request naming a test case and a named axis — the common case.
    pub fn named(testcase: impl Into<String>, axis: impl Into<String>) -> Self {
        Self {
            testcase: Some(testcase.into()),
            system: None,
            axis: Some(axis.into()),
            axes: None,
            shard: None,
            method: None,
            budget: None,
            seed: None,
            objectives: None,
            island: None,
            frontier: None,
        }
    }

    /// This request restricted to shard `index`/`of`, exploring as island
    /// `index` (used by the orchestrator's island mode).
    #[must_use]
    pub fn with_island(&self, index: usize, of: usize) -> Self {
        Self {
            shard: Some(format!("{index}/{of}")),
            island: Some(index),
            ..self.clone()
        }
    }

    /// Resolve the request into the spec, the shard to explore, and the
    /// optimization parameters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Api`] for missing/conflicting design fields, unknown
    /// test-case/axis/method/objective names and malformed shard
    /// selectors; [`ServeError::Estimator`] when a known test case fails
    /// to build.
    pub fn resolve(&self, db: &TechDb) -> Result<(SweepSpec, Shard, opt::OptConfig), ServeError> {
        let sweep = SweepRequest {
            testcase: self.testcase.clone(),
            system: self.system.clone(),
            axis: self.axis.clone(),
            axes: self.axes.clone(),
            shard: self.shard.clone(),
            range: None,
            format: None,
        };
        let (spec, slice) = sweep.resolve(db)?;
        let SweepSlice::Shard(shard) = slice else {
            unreachable!("no range field on optimize requests");
        };
        let method: opt::OptMethod = self
            .method
            .as_deref()
            .unwrap_or("pareto")
            .parse()
            .map_err(|e: opt::OptParseError| ServeError::Api(e.message().to_string()))?;
        let objectives: opt::ObjectiveSet = match self.objectives.as_deref() {
            None => opt::ObjectiveSet::default(),
            Some(list) => list
                .parse()
                .map_err(|e: opt::OptParseError| ServeError::Api(e.message().to_string()))?,
        };
        let config = opt::OptConfig {
            method,
            objectives,
            budget: self.budget.unwrap_or(opt::DEFAULT_BUDGET),
            seed: self.seed.unwrap_or(opt::DEFAULT_SEED),
            island: self.island,
            seed_frontier: self.frontier.clone().unwrap_or_default(),
        };
        Ok((spec, shard, config))
    }
}

/// `GET /v1/healthz` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server is able to respond.
    pub status: String,
    /// The serving crate, for fleet inventory.
    pub service: String,
    /// Sweep-engine worker threads per request.
    pub jobs: usize,
}

/// Per-route latency summary inside a [`StatsResponse`]: the estimated
/// p50/p99 of the server-side request latency histogram for one route
/// label (same labels as the `ecochip_request_duration_seconds` metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteLatency {
    /// Route label (`"estimate"`, `"sweep"`, `"stats"`, …).
    pub route: String,
    /// Requests observed on this route since startup.
    pub count: u64,
    /// Estimated median request latency, seconds.
    pub p50_seconds: f64,
    /// Estimated 99th-percentile request latency, seconds.
    pub p99_seconds: f64,
}

/// `GET /v1/stats` response: request counters plus the warm memo's
/// hit/miss/eviction counters and sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Requests accepted since startup (all endpoints).
    pub requests: u64,
    /// Sweep points streamed since startup.
    pub points_streamed: u64,
    /// Effective sweep-engine claim-chunk size (`--chunk` /
    /// `ECOCHIP_CHUNK`, points per queue round-trip).
    pub chunk: usize,
    /// Floorplans served from the memo.
    pub floorplan_hits: usize,
    /// Floorplans computed.
    pub floorplan_misses: usize,
    /// Floorplans evicted by the capacity bound.
    pub floorplan_evictions: usize,
    /// Floorplans currently memoized.
    pub floorplan_entries: usize,
    /// Manufacturing results served from the memo.
    pub manufacturing_hits: usize,
    /// Manufacturing results computed.
    pub manufacturing_misses: usize,
    /// Manufacturing results evicted by the capacity bound.
    pub manufacturing_evictions: usize,
    /// Manufacturing results currently memoized.
    pub manufacturing_entries: usize,
    /// The per-cache memo bound, when configured.
    pub memo_capacity: Option<usize>,
    /// Memo entries not yet persisted (0 when autosave is off or current).
    pub memo_dirty_entries: usize,
    /// Open connections parked in the event loop right now.
    pub idle_connections: u64,
    /// Open connections checked out to the handler pool right now.
    pub active_connections: u64,
    /// Connections/requests refused with `429 Too Many Requests` since
    /// startup (admission control; see `--max-inflight` /
    /// `--max-connections`).
    pub rejected: u64,
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Per-route latency summaries (routes with zero observations are
    /// omitted).
    pub latency: Vec<RouteLatency>,
}

/// Request-level totals for [`StatsResponse::new`], gathered from the
/// server rather than the memoized service.
#[derive(Debug, Clone, Copy)]
pub struct ServeTotals {
    /// Requests accepted since startup.
    pub requests: u64,
    /// Sweep points streamed since startup.
    pub points_streamed: u64,
    /// Effective sweep-engine claim-chunk size.
    pub chunk: usize,
    /// Open connections parked in the event loop.
    pub idle_connections: u64,
    /// Open connections checked out to the handler pool.
    pub active_connections: u64,
    /// 429 rejections since startup.
    pub rejected: u64,
    /// Seconds since the server started.
    pub uptime_seconds: f64,
}

impl StatsResponse {
    /// Assemble the response from the memo counters and request totals.
    pub fn new(
        stats: SweepStats,
        floorplan_entries: usize,
        manufacturing_entries: usize,
        memo_capacity: Option<usize>,
        memo_dirty_entries: usize,
        totals: ServeTotals,
        latency: Vec<RouteLatency>,
    ) -> Self {
        Self {
            requests: totals.requests,
            points_streamed: totals.points_streamed,
            chunk: totals.chunk,
            floorplan_hits: stats.floorplan_hits,
            floorplan_misses: stats.floorplan_misses,
            floorplan_evictions: stats.floorplan_evictions,
            floorplan_entries,
            manufacturing_hits: stats.manufacturing_hits,
            manufacturing_misses: stats.manufacturing_misses,
            manufacturing_evictions: stats.manufacturing_evictions,
            manufacturing_entries,
            memo_capacity,
            memo_dirty_entries,
            idle_connections: totals.idle_connections,
            active_connections: totals.active_connections,
            rejected: totals.rejected,
            uptime_seconds: totals.uptime_seconds,
            latency,
        }
    }
}

/// One completed span in a `GET /v1/trace` dump — the wire form of
/// [`ecochip_trace::CompletedSpan`]. Spans nest by ID: a stage span's
/// `parent` is its request span's `id`, and every span carries the trace
/// ID current when it started, so one `X-Ecochip-Trace` value stitches a
/// sweep's timeline back together across the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Monotone completion sequence number (orders the dump).
    pub seq: u64,
    /// Process-unique span ID.
    pub id: u64,
    /// The enclosing span's ID, when this span was nested.
    pub parent: Option<u64>,
    /// The trace ID current when the span started.
    pub trace: Option<String>,
    /// Span name (e.g. `"request:sweep"`, `"stage:estimate"`).
    pub name: String,
    /// Wall-clock start, unix seconds (fractional).
    pub start: f64,
    /// Duration in seconds (monotonic clock).
    pub duration: f64,
}

impl From<&ecochip_trace::CompletedSpan> for TraceSpan {
    fn from(span: &ecochip_trace::CompletedSpan) -> Self {
        Self {
            seq: span.seq,
            id: span.id,
            parent: span.parent,
            trace: span.trace.clone(),
            name: span.name.clone(),
            start: span.start,
            duration: span.duration,
        }
    }
}

/// `GET /v1/trace` response: this process's recent-span ring buffer,
/// oldest first. The ring is bounded (the newest spans win), so this is a
/// flight recorder, not an archive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceResponse {
    /// Completed spans, ordered by completion (`seq` ascending).
    pub spans: Vec<TraceSpan>,
}

/// `GET /v1/testcases` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestcasesResponse {
    /// Every built-in test-case name `POST /v1/estimate` accepts.
    pub testcases: Vec<String>,
}

/// `POST /v1/memo` response: what a memo import absorbed into the warm
/// service (entries already present locally are kept and skipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoImportResponse {
    /// Floorplans absorbed from the posted memo.
    pub imported_floorplans: usize,
    /// Manufacturing results absorbed from the posted memo.
    pub imported_manufacturing: usize,
    /// Floorplans memoized after the import.
    pub floorplan_entries: usize,
    /// Manufacturing results memoized after the import.
    pub manufacturing_entries: usize,
}

/// Error body returned with every non-2xx status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable description of what was wrong with the request.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecochip_core::sweep::SweepEngine;
    use ecochip_core::EcoChip;

    #[test]
    fn estimate_requests_resolve_testcases_and_inline_systems() {
        let db = TechDb::default();
        let by_name = EstimateRequest {
            testcase: Some("ga102".into()),
            system: None,
        };
        let system = by_name.resolve(&db).unwrap();
        assert!(!system.chiplets.is_empty());

        let inline = EstimateRequest {
            testcase: None,
            system: Some(system.clone()),
        };
        assert_eq!(inline.resolve(&db).unwrap(), system);

        for bad in [
            EstimateRequest {
                testcase: None,
                system: None,
            },
            EstimateRequest {
                testcase: Some("ga102".into()),
                system: Some(system),
            },
            EstimateRequest {
                testcase: Some("not-a-testcase".into()),
                system: None,
            },
        ] {
            assert!(
                matches!(bad.resolve(&db), Err(ServeError::Api(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn sweep_requests_resolve_named_and_structured_axes() {
        let db = TechDb::default();
        let named = SweepRequest::named("ga102-3chiplet", "lifetime");
        let (spec, slice) = named.resolve(&db).unwrap();
        assert_eq!(spec.try_len().unwrap(), 7);
        assert_eq!(slice, SweepSlice::Shard(Shard::FULL));

        // The named form resolves to the same spec the CLI builds, so the
        // two front ends produce identical sweeps.
        let base = catalog::build(&db, "ga102-3chiplet").unwrap();
        let cli_axis = dse::named_sweep_axis("lifetime", &base).unwrap();
        let cli_spec = SweepSpec::new(base).axis(cli_axis);
        assert_eq!(spec, cli_spec);

        let structured = SweepRequest {
            axis: None,
            axes: Some(vec![SweepAxis::lifetimes_years(&[1.0, 2.0])]),
            ..SweepRequest::named("ga102", "ignored")
        };
        let (spec, _) = structured.resolve(&db).unwrap();
        assert_eq!(spec.try_len().unwrap(), 2);

        // No axis at all sweeps the bare base system.
        let bare = SweepRequest {
            axis: None,
            ..SweepRequest::named("ga102", "ignored")
        };
        let (spec, _) = bare.resolve(&db).unwrap();
        assert_eq!(spec.try_len().unwrap(), 1);
        let points = SweepEngine::serial()
            .run(&EcoChip::default(), &spec)
            .unwrap();
        assert_eq!(points.len(), 1);
    }

    #[test]
    fn optimize_requests_resolve_methods_objectives_and_islands() {
        let db = TechDb::default();
        let named = OptimizeRequest::named("ga102-3chiplet", "lifetime");
        let (spec, shard, config) = named.resolve(&db).unwrap();
        assert_eq!(spec.try_len().unwrap(), 7);
        assert_eq!(shard, Shard::FULL);
        assert_eq!(config.method, opt::OptMethod::Pareto);
        assert_eq!(config.objectives, opt::ObjectiveSet::default());
        assert_eq!(config.budget, opt::DEFAULT_BUDGET);
        assert_eq!(config.seed, opt::DEFAULT_SEED);
        assert_eq!(config.island, None);
        assert!(config.seed_frontier.is_empty());

        let mut full = OptimizeRequest::named("ga102-3chiplet", "lifetime");
        full.method = Some("anneal".into());
        full.objectives = Some("embodied,cost".into());
        full.budget = Some(33);
        full.seed = Some(42);
        let islanded = full.with_island(1, 3);
        let (_, shard, config) = islanded.resolve(&db).unwrap();
        assert_eq!((shard.index(), shard.of()), (1, 3));
        assert_eq!(config.island, Some(1));
        assert_eq!(config.method, opt::OptMethod::Anneal);
        assert_eq!(config.objectives.label(), "embodied,cost");
        assert_eq!((config.budget, config.seed), (33, 42));

        for (label, tweak) in [
            ("unknown method", ("method", "hillclimb")),
            ("unknown objective", ("objectives", "embodied,karma")),
            ("empty objectives", ("objectives", " , ")),
        ] {
            let mut bad = OptimizeRequest::named("ga102", "lifetime");
            match tweak.0 {
                "method" => bad.method = Some(tweak.1.into()),
                _ => bad.objectives = Some(tweak.1.into()),
            }
            assert!(
                matches!(bad.resolve(&db), Err(ServeError::Api(_))),
                "{label}"
            );
        }
    }

    #[test]
    fn sweep_request_shards_ranges_and_errors() {
        let db = TechDb::default();
        let sharded = SweepRequest::named("ga102-3chiplet", "lifetime").with_shard(1, 2);
        let (_, slice) = sharded.resolve(&db).unwrap();
        let SweepSlice::Shard(shard) = slice else {
            panic!("expected a shard slice, got {slice:?}");
        };
        assert_eq!((shard.index(), shard.of()), (1, 2));

        // The resume form: an explicit index range.
        let ranged = SweepRequest::named("ga102-3chiplet", "lifetime").with_range(3, 7);
        let (_, slice) = ranged.resolve(&db).unwrap();
        assert_eq!(slice, SweepSlice::Range(3..7));
        // with_range clears a previous shard and vice versa.
        let toggled = sharded.with_range(1, 2).with_shard(0, 2);
        assert_eq!(toggled.range, None);
        assert!(toggled.shard.is_some());

        for (label, bad) in [
            (
                "bad shard",
                SweepRequest {
                    shard: Some("7/2".into()),
                    ..SweepRequest::named("ga102", "lifetime")
                },
            ),
            ("unknown axis", SweepRequest::named("ga102", "temperature")),
            (
                "axis and axes",
                SweepRequest {
                    axes: Some(vec![SweepAxis::lifetimes_years(&[1.0])]),
                    ..SweepRequest::named("ga102", "lifetime")
                },
            ),
            (
                "shard and range",
                SweepRequest {
                    shard: Some("0/2".into()),
                    range: Some(IndexRange { start: 0, end: 1 }),
                    ..SweepRequest::named("ga102", "lifetime")
                },
            ),
        ] {
            assert!(
                matches!(bad.resolve(&db), Err(ServeError::Api(_))),
                "{label}"
            );
        }
    }

    #[test]
    fn sweep_formats_negotiate_and_roundtrip() {
        let request = SweepRequest::named("ga102", "lifetime");
        assert_eq!(request.negotiated_format().unwrap(), SweepFormat::NdJson);
        let framed = request.with_format(SweepFormat::Frames);
        assert_eq!(framed.negotiated_format().unwrap(), SweepFormat::Frames);
        // Shard/range restriction keeps the negotiated format, so failover
        // resumes stream in the same encoding as the first attempt.
        assert_eq!(
            framed.with_shard(0, 2).negotiated_format().unwrap(),
            SweepFormat::Frames
        );
        assert_eq!(
            framed.with_range(1, 3).negotiated_format().unwrap(),
            SweepFormat::Frames
        );
        let json = serde_json::to_string(&framed).unwrap();
        assert!(json.contains(r#""format":"frames""#), "{json}");
        let back: SweepRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, framed);
        let bad = SweepRequest {
            format: Some("xml".into()),
            ..SweepRequest::named("ga102", "lifetime")
        };
        assert!(matches!(bad.negotiated_format(), Err(ServeError::Api(_))));
        assert_eq!(SweepFormat::NdJson.content_type(), "application/x-ndjson");
        assert_eq!(
            SweepFormat::Frames.content_type(),
            crate::frames::CONTENT_TYPE
        );
    }

    #[test]
    fn batch_items_serialize_as_their_single_request_bodies() {
        let db = TechDb::default();
        let system = catalog::build(&db, "ga102").unwrap();
        let report = EcoChip::default().estimate(&system).unwrap();
        let response = EstimateResponse {
            system: system.name.clone(),
            embodied_fraction: report.embodied_fraction(),
            report,
        };
        // A successful element is byte-identical to the single-request body.
        let ok = BatchEstimateItem::Ok(response.clone());
        assert_eq!(
            serde_json::to_string(&ok).unwrap(),
            serde_json::to_string(&response).unwrap()
        );
        let back: BatchEstimateItem =
            serde_json::from_str(&serde_json::to_string(&ok).unwrap()).unwrap();
        assert_eq!(back, ok);
        // A failed element is byte-identical to the single-request error body.
        let error = ErrorResponse {
            error: "unknown testcase \"nope\"".into(),
        };
        let err = BatchEstimateItem::Err(error.clone());
        assert_eq!(
            serde_json::to_string(&err).unwrap(),
            serde_json::to_string(&error).unwrap()
        );
        let back: BatchEstimateItem =
            serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert_eq!(back, err);
        // Non-object elements are rejected, not misclassified.
        assert!(serde_json::from_str::<BatchEstimateItem>("3").is_err());
    }

    #[test]
    fn wire_types_roundtrip_through_json() {
        let request = SweepRequest::named("ga102", "lifetime").with_shard(0, 2);
        let json = serde_json::to_string(&request).unwrap();
        let back: SweepRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);

        let ranged = SweepRequest::named("ga102", "lifetime").with_range(2, 5);
        let json = serde_json::to_string(&ranged).unwrap();
        assert!(json.contains(r#""range":{"start":2,"end":5}"#), "{json}");
        let back: SweepRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ranged);

        // Missing optional fields deserialize as None.
        let sparse: SweepRequest = serde_json::from_str(r#"{"testcase":"ga102"}"#).unwrap();
        assert_eq!(sparse.testcase.as_deref(), Some("ga102"));
        assert_eq!(sparse.axis, None);
        assert_eq!(sparse.shard, None);

        let error = ErrorResponse {
            error: "nope".into(),
        };
        let json = serde_json::to_string(&error).unwrap();
        assert_eq!(json, r#"{"error":"nope"}"#);
    }
}
