//! `ECOF` — the length-prefixed binary frame encoding for sweep streams.
//!
//! NDJSON is the external default for `POST /v1/sweep`, but splitting a
//! merged multi-megabyte stream back into lines byte-by-byte is pure
//! overhead for orchestrator-internal shard streams, where both ends are
//! this crate. `ECOF` frames the *same canonical JSON lines* with a binary
//! length prefix, so the receiver jumps from frame to frame without
//! scanning for newlines — and decoding a framed stream back to NDJSON is
//! byte-identical to the NDJSON stream the server would have sent, which
//! keeps the FNV-1a stream fingerprint (and `orchestrate --check`)
//! unchanged.
//!
//! ## Wire layout
//!
//! ```text
//! stream := header frame*
//! header := "ECOF" version            ; 5 bytes, version = 0x01
//! frame  := len payload               ; len: u32 little-endian
//! payload := one canonical JSON line, WITHOUT the trailing newline
//! ```
//!
//! The end of the stream is delimited by the HTTP chunked encoding (the
//! terminating 0-length chunk), not by a sentinel frame. In-band errors
//! travel exactly like NDJSON: a frame whose payload is the
//! `{"error": …}` object. Decoding appends `\n` to each payload, so
//! `decode(frames) == ndjson` holds byte-for-byte.

use crate::ServeError;

/// Content type negotiated for framed sweep responses.
pub const CONTENT_TYPE: &str = "application/x-ecochip-frames";

/// The 4-byte stream magic.
pub const MAGIC: [u8; 4] = *b"ECOF";

/// Current wire version (bumped on incompatible layout changes).
pub const VERSION: u8 = 1;

/// Upper bound on a single frame's payload, mirroring the HTTP layer's
/// body cap: a length prefix this large means the stream is corrupt (or
/// not `ECOF` at all), not that a sweep point serialized to 8 MiB.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// The 5-byte stream header every framed stream starts with.
#[must_use]
pub fn header() -> [u8; 5] {
    [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION]
}

/// Append one frame for `line` (a canonical JSON line without its trailing
/// newline) to `out`.
pub fn push_frame(out: &mut Vec<u8>, line: &str) {
    out.extend_from_slice(&(line.len() as u32).to_le_bytes());
    out.extend_from_slice(line.as_bytes());
}

/// Incremental `ECOF` decoder: feed it arbitrary byte slices as they
/// arrive off the wire, receive the canonical lines. One decoder per
/// stream — it consumes the header first, then frame after frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Bytes carried over between `feed` calls (partial header, length
    /// prefix or payload).
    pending: Vec<u8>,
    /// Whether the 5-byte stream header has been consumed and validated.
    header_seen: bool,
}

impl FrameDecoder {
    /// A decoder expecting a fresh stream (header first).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume `bytes`, invoking `on_line` once per completed frame with
    /// the decoded line (no trailing newline — identical to what an NDJSON
    /// line splitter would deliver).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Http`] on a bad magic/version or an oversized
    /// length prefix, [`ServeError::Http`] for non-UTF-8 payloads, and
    /// propagates `on_line` errors.
    pub fn feed(
        &mut self,
        bytes: &[u8],
        on_line: &mut dyn FnMut(&str) -> Result<(), ServeError>,
    ) -> Result<(), ServeError> {
        self.pending.extend_from_slice(bytes);
        let mut offset = 0usize;
        if !self.header_seen {
            if self.pending.len() - offset < header().len() {
                self.pending.drain(..offset);
                return Ok(());
            }
            let head = &self.pending[offset..offset + 5];
            if head[..4] != MAGIC {
                return Err(ServeError::Http(format!(
                    "framed sweep stream does not start with the ECOF magic (got {:02x?})",
                    &head[..4]
                )));
            }
            if head[4] != VERSION {
                return Err(ServeError::Http(format!(
                    "unsupported ECOF version {} (expected {VERSION})",
                    head[4]
                )));
            }
            offset += 5;
            self.header_seen = true;
        }
        loop {
            let rest = &self.pending[offset..];
            let Some(prefix) = rest.get(..4) else { break };
            let len = u32::from_le_bytes(prefix.try_into().expect("4-byte slice")) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ServeError::Http(format!(
                    "ECOF frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte bound \
                     (corrupt or desynchronized stream)"
                )));
            }
            let Some(payload) = rest.get(4..4 + len) else {
                break;
            };
            let line = std::str::from_utf8(payload)
                .map_err(|_| ServeError::Http("ECOF frame payload is not valid UTF-8".into()))?;
            on_line(line)?;
            offset += 4 + len;
        }
        self.pending.drain(..offset);
        Ok(())
    }

    /// Assert the stream ended on a frame boundary (call after the last
    /// `feed`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Http`] when header or frame bytes are still
    /// pending — the stream was truncated mid-frame.
    pub fn finish(&self) -> Result<(), ServeError> {
        if !self.header_seen && self.pending.is_empty() {
            // An empty stream (zero frames, not even a header) decodes to
            // zero lines, mirroring an empty NDJSON body.
            return Ok(());
        }
        if !self.header_seen {
            return Err(ServeError::Http(
                "framed sweep stream ended inside the ECOF header".into(),
            ));
        }
        if !self.pending.is_empty() {
            return Err(ServeError::Http(format!(
                "framed sweep stream ended mid-frame with {} bytes pending",
                self.pending.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(chunks: &[&[u8]]) -> Result<Vec<String>, ServeError> {
        let mut decoder = FrameDecoder::new();
        let mut lines = Vec::new();
        for chunk in chunks {
            decoder.feed(chunk, &mut |line| {
                lines.push(line.to_string());
                Ok(())
            })?;
        }
        decoder.finish()?;
        Ok(lines)
    }

    fn encode(lines: &[&str]) -> Vec<u8> {
        let mut out = header().to_vec();
        for line in lines {
            push_frame(&mut out, line);
        }
        out
    }

    #[test]
    fn frames_roundtrip_to_the_exact_ndjson_lines() {
        let lines = [r#"{"label":"a","x":1.0}"#, r#"{"label":"b","x":2.5}"#, "{}"];
        let wire = encode(&lines);
        let decoded = decode_all(&[&wire]).unwrap();
        assert_eq!(decoded, lines);
        // Reassembling with newlines reproduces the NDJSON stream exactly.
        let ndjson: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let reassembled: String = decoded.iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(reassembled, ndjson);
    }

    #[test]
    fn decoding_is_insensitive_to_chunk_boundaries() {
        let lines = ["{\"a\":1}", "{\"b\":22}", "{\"c\":333}"];
        let wire = encode(&lines);
        // Split the wire bytes at every possible single boundary.
        for split in 0..=wire.len() {
            let decoded = decode_all(&[&wire[..split], &wire[split..]]).unwrap();
            assert_eq!(decoded, lines, "split at {split}");
        }
        // And byte-by-byte.
        let singles: Vec<&[u8]> = wire.chunks(1).collect();
        assert_eq!(decode_all(&singles).unwrap(), lines);
    }

    #[test]
    fn bad_streams_are_rejected_with_typed_errors() {
        // Wrong magic.
        assert!(matches!(
            decode_all(&[b"NOPE\x01"]),
            Err(ServeError::Http(_))
        ));
        // Wrong version.
        assert!(matches!(
            decode_all(&[b"ECOF\x02"]),
            Err(ServeError::Http(_))
        ));
        // Truncated mid-header / mid-frame.
        assert!(matches!(decode_all(&[b"ECO"]), Err(ServeError::Http(_))));
        let mut wire = header().to_vec();
        push_frame(&mut wire, "{\"a\":1}");
        assert!(matches!(
            decode_all(&[&wire[..wire.len() - 2]]),
            Err(ServeError::Http(_))
        ));
        // Oversized length prefix (desynchronized stream).
        let mut oversized = header().to_vec();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_all(&[&oversized]),
            Err(ServeError::Http(_))
        ));
        // An empty stream is zero lines, not an error.
        assert_eq!(decode_all(&[]).unwrap(), Vec::<String>::new());
        // A header with zero frames is also a valid empty stream.
        assert_eq!(decode_all(&[&header()]).unwrap(), Vec::<String>::new());
    }
}
